"""Table 2: baseline path characteristics -- per-connection loss rates
and RTTs (mean +- standard error) of single-path TCP across file sizes.

Expected shape: cellular loss ~0 (LTE) to a few percent (3G); WiFi
1-2%; RTT grows with size on cellular (bufferbloat) and stays flat and
low on WiFi; Sprint >> Verizon > AT&T > WiFi in RTT.
"""

from benchmarks.conftest import BENCH_REPS, PERIODS, emit
from repro.experiments.scenarios import (
    baseline_campaign,
    path_characteristics_rows,
)


def test_tab02_baseline_path_characteristics(campaign_runner):
    spec = baseline_campaign(repetitions=BENCH_REPS, periods=PERIODS)
    results = campaign_runner(spec)
    headers, rows = path_characteristics_rows(results)
    emit("tab02", "Table 2: baseline loss (%) and RTT (ms), SP runs",
         [("path characteristics", headers, rows)])

    def rtt(size, path):
        for row in rows:
            if row[0] == size and row[1] == path:
                return float(row[4].split("+-")[0])
        raise AssertionError(f"missing row {size}/{path}")

    # RTT orderings of Section 2.1 at the largest size.
    assert rtt("16 MB", "WiFi") < rtt("16 MB", "ATT")
    assert rtt("16 MB", "ATT") < rtt("16 MB", "Sprint")
    # Bufferbloat: AT&T RTT grows with flow size.
    assert rtt("64 KB", "ATT") < rtt("16 MB", "ATT")

"""Table 6: MPTCP per-carrier RTT and out-of-order delay statistics
(mean +- standard error across connections).

Expected shape: WiFi subflow RTTs in the tens of ms regardless of
pairing; cellular subflow RTTs AT&T < Verizon/Sprint; OFO delay
ordered AT&T < Verizon < Sprint, with Sprint in the hundreds of ms.
"""

from benchmarks.conftest import BENCH_REPS, PERIODS, emit
from repro.experiments.scenarios import latency_campaign, mptcp_rtt_ofo_rows


def test_tab06_mptcp_rtt_and_ofo(campaign_runner):
    spec = latency_campaign(repetitions=BENCH_REPS, periods=PERIODS)
    results = campaign_runner(spec)
    headers, rows = mptcp_rtt_ofo_rows(results)
    emit("tab06", "Table 6: MPTCP RTT and OFO delay (ms)",
         [("rtt and ofo", headers, rows)])

    def ofo(carrier, size="16 MB"):
        for row in rows:
            if row[0] == size and row[1] == carrier:
                return float(row[4].split("+-")[0])
        raise AssertionError(f"missing {carrier}/{size}")

    assert ofo("ATT") < ofo("Sprint")
    for row in rows:
        if row[3] != "-":
            wifi_rtt = float(row[3].split("+-")[0])
            assert wifi_rtt < 120.0, "WiFi subflow RTT stays low"

"""Figure 4: small-flow download times (8 KB - 4 MB) on AT&T:
SP-WiFi, SP-ATT, and MP-2/MP-4 with coupled / olia / reno.

Expected shape: at 8 KB everything multipath behaves like SP-WiFi and
SP-ATT is worst; as size grows MP-4 < MP-2 < single path; controllers
are indistinguishable for small flows.
"""

from benchmarks.conftest import BENCH_REPS, PERIODS, emit
from repro.experiments.scenarios import (
    download_time_rows,
    small_flows_campaign,
)


def test_fig04_small_flow_download_times(campaign_runner):
    spec = small_flows_campaign(repetitions=BENCH_REPS, periods=PERIODS)
    results = campaign_runner(spec)
    headers, rows = download_time_rows(results)
    emit("fig04", "Figure 4: small-flow download time (seconds), AT&T",
         [("download time", headers, rows)])
    medians = {(row[0], row[1]): float(row[6]) for row in rows}
    # 8 KB: WiFi's RTT wins, and MPTCP tracks it rather than the
    # cellular path.  (Individual 8 KB samples are noisy -- the paper
    # makes the same caveat -- so only the robust ordering is checked.)
    assert medians[("8 KB", "SP-WiFi")] < medians[("8 KB", "SP-ATT")]
    assert medians[("8 KB", "MP-2")] < medians[("8 KB", "SP-ATT")]
    # 4 MB: four paths beat two paths (coupled controller).
    assert medians[("4 MB", "MP-4")] <= medians[("4 MB", "MP-2")] * 1.1

"""Figure 2: baseline download times, every carrier, SP vs MPTCP.

Regenerates the box-and-whisker series of Figure 2: download time for
64 KB / 512 KB / 2 MB / 16 MB objects over SP-WiFi, SP-{ATT,VZW,Sprint}
and 2-path MPTCP with each carrier (coupled controller).

Expected shape (paper Section 4): MPTCP tracks the best single path at
every size; WiFi wins small files; LTE wins large files; Sprint 3G is
always the worst single path.
"""

from benchmarks.conftest import BENCH_REPS, PERIODS, emit
from repro.experiments.scenarios import (
    baseline_campaign,
    download_time_rows,
)


def test_fig02_baseline_download_times(campaign_runner):
    spec = baseline_campaign(repetitions=BENCH_REPS, periods=PERIODS)
    results = campaign_runner(spec)
    headers, rows = download_time_rows(results, label_by_carrier=True)
    emit("fig02", "Figure 2: baseline download time (seconds)",
         [("download time", headers, rows)])
    assert rows, "figure must have data"
    # Headline check: at 16 MB, MP-ATT's median beats SP-WiFi's.
    medians = {(row[0], row[1]): float(row[6]) for row in rows}
    assert medians[("16 MB", "MP-ATT")] < medians[("16 MB", "SP-WiFi")]

"""Ablation: the subflow penalization mechanism the paper removed.

Section 3.1 ("No subflow penalty"): Linux MPTCP v0.86 halves the
window of a subflow blamed for receive-buffer blockage; with the
paper's 8 MB buffer this "can only degrade the performance of MPTCP
connections", so the authors patch it out.  This benchmark measures
exactly that claim: the same downloads with penalization on vs off.

Expected shape: with a roomy receive buffer, penalization never helps
and tends to hurt the heterogeneous (Sprint) pairing most.
"""

import statistics

from benchmarks.conftest import BENCH_REPS, emit
from repro.experiments.config import FlowSpec
from repro.experiments.runner import Measurement

MB = 1024 * 1024
SIZES = (4 * MB, 16 * MB)
SEEDS = tuple(range(60, 60 + max(BENCH_REPS * 2, 4)))


def mean_time(spec, size):
    times = [Measurement(spec, size, seed=seed).run().download_time
             for seed in SEEDS]
    return statistics.mean(t for t in times if t is not None)


def test_ablation_penalization(benchmark):
    def run():
        rows = []
        # The paper's regime: an 8 MB receive buffer that never binds.
        for carrier in ("att", "sprint"):
            for size in SIZES:
                base = FlowSpec.mptcp(carrier=carrier)
                with_penalty = base.with_(penalization=True)
                off = mean_time(base, size)
                on = mean_time(with_penalty, size)
                rows.append([carrier, f"{size // MB} MB", "8 MB",
                             f"{off:.3f}", f"{on:.3f}",
                             f"{(on / off - 1) * 100:+.1f}%"])
        # The regime penalization was designed for: a small shared
        # buffer that the slow subflow's reordering can exhaust.
        small = 192 * 1024
        for carrier in ("sprint",):
            base = FlowSpec.mptcp(carrier=carrier, rcv_buffer=small)
            with_penalty = base.with_(penalization=True)
            off = mean_time(base, 4 * MB)
            on = mean_time(with_penalty, 4 * MB)
            rows.append([carrier, "4 MB", "192 KB",
                         f"{off:.3f}", f"{on:.3f}",
                         f"{(on / off - 1) * 100:+.1f}%"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("abl_penalty",
         "Ablation: subflow penalization (paper removes it)",
         [("mean download time (s)",
           ["carrier", "size", "rcv buffer", "penalty off",
            "penalty on", "delta"],
           rows)])
    # With the paper's roomy buffer, penalization never fires, so it
    # must never make downloads meaningfully faster -- exactly why the
    # paper can remove it without penalty (pun intended).
    for row in rows:
        if row[2] == "8 MB":
            assert float(row[4]) >= float(row[3]) * 0.95

"""Figure 3: fraction of traffic carried by each cellular carrier in
the baseline MPTCP connections.

Expected shape: the fraction rises with file size; LTE carriers absorb
the majority of large transfers, Sprint 3G stays a minority carrier.
"""

from benchmarks.conftest import BENCH_REPS, PERIODS, emit
from repro.experiments.scenarios import (
    baseline_campaign,
    traffic_share_rows,
)


def test_fig03_baseline_traffic_share(campaign_runner):
    spec = baseline_campaign(repetitions=BENCH_REPS, periods=PERIODS)
    results = campaign_runner(spec)
    headers, rows = traffic_share_rows(results, label_by_carrier=True)
    emit("fig03", "Figure 3: fraction of traffic on the cellular path",
         [("cellular share", headers, rows)])
    shares = {(row[0], row[1]): float(row[3].split("+-")[0])
              for row in rows}
    # Offload grows with size for AT&T, and 3G carries less than LTE.
    assert shares[("64 KB", "MP-ATT")] < shares[("16 MB", "MP-ATT")]
    assert shares[("16 MB", "MP-Sprint")] < shares[("16 MB", "MP-ATT")]

"""Extension: interactive latency over MPTCP (Section 5.2's budget).

The paper argues Sprint-3G pairings break real-time applications:
">20% of the packets have out-of-order delay larger than 150 ms, even
without including the one-way network delay".  This benchmark runs an
actual frame stream (video-call bitrate) over each carrier pairing and
measures the fraction of frames delivered within the 150 ms budget --
then shows the redundant scheduler (send on all paths, dedup by DSN)
repairing the 3G pairing at the cost of duplicate bytes.
"""

import statistics

from benchmarks.conftest import BENCH_REPS, emit
from repro.app.http import HTTP_PORT
from repro.app.realtime import (
    TOLERANCE_150MS,
    RealtimeProfile,
    RealtimeSink,
    RealtimeStream,
)
from repro.core.connection import MptcpConfig, MptcpConnection, \
    MptcpListener
from repro.testbed import Testbed, TestbedConfig

PROFILE = RealtimeProfile(name="call", frame_bytes=2048,
                          interval=1.0 / 25.0, frames=250)
SEEDS = tuple(range(140, 140 + max(BENCH_REPS, 2)))


def run_call(carrier, scheduler, seed):
    # The hotspot WiFi flavor: lossy and jittery enough that frames
    # spill onto the cellular path (the regime where reordering bites).
    testbed = Testbed(TestbedConfig(carrier=carrier, wifi="public",
                                    seed=seed))
    config = MptcpConfig(scheduler=scheduler)
    state = {}

    def on_connection(server_conn):
        stream = RealtimeStream(testbed.sim, server_conn, PROFILE)
        state["stream"] = stream
        stream.start()

    MptcpListener(testbed.sim, testbed.server, HTTP_PORT, config,
                  server_addrs=testbed.server_addrs,
                  on_connection=on_connection)
    connection = MptcpConnection.client(
        testbed.sim, testbed.client, testbed.client_addrs,
        testbed.server_addrs[0], HTTP_PORT, config)
    sink_box = {}
    connection.on_established = lambda: sink_box.__setitem__(
        "sink", RealtimeSink(testbed.sim, connection, state["stream"]))
    connection.connect()
    testbed.run(until=PROFILE.frames * PROFILE.interval + 90.0)
    return sink_box["sink"].report


def test_ext_realtime_latency_budget(benchmark):
    def run():
        rows = []
        for carrier in ("att", "verizon", "sprint"):
            for scheduler in ("minrtt", "redundant"):
                within, mean_ms, worst_ms = [], [], []
                for seed in SEEDS:
                    report = run_call(carrier, scheduler, seed)
                    within.append(report.fraction_within(TOLERANCE_150MS))
                    mean_ms.append(report.mean_latency() * 1000)
                    worst_ms.append(report.worst_latency() * 1000)
                rows.append([carrier, scheduler,
                             f"{statistics.mean(within):.2f}",
                             f"{statistics.mean(mean_ms):.1f}",
                             f"{statistics.mean(worst_ms):.1f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ext_realtime",
         "Extension: video-call frames within the 150 ms budget",
         [("latency budget",
           ["carrier", "scheduler", "within 150ms", "mean (ms)",
            "worst (ms)"], rows)])
    by_key = {(row[0], row[1]): float(row[2]) for row in rows}
    worst = {(row[0], row[1]): float(row[4]) for row in rows}
    # LTE pairing basically meets the budget with the stock scheduler.
    assert by_key[("att", "minrtt")] > 0.85
    # The redundant scheduler never hurts, and cuts the latency tail.
    for carrier in ("att", "verizon", "sprint"):
        assert by_key[(carrier, "redundant")] >= \
            by_key[(carrier, "minrtt")] - 0.02
        assert worst[(carrier, "redundant")] <= \
            worst[(carrier, "minrtt")] * 1.05

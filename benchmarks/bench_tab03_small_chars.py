"""Table 3: small-flow path characteristics (WiFi vs AT&T, SP runs).

Expected shape: WiFi loss 1-2% at every size with RTT in the tens of
ms; AT&T loss negligible with a ~60 ms base RTT that inflates as the
flow grows (140+ ms at 4 MB in the paper).
"""

from benchmarks.conftest import BENCH_REPS, PERIODS, emit
from repro.experiments.scenarios import (
    path_characteristics_rows,
    small_flows_campaign,
)


def test_tab03_small_flow_path_characteristics(campaign_runner):
    spec = small_flows_campaign(repetitions=BENCH_REPS, periods=PERIODS)
    results = campaign_runner(spec)
    headers, rows = path_characteristics_rows(results)
    emit("tab03", "Table 3: small-flow loss (%) and RTT (ms), SP runs",
         [("path characteristics", headers, rows)])

    def cell(size, path, column):
        for row in rows:
            if row[0] == size and row[1] == path:
                return row[column]
        raise AssertionError(f"missing {size}/{path}")

    # AT&T: negligible loss at small sizes.
    assert cell("64 KB", "ATT", 3) == "~" or \
        float(cell("64 KB", "ATT", 3).split("+-")[0]) < 0.5
    # WiFi RTT stays far below AT&T's.
    wifi_rtt = float(cell("4 MB", "WiFi", 4).split("+-")[0])
    att_rtt = float(cell("4 MB", "ATT", 4).split("+-")[0])
    assert wifi_rtt < att_rtt

"""Figure 12: packet-RTT CCDFs of MPTCP subflows per carrier and size.

The figure is tabulated at fixed survival probabilities (columns
``P>f`` give the RTT such that a fraction f of packets exceed it).

Expected shape: WiFi's distribution is low (tens of ms) and tight;
AT&T sits around 50-200 ms; Verizon and especially Sprint have heavy
tails reaching seconds (bufferbloat).
"""

from benchmarks.conftest import BENCH_REPS, PERIODS, emit
from repro.experiments.scenarios import latency_campaign, rtt_ccdf_rows


def test_fig12_packet_rtt_ccdf(campaign_runner):
    spec = latency_campaign(repetitions=BENCH_REPS, periods=PERIODS)
    results = campaign_runner(spec)
    headers, rows = rtt_ccdf_rows(results)
    emit("fig12", "Figure 12: packet RTT CCDF (ms) per carrier/size",
         [("rtt ccdf", headers, rows)])

    def median_rtt(carrier, path, size="16 MB"):
        for row in rows:
            if row[0] == carrier and row[1] == path and row[2] == size:
                return float(row[headers.index("P>0.5")])
        raise AssertionError(f"missing {carrier}/{path}/{size}")

    # WiFi < AT&T < Sprint at the median, Sprint tail is the heaviest.
    assert median_rtt("att", "wifi") < median_rtt("att", "att")
    assert median_rtt("att", "att") < median_rtt("sprint", "sprint")

"""Figure 13: out-of-order delay CCDFs at the MPTCP receive buffer.

Expected shape (Section 5.2): with AT&T (and mostly Verizon) ~75% of
packets are delivered in order; with Sprint 3G ~75% are out-of-order
and more than 20% wait over 150 ms -- too long for real-time traffic.
"""

from benchmarks.conftest import BENCH_REPS, PERIODS, emit
from repro.experiments.scenarios import latency_campaign, ofo_ccdf_rows


def test_fig13_out_of_order_delay_ccdf(campaign_runner):
    spec = latency_campaign(repetitions=BENCH_REPS, periods=PERIODS)
    results = campaign_runner(spec)
    headers, rows = ofo_ccdf_rows(results)
    emit("fig13", "Figure 13: out-of-order delay CCDF (ms)",
         [("ofo ccdf", headers, rows)])

    def in_order_pct(carrier, size="16 MB"):
        for row in rows:
            if row[0] == carrier and row[1] == size:
                return float(row[3])
        raise AssertionError(f"missing {carrier}/{size}")

    assert in_order_pct("att") > in_order_pct("sprint")
    assert in_order_pct("sprint") < 50.0  # most Sprint packets reorder

"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper: it runs
the corresponding measurement campaign once (``benchmark.pedantic``
with a single round -- the campaign *is* the workload), prints the
rows/series the paper reports, and writes them as CSV next to this
file under ``benchmarks/output/``.

Environment knobs:

* ``REPRO_BENCH_REPS``  -- repetitions per configuration cell
  (default 2; the paper used 20 per period).
* ``REPRO_BENCH_FULL``  -- set to 1 to run full-size experiments
  (all four day periods, 512 MB backlog for Figure 11).
* ``REPRO_BENCH_JOBS``  -- worker processes per campaign (default:
  one per CPU core; results are bit-identical to a serial run).
* ``REPRO_BENCH_JOURNAL`` -- path of a resume journal: completed
  runs are streamed there and skipped on re-invocation, so an
  interrupted benchmark session picks up where it left off.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, List, Sequence, Tuple

import pytest

from repro.experiments.report import render_table, write_csv
from repro.experiments.runner import Campaign, CampaignSpec, RunResult
from repro.wireless.profiles import TimeOfDay

OUTPUT_DIR = Path(__file__).parent / "output"

BENCH_REPS = int(os.environ.get("REPRO_BENCH_REPS", "2"))
BENCH_FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "0"))  # 0 = all cores
BENCH_JOURNAL = os.environ.get("REPRO_BENCH_JOURNAL") or None

#: Period sets: quick runs sample one period; full runs cover the day.
PERIODS = (tuple(TimeOfDay) if BENCH_FULL
           else (TimeOfDay.AFTERNOON,))


def run_campaign(spec: CampaignSpec) -> List[RunResult]:
    """Execute a campaign and sanity-check completion."""
    campaign = Campaign(spec, jobs=BENCH_JOBS, journal=BENCH_JOURNAL)
    results = campaign.run()
    completed = campaign.completed_fraction()
    assert completed > 0.9, (
        f"campaign {spec.name}: only {completed:.0%} of runs completed")
    return results


def emit(name: str, title: str,
         tables: Sequence[Tuple[str, Sequence[str], Sequence[Sequence]]],
         ) -> None:
    """Print each (label, headers, rows) table and export it as CSV."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
    for label, headers, rows in tables:
        print()
        print(render_table(headers, rows, title=label))
        safe = label.lower().replace(" ", "_").replace("/", "-")
        write_csv(OUTPUT_DIR / f"{name}_{safe}.csv", headers, rows)


@pytest.fixture
def campaign_runner(benchmark) -> Callable[[CampaignSpec], List[RunResult]]:
    """Benchmark a campaign exactly once and return its results."""

    def run(spec: CampaignSpec) -> List[RunResult]:
        return benchmark.pedantic(run_campaign, args=(spec,),
                                  rounds=1, iterations=1)

    return run

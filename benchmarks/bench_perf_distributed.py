"""Distributed-backend benchmark: coordinator/worker dispatch overhead.

The distributed backend trades per-cell socket round-trips (lease,
renew, offer/want, publish) for the ability to put workers on other
hosts.  This benchmark measures that trade on one machine, over the
same fig02-style workload the pool benchmark uses:

* **serial**       -- the single-process reference wall.
* **pool**         -- the in-process worker pool at the same width.
* **distributed**  -- two localhost ``repro worker`` subprocesses
  leasing from the TCP coordinator.
* **overhead**     -- the distributed pass again with a warm
  worker-local cache: every cell is served from the worker's store,
  so the remaining wall is (almost) pure coordination — leases,
  renewals, digest negotiation and object transfer.  Divided by the
  cell count, that is the dispatch overhead per cell.
* **warm**         -- the distributed pass against a warm *shared*
  store: every cell restores before anything is leased, so the hit
  rate must be total.

Every configuration is asserted byte-identical on download times.
Results land in the ``distributed`` section of BENCH_PERF.json.
``--check`` gates CI: the warm hit rate must be >= 99% (hard — that
is determinism, not timing) and the per-cell dispatch overhead must
stay under the soft ceiling (softened by REPRO_PERF_SOFT=1 on noisy
runners).

Usage::

    python benchmarks/bench_perf_distributed.py           # run + JSON
    python benchmarks/bench_perf_distributed.py --quick   # smaller (CI)
    python benchmarks/bench_perf_distributed.py --check   # assert gates
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cache import RunCache  # noqa: E402
from repro.experiments.config import FlowSpec  # noqa: E402
from repro.experiments.parallel import execute_plan  # noqa: E402
from repro.experiments.runner import Campaign, CampaignSpec  # noqa: E402
from repro.wireless.profiles import TimeOfDay  # noqa: E402

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "output" / \
    "BENCH_PERF.json"

MB = 1024 * 1024
KB = 1024

#: Minimum warm shared-store hit rate ``--check`` enforces (hard: the
#: acceptance bar for distributed reruns — a cold key means the wire
#: format or the address drifted, a correctness bug, not noise).
HIT_RATE_FLOOR = 0.99
#: Per-cell dispatch overhead ceiling in milliseconds (soft).
OVERHEAD_CEILING_MS = 250.0


def _plan(quick: bool):
    sizes = (256 * KB, 1 * MB) if quick else (1 * MB, 4 * MB)
    spec = CampaignSpec(
        name="bench-dist",
        specs=(FlowSpec.mptcp(carrier="att", controller="coupled"),
               FlowSpec.single_path("wifi")),
        sizes=sizes, repetitions=2,
        periods=(TimeOfDay.AFTERNOON,), base_seed=2013)
    return Campaign(spec).plan()


def _run(plan, reps, **kwargs):
    """Best-of-reps wall clock for one execute_plan configuration."""
    best = None
    oracle = None
    for _ in range(reps):
        started = time.perf_counter()
        results = execute_plan(plan, **kwargs)
        wall = time.perf_counter() - started
        times = [result.download_time for result in results]
        if any(time_s is None for time_s in times):
            raise AssertionError("benchmark transfer incomplete")
        if oracle is None:
            oracle = times
        elif times != oracle:
            raise AssertionError(
                f"determinism violation: {times!r} != {oracle!r}")
        if best is None or wall < best:
            best = wall
    return best, oracle


def bench(workers: int, reps: int, quick: bool, scratch: Path) -> dict:
    plan = _plan(quick)
    section = {"workers": workers, "reps": reps, "cells": len(plan),
               "workload": "fig02 mix" + (" (quick)" if quick else "")}

    serial_wall, oracle = _run(plan, reps, jobs=1)
    section["serial_wall_s"] = round(serial_wall, 3)
    print(f"{'serial':12s} {serial_wall:7.3f}s")

    pool_wall, times = _run(plan, reps, jobs=workers)
    if times != oracle:
        raise AssertionError("pool backend changed results")
    section["pool_wall_s"] = round(pool_wall, 3)
    print(f"{'pool':12s} {pool_wall:7.3f}s")

    dist_wall, times = _run(plan, reps, jobs=workers,
                            backend="subprocess", chunk=2)
    if times != oracle:
        raise AssertionError("distributed backend changed results")
    section["distributed_wall_s"] = round(dist_wall, 3)
    section["distributed_vs_serial"] = round(dist_wall / serial_wall, 3)
    print(f"{'distributed':12s} {dist_wall:7.3f}s   "
          f"({section['distributed_vs_serial']:.2f}x serial)")

    # Overhead: a warm worker-local store serves every leased cell, so
    # the wall that remains is coordination + transfer, not simulation.
    worker_root = scratch / "worker-cache"
    shutil.rmtree(worker_root, ignore_errors=True)
    _, times = _run(plan, 1, jobs=workers, backend="subprocess",
                    chunk=2, worker_cache=str(worker_root))
    if times != oracle:
        raise AssertionError("worker cache cold pass changed results")
    overhead_wall, times = _run(plan, reps, jobs=workers,
                                backend="subprocess", chunk=2,
                                worker_cache=str(worker_root))
    if times != oracle:
        raise AssertionError("worker cache warm pass changed results")
    per_cell_ms = overhead_wall / len(plan) * 1000.0
    section["overhead_wall_s"] = round(overhead_wall, 3)
    section["dispatch_overhead_ms_per_cell"] = round(per_cell_ms, 2)
    print(f"{'overhead':12s} {overhead_wall:7.3f}s   "
          f"({per_cell_ms:.1f} ms/cell dispatch overhead)")

    # Warm shared store: the distributed rerun restores everything
    # before the coordinator would lease a single cell.
    shared_root = scratch / "shared-cache"
    shutil.rmtree(shared_root, ignore_errors=True)
    _, times = _run(plan, 1, jobs=workers, backend="subprocess",
                    chunk=2, cache=str(shared_root))
    if times != oracle:
        raise AssertionError("shared cache cold pass changed results")
    cache = RunCache(shared_root)
    warm_wall, times = _run(plan, 1, jobs=workers,
                            backend="subprocess", chunk=2, cache=cache)
    if times != oracle:
        raise AssertionError("shared cache warm pass changed results")
    hit_rate = cache.hit_rate
    cache.close()
    section["warm_wall_s"] = round(warm_wall, 3)
    section["warm_hit_rate"] = round(hit_rate, 4)
    print(f"{'warm rerun':12s} {warm_wall:7.3f}s   "
          f"({hit_rate:.0%} hits)")
    return section


def merge_output(path: Path, section: dict) -> None:
    document = {}
    if path.exists():
        document = json.loads(path.read_text())
    document.setdefault("schema", "repro-bench-perf/1")
    document["distributed"] = section
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def check(section: dict) -> int:
    """The CI gates; returns a shell exit status."""
    soft = os.environ.get("REPRO_PERF_SOFT", "0") == "1"
    failures = []
    if section["warm_hit_rate"] < HIT_RATE_FLOOR:
        # Never softened: a cold key is a correctness regression.
        print(f"FAIL: warm hit rate {section['warm_hit_rate']:.0%} "
              f"< {HIT_RATE_FLOOR:.0%}")
        return 1
    if section["dispatch_overhead_ms_per_cell"] > OVERHEAD_CEILING_MS:
        failures.append(
            f"dispatch overhead "
            f"{section['dispatch_overhead_ms_per_cell']:.1f} ms/cell "
            f"> {OVERHEAD_CEILING_MS:.0f} ms")
    for failure in failures:
        print(("WARN" if soft else "FAIL") + f": {failure}")
    return 0 if (soft or not failures) else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2,
                        help="localhost worker processes (default 2)")
    parser.add_argument("--reps", type=int, default=2,
                        help="repetitions per configuration; fastest "
                             "rep kept (default 2)")
    parser.add_argument("--quick", action="store_true",
                        help="256 KB/1 MB flows instead of 1/4 MB (CI)")
    parser.add_argument("--check", action="store_true",
                        help="assert the hit-rate and overhead gates")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"JSON path (default {DEFAULT_OUTPUT})")
    parser.add_argument("--scratch", type=Path, default=None,
                        help="cache scratch directory (default: a "
                             "fresh temp dir, removed afterwards)")
    args = parser.parse_args(argv)

    scratch = args.scratch
    cleanup = False
    if scratch is None:
        import tempfile
        scratch = Path(tempfile.mkdtemp(prefix="bench-dist-"))
        cleanup = True
    try:
        section = bench(args.workers, args.reps, args.quick, scratch)
    finally:
        if cleanup:
            shutil.rmtree(scratch, ignore_errors=True)
    merge_output(args.output, section)
    print(f"wrote {args.output}")
    if args.check:
        return check(section)
    return 0


if __name__ == "__main__":
    sys.exit(main())

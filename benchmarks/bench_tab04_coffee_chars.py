"""Table 4: coffee-shop path characteristics (public WiFi vs AT&T).

Expected shape: hotspot WiFi loss is several percent -- clearly above
the home network's -- while AT&T stays effectively loss-free.
"""

from benchmarks.conftest import BENCH_REPS, emit
from repro.experiments.scenarios import (
    coffee_shop_campaign,
    path_characteristics_rows,
)


def test_tab04_coffee_shop_path_characteristics(campaign_runner):
    spec = coffee_shop_campaign(repetitions=BENCH_REPS)
    results = campaign_runner(spec)
    headers, rows = path_characteristics_rows(results)
    emit("tab04", "Table 4: coffee-shop loss (%) and RTT (ms), SP runs",
         [("path characteristics", headers, rows)])

    def loss(size, path):
        for row in rows:
            if row[0] == size and row[1] == path:
                text = row[3]
                return 0.0 if text == "~" else float(text.split("+-")[0])
        raise AssertionError(f"missing {size}/{path}")

    assert loss("512 KB", "WiFi") > 1.0   # loaded hotspot: percent-level
    assert loss("512 KB", "ATT") < 0.5    # LTE stays clean

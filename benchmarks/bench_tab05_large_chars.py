"""Table 5: large-flow path characteristics (WiFi vs AT&T, SP runs).

Expected shape: WiFi loss ~1.6-2.1% with stable ~25 ms RTTs; AT&T loss
negligible with RTTs inflated into the 130-155 ms band by bufferbloat.
"""

from benchmarks.conftest import BENCH_REPS, PERIODS, emit
from repro.experiments.scenarios import (
    large_flows_campaign,
    path_characteristics_rows,
)


def test_tab05_large_flow_path_characteristics(campaign_runner):
    spec = large_flows_campaign(repetitions=BENCH_REPS, periods=PERIODS)
    results = campaign_runner(spec)
    headers, rows = path_characteristics_rows(results)
    emit("tab05", "Table 5: large-flow loss (%) and RTT (ms), SP runs",
         [("path characteristics", headers, rows)])

    for row in rows:
        size, path = row[0], row[1]
        loss_text, rtt_text = row[3], row[4]
        loss = 0.0 if loss_text == "~" else float(loss_text.split("+-")[0])
        rtt = float(rtt_text.split("+-")[0])
        if path == "WiFi":
            assert loss > 0.5, f"WiFi at {size} should be lossy"
            assert rtt < 80.0, f"WiFi RTT stays low ({size})"
        else:
            assert loss < 1.0, f"LTE at {size} stays nearly loss-free"
            assert rtt > 60.0, f"LTE RTT includes queueing ({size})"

"""Figure 7: coffee-shop traffic share -- the lossy public hotspot
pushes MPTCP toward the cellular path.

Expected shape: at equal sizes, the cellular fraction is higher than in
the home-WiFi runs of Figure 5 (cross-checked inside the test).
"""

from benchmarks.conftest import BENCH_JOBS, BENCH_REPS, PERIODS, emit
from repro.experiments.runner import Campaign
from repro.experiments.scenarios import (
    coffee_shop_campaign,
    small_flows_campaign,
    traffic_share_rows,
)


def test_fig07_coffee_shop_traffic_share(campaign_runner):
    spec = coffee_shop_campaign(repetitions=BENCH_REPS)
    results = campaign_runner(spec)
    headers, rows = traffic_share_rows(results)
    emit("fig07", "Figure 7: coffee shop, cellular traffic fraction",
         [("cellular share", headers, rows)])
    shares = {(row[0], row[1]): float(row[3].split("+-")[0])
              for row in rows}
    # Compare against the home-WiFi environment (Figure 5's campaign).
    home_results = Campaign(
        small_flows_campaign(repetitions=1, periods=PERIODS),
        jobs=BENCH_JOBS).run()
    _, home_rows = traffic_share_rows(home_results)
    home = {(row[0], row[1]): float(row[3].split("+-")[0])
            for row in home_rows}
    assert shares[("512 KB", "MP-2")] > home[("512 KB", "MP-2")]

"""Figure 11: ~infinite-backlog transfers, MP-2/MP-4 x coupled/reno.

The paper transfers 512 MB ("download time is around 6-7 minutes,
hence the effect of slow starts should be negligible", 10 iterations).
By default this benchmark scales the object to 32 MB to keep the suite
minutes-scale; set ``REPRO_BENCH_FULL=1`` for the true 512 MB runs.

Expected shape: MP-4 (slightly) outperforms MP-2 even with slow-start
effects amortized away -- the gain is pooling, not just extra slow
starts -- and uncoupled reno beats coupled (it is more aggressive and
unfair).
"""

from benchmarks.conftest import BENCH_FULL, BENCH_REPS, emit
from repro.experiments.scenarios import MB, backlog_campaign, \
    download_time_rows


def test_fig11_infinite_backlog(campaign_runner):
    size = 512 * MB if BENCH_FULL else 32 * MB
    spec = backlog_campaign(size=size,
                            repetitions=max(BENCH_REPS, 3))
    results = campaign_runner(spec)
    headers, rows = download_time_rows(results)
    emit("fig11",
         f"Figure 11: ~infinite backlog ({size // MB} MB) download time",
         [("download time", headers, rows)])
    medians = {row[1]: float(row[6]) for row in rows}
    assert medians["MP-4"] <= medians["MP-2"] * 1.05
    assert medians["MP-4 (reno)"] <= medians["MP-4"] * 1.05

"""Extension: fairness of the MPTCP controllers at a shared bottleneck.

Section 4.2 explains reno's speed: "TCP New Reno performs better
because it is more aggressive and not fair to other users", and the
design goal of coupled/olia is to take no more at a shared bottleneck
than one TCP would.  This benchmark measures that claim directly:

a background single-path TCP download runs on the WiFi path; an MPTCP
connection (whose WiFi subflow shares the same access bottleneck)
starts alongside it with each controller.  We report the background
flow's throughput relative to running alone -- the canonical
"fairness to other users" metric.

Expected shape: uncoupled reno depresses the background flow the most;
coupled and olia leave it close to what a single competing TCP would.
"""

import statistics

from benchmarks.conftest import BENCH_REPS, emit
from repro.app.http import HTTP_PORT, HttpClient, HttpServerSession, \
    PlainTcpAcceptor
from repro.core.connection import MptcpConfig, MptcpConnection, \
    MptcpListener
from repro.core.coupling import RenoController
from repro.tcp.endpoint import TcpConfig, TcpEndpoint
from repro.testbed import Testbed, TestbedConfig

MB = 1024 * 1024
BACKGROUND_SIZE = 6 * MB
FOREGROUND_SIZE = 6 * MB
BACKGROUND_PORT = 8081
SEEDS = tuple(range(200, 200 + max(BENCH_REPS * 2, 4)))


def run(controller, seed, paths=2):
    """Return the background flow's completion time.

    ``controller=None`` runs the background flow alone (baseline);
    ``controller="sp-reno"`` competes it against another plain TCP.
    """
    testbed = Testbed(TestbedConfig(seed=seed,
                                    server_interfaces=2 if paths == 4
                                    else 1))
    tcp_config = TcpConfig()
    # Background flow: plain TCP over WiFi on its own port.
    PlainTcpAcceptor(testbed.sim, testbed.server, BACKGROUND_PORT,
                     tcp_config, RenoController,
                     responder=lambda i: BACKGROUND_SIZE)
    background_ep = TcpEndpoint(
        testbed.sim, testbed.client, "client.wifi",
        testbed.client.ephemeral_port(), testbed.server_addrs[0],
        BACKGROUND_PORT, tcp_config, RenoController(), name="bg")
    background = HttpClient(testbed.sim, background_ep, BACKGROUND_SIZE)
    background.start()
    background_ep.connect()

    if controller == "sp-reno":
        PlainTcpAcceptor(testbed.sim, testbed.server, HTTP_PORT,
                         tcp_config, RenoController,
                         responder=lambda i: FOREGROUND_SIZE)
        foreground_ep = TcpEndpoint(
            testbed.sim, testbed.client, "client.wifi",
            testbed.client.ephemeral_port(), testbed.server_addrs[0],
            HTTP_PORT, tcp_config, RenoController(), name="fg")
        HttpClient(testbed.sim, foreground_ep, FOREGROUND_SIZE)
        foreground_ep.connect()
    elif controller is not None:
        config = MptcpConfig(controller=controller)
        MptcpListener(testbed.sim, testbed.server, HTTP_PORT, config,
                      server_addrs=testbed.server_addrs,
                      on_connection=lambda c:
                      HttpServerSession.fixed(c, FOREGROUND_SIZE))
        connection = MptcpConnection.client(
            testbed.sim, testbed.client, testbed.client_addrs,
            testbed.server_addrs[0], HTTP_PORT, config)
        HttpClient(testbed.sim, connection, FOREGROUND_SIZE)
        connection.connect()

    testbed.run(until=600.0)
    assert background.record.complete
    return background.record.download_time


def test_ext_fairness(benchmark):
    def run_all():
        alone = {seed: run(None, seed) for seed in SEEDS}
        rows = []
        for controller, label in ((None, "background alone"),
                                  ("sp-reno", "vs one plain TCP"),
                                  ("coupled", "vs MP-2 coupled"),
                                  ("olia", "vs MP-2 olia"),
                                  ("reno", "vs MP-2 reno"),
                                  ):
            times = ([alone[seed] for seed in SEEDS]
                     if controller is None
                     else [run(controller, seed) for seed in SEEDS])
            slowdown = statistics.mean(
                times[i] / alone[seed]
                for i, seed in enumerate(SEEDS))
            rows.append([label, f"{statistics.mean(times):.2f}",
                         f"{slowdown:.2f}x"])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("ext_fairness",
         "Extension: background WiFi TCP vs a competing MPTCP download",
         [("fairness", ["competitor", "background time (s)",
                        "slowdown vs alone"], rows)])
    slowdowns = {row[0]: float(row[2].rstrip("x")) for row in rows}
    # Coupled MPTCP must be no more aggressive at the WiFi bottleneck
    # than uncoupled-reno MPTCP (the design goal).
    assert slowdowns["vs MP-2 coupled"] <= \
        slowdowns["vs MP-2 reno"] + 0.05
    # And every competitor slows the background flow down somewhat.
    assert slowdowns["vs MP-2 reno"] > 1.02
"""Extension: the energy cost of the second radio (the paper's stated
future work, Section 6).

Meters every radio with the standard smartphone power model while
downloading the same object over SP-WiFi, SP-LTE and MPTCP, and
reports the latency-energy trade-off (joules accounted until every
radio's tail drains).
"""

import statistics

from benchmarks.conftest import BENCH_REPS, emit
from repro.app.http import HTTP_PORT, HttpClient, HttpServerSession, \
    PlainTcpAcceptor
from repro.core.connection import MptcpConfig, MptcpConnection, \
    MptcpListener
from repro.core.coupling import RenoController
from repro.tcp.endpoint import TcpConfig, TcpEndpoint
from repro.testbed import Testbed, TestbedConfig
from repro.wireless.energy import EnergyAudit

MB = 1024 * 1024
SIZE = 4 * MB
SEEDS = tuple(range(180, 180 + max(BENCH_REPS * 2, 4)))
TAIL_DRAIN = 12.0


def run(mode, seed):
    testbed = Testbed(TestbedConfig(seed=seed))
    audit = EnergyAudit(testbed)
    if mode == "mptcp":
        config = MptcpConfig()
        MptcpListener(testbed.sim, testbed.server, HTTP_PORT, config,
                      server_addrs=testbed.server_addrs,
                      on_connection=lambda c:
                      HttpServerSession.fixed(c, SIZE))
        transport = MptcpConnection.client(
            testbed.sim, testbed.client, testbed.client_addrs,
            testbed.server_addrs[0], HTTP_PORT, config)
    else:
        config = TcpConfig()
        PlainTcpAcceptor(testbed.sim, testbed.server, HTTP_PORT, config,
                         RenoController, responder=lambda i: SIZE)
        local = "client.wifi" if mode == "wifi" else "client.att"
        transport = TcpEndpoint(testbed.sim, testbed.client, local,
                                testbed.client.ephemeral_port(),
                                testbed.server_addrs[0], HTTP_PORT,
                                config, RenoController())
    client = HttpClient(testbed.sim, transport, SIZE)
    client.start()
    transport.connect()
    testbed.run(until=300.0)
    assert client.record.complete
    joules = audit.total_joules(
        until=client.record.completed_at + TAIL_DRAIN)
    return client.record.download_time, joules


def test_ext_energy_tradeoff(benchmark):
    def run_all():
        rows = []
        for mode, label in (("wifi", "SP-WiFi"), ("lte", "SP-LTE"),
                            ("mptcp", "MPTCP")):
            times, joules = [], []
            for seed in SEEDS:
                t, j = run(mode, seed)
                times.append(t)
                joules.append(j)
            rows.append([label, f"{statistics.mean(times):.2f}",
                         f"{statistics.mean(joules):.2f}",
                         f"{statistics.mean(joules) / (SIZE / MB):.2f}"])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("ext_energy",
         f"Extension: energy to download {SIZE // MB} MB "
         "(radio active/tail/promotion model)",
         [("energy", ["transport", "time (s)", "energy (J)", "J/MB"],
           rows)])
    by_label = {row[0]: (float(row[1]), float(row[2])) for row in rows}
    wifi_time, wifi_joules = by_label["SP-WiFi"]
    mptcp_time, mptcp_joules = by_label["MPTCP"]
    # The trade-off the paper anticipates: faster, but not free.
    assert mptcp_time < wifi_time
    assert mptcp_joules > wifi_joules * 1.5

"""Campaign wall-clock benchmark: fig02/fig09-style measurement runs.

Times complete :class:`Measurement` runs (testbed build, simulation,
metric extraction) for the shapes the paper's figures lean on:

* fig02-style: baseline-size downloads on MP-2 and single-path WiFi.
* fig09-style: large flows (16 and 32 MB) where bufferbloat, SACK
  recovery and the coupled controller dominate the hot path.

Two configurations run back to back in the same process:

* **after** -- the defaults: arg-carrying fast scheduling on links and
  metrics-only streaming capture.
* **legacy-mode** -- ``Link.use_fast_scheduling = False`` plus
  ``capture_level="full"``: per-packet closures, Event handles, a
  ``PacketRecord`` per packet and batch trace analysis.  This
  understates the true pre-overhaul cost (the engine core, the
  wire-size cache and the O(1) receiver bookkeeping cannot be toggled
  off); the ``seed_baseline`` section of BENCH_PERF.json records
  measurements taken at the pre-overhaul commit itself.

Every run asserts the download time against the known-good value: the
fast path and every capture level must be byte-identical.

Usage::

    python benchmarks/bench_perf_campaign.py            # run + update JSON
    python benchmarks/bench_perf_campaign.py --quick    # 16 MB flows only
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.config import FlowSpec  # noqa: E402
from repro.experiments.runner import Measurement  # noqa: E402
from repro.netsim.link import Link  # noqa: E402
from repro.sim.rng import derive_seed  # noqa: E402
from repro.wireless.profiles import TimeOfDay  # noqa: E402

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "output" / \
    "BENCH_PERF.json"

MB = 1024 * 1024


def _workloads(quick: bool):
    mp2 = FlowSpec.mptcp(carrier="att", controller="coupled")
    wifi = FlowSpec.single_path("wifi")
    loads = [
        ("fig02-mp2-2MB", mp2, 2 * MB),
        ("fig02-spwifi-2MB", wifi, 2 * MB),
        ("fig09-mp2-16MB", mp2, 16 * MB),
        ("fig09-spwifi-16MB", wifi, 16 * MB),
    ]
    if not quick:
        loads.append(("fig09-mp2-32MB", mp2, 32 * MB))
    return loads


def run_one(spec: FlowSpec, size: int, fast: bool, level: str) -> dict:
    Link.use_fast_scheduling = fast
    try:
        seed = derive_seed(2013, f"bench-perf:{spec.identity}:{size}")
        measurement = Measurement(spec, size, seed=seed,
                                  period=TimeOfDay.AFTERNOON,
                                  capture_level=level)
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        result = measurement.run()
        cpu = time.process_time() - cpu_start
        wall = time.perf_counter() - wall_start
    finally:
        Link.use_fast_scheduling = True
    return {"wall": wall, "cpu": cpu,
            "download_time": result.download_time,
            "completed": result.completed}


def bench(reps: int, quick: bool) -> dict:
    campaign = {"reps": reps, "workloads": {}, "totals": {}}
    totals = {"after": 0.0, "legacy_mode": 0.0}
    for tag, spec, size in _workloads(quick):
        entry = {}
        oracle = None
        # Both configurations run back to back per workload; the
        # fastest of ``reps`` runs is kept for each.
        for mode, fast, level in (("after", True, "metrics-only"),
                                  ("legacy_mode", False, "full")):
            best = None
            for _ in range(reps):
                sample = run_one(spec, size, fast, level)
                if not sample["completed"]:
                    raise AssertionError(f"{tag}: transfer incomplete")
                if oracle is None:
                    oracle = sample["download_time"]
                elif sample["download_time"] != oracle:
                    raise AssertionError(
                        f"{tag}: determinism violation -- "
                        f"{sample['download_time']!r} != {oracle!r}")
                if best is None or sample["wall"] < best["wall"]:
                    best = sample
            entry[mode] = {"wall_s": round(best["wall"], 3),
                           "cpu_s": round(best["cpu"], 3)}
            totals[mode] += best["wall"]
        entry["download_time"] = oracle
        reduction = 1.0 - (entry["after"]["wall_s"]
                           / entry["legacy_mode"]["wall_s"])
        entry["wall_reduction_vs_legacy_mode"] = round(reduction, 3)
        campaign["workloads"][tag] = entry
        print(f"{tag:20s} after {entry['after']['wall_s']:6.3f}s   "
              f"legacy-mode {entry['legacy_mode']['wall_s']:6.3f}s   "
              f"(-{reduction:.1%})  dl={oracle}")
    campaign["totals"] = {
        "after_wall_s": round(totals["after"], 3),
        "legacy_mode_wall_s": round(totals["legacy_mode"], 3),
        "wall_reduction_vs_legacy_mode": round(
            1.0 - totals["after"] / totals["legacy_mode"], 3),
    }
    print(f"{'total':20s} after {totals['after']:6.3f}s   "
          f"legacy-mode {totals['legacy_mode']:6.3f}s   "
          f"(-{campaign['totals']['wall_reduction_vs_legacy_mode']:.1%})")
    return campaign


def merge_output(path: Path, campaign: dict) -> None:
    document = {}
    if path.exists():
        document = json.loads(path.read_text())
    document.setdefault("schema", "repro-bench-perf/1")
    document["python"] = sys.version.split()[0]
    document["platform"] = sys.platform
    document["campaign"] = campaign
    baseline = document.get("seed_baseline", {}).get("campaign")
    if baseline:
        before_total = baseline.get("total_wall_s")
        after_total = campaign["totals"]["after_wall_s"]
        if before_total:
            campaign["totals"]["seed_baseline_total_wall_s"] = before_total
            campaign["totals"]["wall_reduction_vs_seed"] = round(
                1.0 - after_total / before_total, 3)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=3,
                        help="repetitions per configuration; fastest "
                             "rep kept (default 3)")
    parser.add_argument("--quick", action="store_true",
                        help="skip the 32 MB flow (CI smoke)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"JSON path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    campaign = bench(args.reps, args.quick)
    merge_output(args.output, campaign)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

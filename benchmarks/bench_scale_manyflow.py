"""Many-flow scale benchmark: the shared-world kernel under load.

Three sections:

* **scale** -- a pure fluid world (no packet stack): a closed-loop
  population of 100 / 1000 / 5000 users hammers the two access-link
  bottlenecks through one event engine.  Reports wall-clock flows/sec
  (kernel overhead), completed-flows goodput (should track bottleneck
  capacity) and peak concurrency (must equal the population -- the
  `>= 1000 concurrent flows in one engine` acceptance gate).
* **hybrid** -- one full packet-level MPTCP measurement inside a
  ``closed-32`` world: the integration cost of hybrid fidelity, with
  the foreground download time asserted as a determinism oracle.
* **fairness campaign** -- runs :func:`world_campaign` and writes
  ``benchmarks/output/manyflow_fairness.csv``, the shared-bottleneck
  fairness artifact (`repro world` renders the same rows).

Usage::

    python benchmarks/bench_scale_manyflow.py            # run + update JSON
    python benchmarks/bench_scale_manyflow.py --quick    # CI smoke
    python benchmarks/bench_scale_manyflow.py --check    # regression gate

``--check`` gates are two-tier, like bench_perf_*: flows/sec floors
are wall-clock measurements and soften under ``REPRO_PERF_SOFT=1``;
determinism gates (completion counts, peak concurrency, the hybrid
download-time oracle) stay hard on any machine.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sim.engine import Simulator  # noqa: E402
from repro.sim.rng import derive_seed  # noqa: E402
from repro.world import (  # noqa: E402
    ClosedLoopUsers,
    FluidNetwork,
    make_size_sampler,
)

OUTPUT_DIR = Path(__file__).resolve().parent / "output"
DEFAULT_OUTPUT = OUTPUT_DIR / "BENCH_PERF.json"
FAIRNESS_CSV = OUTPUT_DIR / "manyflow_fairness.csv"

#: --check fails when wall-clock flows/sec falls more than this
#: fraction below the committed baseline (soft under REPRO_PERF_SOFT).
REGRESSION_TOLERANCE = 0.25

#: Mean ~24 KB, heavy-ish tail, capped at 1 MB: small enough that the
#: bottlenecks complete hundreds of flows per simulated second, so the
#: benchmark measures kernel churn rather than one long drain.
SCALE_SIZES = "lognormal:mu=9.6,sigma=1.0,cap=1048576"

#: The two access-link bottlenecks of the standard testbed (home WiFi
#: and ATT LTE downlink rates).
SCALE_CAPACITIES = {"wifi:down": 20e6, "cell:down": 13e6}


def run_scale(users: int, horizon: float) -> dict:
    """One closed-loop population on a fresh engine; returns metrics."""
    sim = Simulator()
    fluid = FluidNetwork(sim)
    for name, capacity in SCALE_CAPACITIES.items():
        fluid.add_bottleneck(name, capacity)
    rng = random.Random(derive_seed(2013, f"manyflow:{users}"))
    loop = ClosedLoopUsers(
        sim, fluid, rng,
        routes=[("wifi:down",), ("cell:down",)],
        sampler=make_size_sampler(SCALE_SIZES),
        users=users, think_mean=0.0)
    started = time.perf_counter()
    loop.start()
    sim.run(until=horizon)
    wall = time.perf_counter() - started
    stats = fluid.stats
    return {
        "users": users,
        "sim_horizon_s": horizon,
        "wall_s": round(wall, 4),
        "flows_completed": stats.flows_completed,
        "flows_per_sec_wall": round(stats.flows_completed / wall, 1)
        if wall > 0 else 0.0,
        "flows_per_sim_sec": round(stats.flows_completed / horizon, 1),
        "goodput_mbps": round(
            stats.bytes_completed * 8.0 / horizon / 1e6, 3),
        "peak_concurrent": stats.peak_concurrent,
        "events": sim.events_scheduled,
        "jain": round(stats.jain_index, 4),
    }


def run_hybrid(size: int) -> dict:
    """Full packet-level MPTCP download inside a closed-32 world."""
    from repro.experiments.config import FlowSpec
    from repro.experiments.runner import Measurement
    from repro.wireless.profiles import TimeOfDay

    spec = FlowSpec.mptcp(carrier="att", controller="coupled",
                          world="closed-32")
    seed = derive_seed(2013, f"bench-manyflow:{spec.identity}:{size}")
    started = time.perf_counter()
    result = Measurement(spec, size, seed=seed,
                         period=TimeOfDay.NIGHT).run()
    wall = time.perf_counter() - started
    assert result.completed, "hybrid run must complete"
    summary = result.world or {}
    return {
        "size": size,
        "wall_s": round(wall, 4),
        "download_time": result.download_time,
        "bg_flows_completed": summary.get("flows_completed", 0),
        "bg_peak_concurrent": summary.get("peak_concurrent", 0),
        "jain": round(summary.get("jain", 1.0), 4),
    }


def run_fairness_campaign(quick: bool, jobs: int) -> dict:
    """The shared-bottleneck fairness campaign; writes the CSV."""
    from repro.experiments.report import csv_text
    from repro.experiments.runner import Campaign
    from repro.experiments.scenarios import (
        world_campaign,
        world_fairness_rows,
    )

    KB = 1024
    spec = world_campaign(repetitions=1 if quick else 3,
                          size=(256 * KB if quick else 2048 * KB))
    started = time.perf_counter()
    campaign = Campaign(spec, jobs=jobs)
    results = campaign.run()
    wall = time.perf_counter() - started
    headers, rows = world_fairness_rows(results)
    csv = csv_text(headers, rows)
    FAIRNESS_CSV.parent.mkdir(parents=True, exist_ok=True)
    FAIRNESS_CSV.write_text(csv)
    completed = sum(1 for result in results if result.completed)
    print(f"fairness campaign: {completed}/{len(results)} cells "
          f"complete in {wall:.1f}s -> {FAIRNESS_CSV}")
    return {
        "cells": len(results),
        "completed": completed,
        "wall_s": round(wall, 2),
        "csv": FAIRNESS_CSV.name,
    }


def run_benchmarks(quick: bool, jobs: int,
                   with_campaign: bool = True) -> dict:
    populations = [100, 1000] if quick else [100, 1000, 5000]
    horizon = 15.0 if quick else 30.0
    manyflow = {"quick": quick, "scale": {}, "sizes": SCALE_SIZES}
    for users in populations:
        entry = run_scale(users, horizon)
        manyflow["scale"][str(users)] = entry
        print(f"scale {users:>5} users: "
              f"{entry['flows_per_sec_wall']:>9,.0f} flows/s wall, "
              f"{entry['flows_completed']:>6,} completed, "
              f"peak {entry['peak_concurrent']:,}, "
              f"{entry['goodput_mbps']:.1f} Mbit/s goodput")
    KB = 1024
    manyflow["hybrid"] = run_hybrid(512 * KB if quick else 2048 * KB)
    print(f"hybrid closed-32: download {manyflow['hybrid']['download_time']:.3f}s "
          f"({manyflow['hybrid']['bg_flows_completed']} bg flows, "
          f"wall {manyflow['hybrid']['wall_s']:.2f}s)")
    if with_campaign:
        manyflow["fairness"] = run_fairness_campaign(quick, jobs)
    return manyflow


def merge_output(path: Path, manyflow: dict, mode: str) -> None:
    """Update one mode of the manyflow section of BENCH_PERF.json.

    Baselines are kept per mode (``full`` / ``quick``) so the CI smoke
    run gates against a quick-shaped baseline instead of silently
    skipping every comparison.
    """
    document = {}
    if path.exists():
        document = json.loads(path.read_text())
    document.setdefault("schema", "repro-bench-perf/1")
    section = document.setdefault("manyflow", {})
    section[mode] = manyflow
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def check_regression(path: Path, manyflow: dict, mode: str) -> int:
    """Gate -- hard: concurrency + determinism; soft: flows/sec."""
    failures = []
    hard_failures = []

    # Hard gate 1: every population must actually be concurrent.
    for users, entry in sorted(manyflow["scale"].items(), key=lambda
                               item: int(item[0])):
        expected = entry["users"]
        peak = entry["peak_concurrent"]
        verdict = "ok" if peak >= expected else "FAIL"
        print(f"check concurrency {users:>5}: peak {peak:,} "
              f"(need {expected:,}): {verdict}")
        if peak < expected:
            hard_failures.append(f"{users}-user world only reached "
                                 f"{peak} concurrent flows")

    if not path.exists():
        print(f"no baseline at {path}; skipping baseline gates")
    else:
        baseline = json.loads(path.read_text()) \
            .get("manyflow", {}).get(mode, {})
        if not baseline:
            print(f"no {mode!r} manyflow baseline; "
                  "skipping baseline gates")
        for users, entry in manyflow["scale"].items():
            reference = baseline.get("scale", {}).get(users)
            if not reference:
                continue
            # Hard gate 2: identical seed + horizon => identical
            # completion count, on any machine.
            if entry["flows_completed"] != reference["flows_completed"]:
                hard_failures.append(
                    f"{users}-user completions "
                    f"{entry['flows_completed']} != baseline "
                    f"{reference['flows_completed']}")
                print(f"check determinism {users:>5}: FAIL")
            else:
                print(f"check determinism {users:>5}: "
                      f"{entry['flows_completed']:,} completions: ok")
            # Soft gate: wall-clock flows/sec floor.
            measured = entry["flows_per_sec_wall"]
            floor = reference["flows_per_sec_wall"] \
                * (1.0 - REGRESSION_TOLERANCE)
            verdict = "ok" if measured >= floor else "REGRESSION"
            print(f"check flows/sec {users:>5}: {measured:,.0f} vs "
                  f"baseline {reference['flows_per_sec_wall']:,.0f} "
                  f"(floor {floor:,.0f}): {verdict}")
            if measured < floor:
                failures.append(f"{users}-user flows/sec {measured:,.0f}"
                                f" < floor {floor:,.0f}")
        # Hard gate 3: the hybrid download-time oracle.
        reference = baseline.get("hybrid", {})
        if reference:
            expected = reference.get("download_time")
            measured = manyflow["hybrid"]["download_time"]
            if expected is not None and measured != expected:
                hard_failures.append(
                    f"hybrid oracle moved: {measured!r} != {expected!r}")
                print("check hybrid oracle: FAIL")
            else:
                print(f"check hybrid oracle: {measured:.6f}s: ok")

    if hard_failures:
        print("FAIL (hard, REPRO_PERF_SOFT does not apply): "
              + "; ".join(hard_failures))
        return 1
    if failures:
        message = "; ".join(failures)
        if os.environ.get("REPRO_PERF_SOFT") == "1":
            print(f"WARNING (REPRO_PERF_SOFT=1): {message}")
            return 0
        print(f"FAIL: {message}")
        print("Set REPRO_PERF_SOFT=1 to soft-fail on machines slower "
              "than the baseline recorder.")
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller populations and campaign (CI)")
    parser.add_argument("--check", action="store_true",
                        help="gate against the committed baseline; "
                             "flows/sec floors soften under "
                             "REPRO_PERF_SOFT=1, determinism and "
                             "concurrency gates stay hard")
    parser.add_argument("--jobs", type=int, default=0,
                        help="campaign workers (0 = all cores)")
    parser.add_argument("--no-campaign", action="store_true",
                        help="skip the fairness campaign section")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"JSON path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    manyflow = run_benchmarks(args.quick, args.jobs,
                              with_campaign=not args.no_campaign)
    if args.check:
        return check_regression(args.output, manyflow, mode)
    merge_output(args.output, manyflow, mode)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 8: simultaneous vs delayed (default) SYN establishment.

Expected shape (Section 4.1.2): simultaneous SYNs cut mean download
time for mid-size transfers (the paper reports ~14% at 512 KB and ~5%
at 2 MB) and change little for tiny transfers.
"""

from benchmarks.conftest import BENCH_REPS, PERIODS, emit
from repro.experiments.scenarios import (
    simultaneous_syn_campaign,
    syn_comparison_rows,
)


def test_fig08_simultaneous_vs_delayed_syn(campaign_runner):
    spec = simultaneous_syn_campaign(repetitions=max(BENCH_REPS * 3, 6),
                                     periods=PERIODS)
    results = campaign_runner(spec)
    headers, rows = syn_comparison_rows(results)
    emit("fig08", "Figure 8: simultaneous vs delayed SYN (MP-2, AT&T)",
         [("download time", headers, rows)])
    means = {(row[0], row[1]): float(row[3])
             for row in rows if row[1] in ("delayed", "simultaneous")}
    # Simultaneous SYN must not lose at 512 KB; typically it wins.
    assert means[("512 KB", "simultaneous")] <= \
        means[("512 KB", "delayed")] * 1.03

"""Extension: WiFi-outage handover (the Section 6 mobility argument).

Compares an 8 MB download through a mid-transfer WiFi outage: SP-WiFi
(stalls in RTO backoff, the paper's "stalled or reset") against MPTCP
with the link-down signal, reinjection, and re-join on recovery, plus
the backup-mode variant (cellular established but idle until needed).
"""

import statistics

from benchmarks.conftest import BENCH_REPS, emit
from repro.app.http import HTTP_PORT, HttpClient, HttpServerSession, \
    PlainTcpAcceptor
from repro.core.connection import MptcpConfig, MptcpConnection, \
    MptcpListener
from repro.core.coupling import RenoController
from repro.tcp.endpoint import TcpConfig, TcpEndpoint
from repro.testbed import Testbed, TestbedConfig
from repro.wireless.mobility import InterfaceOutage

MB = 1024 * 1024
SIZE = 8 * MB
DOWN_AT, UP_AT = 2.0, 6.0
SEEDS = tuple(range(160, 160 + max(BENCH_REPS * 2, 4)))


def run_sp(seed):
    testbed = Testbed(TestbedConfig(seed=seed))
    config = TcpConfig()
    PlainTcpAcceptor(testbed.sim, testbed.server, HTTP_PORT, config,
                     RenoController, responder=lambda i: SIZE)
    endpoint = TcpEndpoint(testbed.sim, testbed.client, "client.wifi",
                           testbed.client.ephemeral_port(),
                           testbed.server_addrs[0], HTTP_PORT, config,
                           RenoController())
    client = HttpClient(testbed.sim, endpoint, SIZE)
    client.start()
    endpoint.connect()
    InterfaceOutage(testbed.sim,
                    testbed.client.interfaces["client.wifi"]).schedule(
        down_at=DOWN_AT, up_at=UP_AT)
    testbed.run(until=600.0)
    return client.record


def run_mptcp(seed, backup=False):
    testbed = Testbed(TestbedConfig(seed=seed))
    config = MptcpConfig(backup_paths=("att",) if backup else ())
    MptcpListener(testbed.sim, testbed.server, HTTP_PORT, config,
                  server_addrs=testbed.server_addrs,
                  on_connection=lambda c: HttpServerSession.fixed(c, SIZE))
    connection = MptcpConnection.client(
        testbed.sim, testbed.client, testbed.client_addrs,
        testbed.server_addrs[0], HTTP_PORT, config)
    client = HttpClient(testbed.sim, connection, SIZE)
    client.start()
    connection.connect()
    outage = InterfaceOutage(testbed.sim,
                             testbed.client.interfaces["client.wifi"])
    outage.schedule(down_at=DOWN_AT, up_at=UP_AT)
    manager = connection.path_manager
    outage.on_down.append(lambda: manager.on_interface_down("client.wifi"))
    outage.on_up.append(lambda: manager.on_interface_up("client.wifi"))
    testbed.run(until=600.0)
    return client.record


def test_ext_handover(benchmark):
    def run():
        rows = []
        for label, runner in (
                ("SP-WiFi", run_sp),
                ("MPTCP", lambda seed: run_mptcp(seed)),
                ("MPTCP (backup)", lambda seed: run_mptcp(seed,
                                                          backup=True))):
            times = []
            incomplete = 0
            for seed in SEEDS:
                record = runner(seed)
                if record.complete:
                    times.append(record.download_time)
                else:
                    incomplete += 1
            rows.append([label,
                         f"{statistics.mean(times):.2f}" if times else "-",
                         str(len(times)), str(incomplete)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ext_handover",
         f"Extension: {SIZE // MB} MB download through a WiFi outage "
         f"({DOWN_AT:.0f}s-{UP_AT:.0f}s)",
         [("handover", ["transport", "mean time (s)", "completed",
                        "incomplete"], rows)])
    by_label = {row[0]: row for row in rows}
    mptcp_time = float(by_label["MPTCP"][1])
    sp_row = by_label["SP-WiFi"]
    if sp_row[1] != "-":
        assert mptcp_time < float(sp_row[1]) * 0.8, \
            "MPTCP must ride through the outage far faster than SP"
    backup_time = float(by_label["MPTCP (backup)"][1])
    assert backup_time < 600.0  # completes; somewhat slower than full

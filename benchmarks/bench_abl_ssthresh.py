"""Ablation: initial ssthresh = 64 KB vs (effectively) infinite.

Section 3.1: with cellular paths nearly loss-free, an infinite initial
ssthresh lets slow start blow the congestion window up until the deep
carrier buffers inflate RTTs ("severe RTT inflation"), hurting MPTCP.
The paper therefore pins ssthresh to 64 KB.  This benchmark quantifies
the difference.

Expected shape: infinite ssthresh inflates the cellular per-connection
RTT well above the 64 KB setting's for multi-MB transfers.
"""

import statistics

from benchmarks.conftest import BENCH_REPS, emit
from repro.experiments.config import FlowSpec
from repro.experiments.runner import Measurement

MB = 1024 * 1024
SEEDS = tuple(range(80, 80 + max(BENCH_REPS * 2, 4)))
HUGE = 1 << 30


def mean(values):
    values = [v for v in values if v is not None]
    return statistics.mean(values) if values else float("nan")


def test_ablation_initial_ssthresh(benchmark):
    def run():
        rows = []
        for ssthresh, label in ((64 * 1024, "64 KB"), (HUGE, "infinite")):
            spec = FlowSpec.single_path("cell", carrier="verizon",
                                        ssthresh=ssthresh)
            results = [Measurement(spec, 8 * MB, seed=seed).run()
                       for seed in SEEDS]
            rtt = mean([r.metrics.mean_rtt("verizon") for r in results
                        if r.completed])
            time = mean([r.download_time for r in results])
            rows.append([label, f"{rtt * 1000:.1f}", f"{time:.3f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("abl_ssthresh",
         "Ablation: initial ssthresh, SP-Verizon 8 MB",
         [("rtt inflation",
           ["ssthresh", "mean RTT (ms)", "mean time (s)"], rows)])
    rtt_64k = float(rows[0][1])
    rtt_inf = float(rows[1][1])
    assert rtt_inf > rtt_64k * 1.3, \
        "infinite ssthresh must inflate cellular RTTs (bufferbloat)"

"""Ablation: the 8 MB shared receive buffer of Section 3.1.

"As MPTCP requires a larger receive buffer than single-path TCP for
out-of-order packets from different paths ... there is a potential
performance degradation if the assigned buffer is too small."  The
paper sets 8 MB so flow control never binds; this benchmark sweeps the
buffer down to show where the degradation appears.

Expected shape: download time grows as the buffer shrinks below the
paths' combined bandwidth-delay (+reordering) requirement; 8 MB and
2 MB are equivalent for these sizes (the paper's "large enough").
"""

import statistics

from benchmarks.conftest import BENCH_REPS, emit
from repro.experiments.config import FlowSpec
from repro.experiments.runner import Measurement

KB, MB = 1024, 1024 * 1024
SEEDS = tuple(range(110, 110 + max(BENCH_REPS * 2, 4)))
BUFFERS = (8 * MB, 2 * MB, 256 * KB, 64 * KB)


def test_ablation_receive_buffer(benchmark):
    def run():
        rows = []
        for buffer in BUFFERS:
            spec = FlowSpec.mptcp(carrier="sprint", rcv_buffer=buffer)
            times = [Measurement(spec, 4 * MB, seed=seed).run()
                     .download_time for seed in SEEDS]
            times = [t for t in times if t is not None]
            label = (f"{buffer // MB} MB" if buffer >= MB
                     else f"{buffer // KB} KB")
            rows.append([label, f"{statistics.mean(times):.3f}",
                         str(len(times))])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("abl_rcvbuf",
         "Ablation: shared receive buffer size (MP-Sprint, 4 MB object)",
         [("receive buffer sweep",
           ["buffer", "mean time (s)", "n"], rows)])
    by_label = {row[0]: float(row[1]) for row in rows}
    # 8 MB ~ 2 MB (both "large enough"); 64 KB clearly degrades.
    assert by_label["2 MB"] <= by_label["8 MB"] * 1.15
    assert by_label["64 KB"] > by_label["8 MB"] * 1.1, \
        "a tiny shared buffer must throttle the transfer"

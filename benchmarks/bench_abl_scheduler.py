"""Ablation: the scheduler registry over application-limited traffic.

For *bulk* transfers the split across paths is set by the congestion
windows, not the scheduler -- minRTT and round-robin converge (we
verified this; Linux behaves the same to first order).  The scheduler
decides outcomes for **application-limited** traffic: when a small
block is written and *several* subflows have idle window space, minRTT
puts it on the fast path while round-robin happily starts it on 3G.

Two benchmarks:

* ``test_ablation_scheduler`` streams small periodic blocks (a video/
  interactive-style workload, Section 6's concern) over Sprint 3G +
  WiFi and compares per-block latency under every registry policy.
* ``test_scheduler_lab`` runs the scheduler x workload x path-pair
  campaign (see :func:`repro.experiments.scenarios
  .scheduler_lab_campaign`) and emits the regret-vs-oracle table.

Expected shape: round-robin inflates mean block download time by at
least the 3G/WiFi RTT gap; minRTT stays near the oracle on bulk.
"""

import random
import statistics

from benchmarks.conftest import BENCH_REPS, PERIODS, emit
from repro.app.http import HTTP_PORT, HttpServerSession
from repro.app.video import StreamingProfile, VideoSession
from repro.core.connection import MptcpConfig, MptcpConnection, \
    MptcpListener
from repro.experiments.scenarios import scheduler_lab_campaign, \
    scheduler_regret_rows
from repro.testbed import Testbed, TestbedConfig

KB = 1024

#: Application-limited stream: 32 KB blocks, well under one WiFi cwnd.
BLOCK_PROFILE = StreamingProfile(
    name="blocks", prefetch_mean=64 * KB, prefetch_std=1 * KB,
    block_mean=32 * KB, block_std=1 * KB,
    period_mean=0.5, period_std=0.01)

SEEDS = tuple(range(120, 120 + max(BENCH_REPS * 2, 4)))

#: Every registry policy, parameterized for the Sprint + WiFi testbed
#: of the block-stream ablation.
STREAM_SCHEDULERS = ("minrtt", "roundrobin", "redundant",
                     "weighted:wifi=2,sprint=1", "blest", "cheapest",
                     "qoe")


def run_stream(scheduler: str, seed: int, n_blocks: int = 12):
    testbed = Testbed(TestbedConfig(carrier="sprint", seed=seed))
    config = MptcpConfig(scheduler=scheduler)
    connection = MptcpConnection.client(
        testbed.sim, testbed.client, testbed.client_addrs,
        testbed.server_addrs[0], HTTP_PORT, config)
    session = VideoSession(testbed.sim, connection, BLOCK_PROFILE,
                           random.Random(seed), n_blocks=n_blocks)
    MptcpListener(
        testbed.sim, testbed.server, HTTP_PORT, config,
        server_addrs=testbed.server_addrs,
        on_connection=lambda server_conn: HttpServerSession(
            server_conn, session.responder(), close_after=None))
    connection.connect()
    testbed.run(until=60.0)
    block_times = [block.download_time for block in session.blocks[1:]
                   if block.completed_at is not None]
    sprint_bytes = connection.receive_buffer.metrics.bytes_by_path.get(
        "sprint", 0)
    total = sum(connection.receive_buffer.metrics.bytes_by_path.values())
    return (statistics.mean(block_times),
            max(block_times),
            sprint_bytes / total if total else 0.0)


def test_ablation_scheduler(benchmark):
    def run():
        rows = []
        for scheduler in STREAM_SCHEDULERS:
            means, maxima, shares = [], [], []
            for seed in SEEDS:
                mean_time, max_time, share = run_stream(scheduler, seed)
                means.append(mean_time)
                maxima.append(max_time)
                shares.append(share)
            rows.append([scheduler,
                         f"{statistics.mean(means) * 1000:.1f}",
                         f"{statistics.mean(maxima) * 1000:.1f}",
                         f"{statistics.mean(shares):.2f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("abl_scheduler",
         "Ablation: scheduler registry, 32 KB block stream "
         "(Sprint + WiFi)",
         [("scheduler comparison",
           ["scheduler", "mean block (ms)", "worst block (ms)",
            "3G share"], rows)])
    by_name = {row[0]: (float(row[1]), float(row[3])) for row in rows}
    minrtt_time, minrtt_share = by_name["minrtt"]
    rr_time, rr_share = by_name["roundrobin"]
    assert minrtt_time < rr_time, \
        "minRTT must beat round-robin on application-limited streams"
    assert minrtt_share <= rr_share + 0.05, \
        "minRTT should not push more onto 3G than round-robin"


def test_scheduler_lab(campaign_runner):
    results = campaign_runner(scheduler_lab_campaign(
        repetitions=BENCH_REPS, periods=PERIODS))
    headers, rows = scheduler_regret_rows(results)
    emit("sched_lab",
         "Scheduler lab: policy x workload x path pair, regret vs "
         "oracle (512 KB cells)",
         [("scheduler regret", headers, rows)])
    # Regret is relative to the per-cell oracle, so its magnitude moves
    # with the environment draws; assert the structural properties
    # instead of a noise-sensitive threshold.
    assert len(rows) == 7 * 4 * 2, "full policy x workload x pair matrix"
    for row in rows:
        assert row[4] != "-", f"no metric for {row[:3]}"
        assert float(row[5]) <= float(row[4]) + 1e-9, \
            "oracle must be the per-cell minimum"
        assert float(row[6]) >= 0.0
        assert float(row[7]) >= 0.5, f"low completion for {row[:3]}"

"""Engine microbenchmarks: events/sec through the simulation core.

Three workloads exercise the hot paths the campaign runner leans on:

* ``event_chain`` -- long dependent chains of timer callbacks (the
  steady-state shape of application-level pacing).
* ``packet_pipeline`` -- the link-layer shape: every packet costs one
  service-done event plus one delivery event, with a small number in
  flight.  The *fast* variant uses the arg-carrying anonymous
  :meth:`Simulator.post` path; the *legacy* variant allocates a
  closure and an Event handle per packet, the way the pre-overhaul
  code did.
* ``timer_churn`` -- an RTO-style timer reset per simulated ACK.  The
  fast variant uses :meth:`Simulator.reschedule` (re-keyed in place);
  the legacy variant cancels and re-schedules, leaving a tombstone in
  the heap each time.
* ``vectorized_pipeline`` -- the batched link shape introduced by the
  vectorized packet core: whole bursts of service completions are
  computed in one numpy step and posted as a *single* heap entry via
  :meth:`Simulator.post_batch`, drained inline without re-heapify.
  The legacy variant posts the identical delivery schedule one event
  at a time.  ``--check`` additionally gates this workload against an
  absolute floor: at least :data:`VECTORIZED_FLOOR` times the
  packet-pipeline events/sec recorded by the engine-overhaul baseline
  (:data:`PR3_PACKET_PIPELINE_EVENTS_PER_SEC`).

Each variant runs ``--reps`` times and the best (max events/sec) rep
is reported: on shared machines the minimum-time rep is the least
load-contaminated estimate.

Usage::

    python benchmarks/bench_perf_engine.py              # run + update JSON
    python benchmarks/bench_perf_engine.py --check      # CI regression gate
    python benchmarks/bench_perf_engine.py --quick      # smaller workloads

``--check`` compares the measured fast-path events/sec against the
committed ``benchmarks/output/BENCH_PERF.json`` baseline and exits
non-zero if any workload drops more than 25 % below it.  Set
``REPRO_PERF_SOFT=1`` to downgrade that failure to a warning (for
machines slower than the one that recorded the baseline).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sim.engine import Simulator  # noqa: E402

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "output" / \
    "BENCH_PERF.json"

#: --check fails when a workload's fast-path events/sec falls more
#: than this fraction below the committed baseline.
REGRESSION_TOLERANCE = 0.25

#: The packet_pipeline fast-path events/sec committed with the engine
#: overhaul (BENCH_PERF.json at that commit), pinned here so later
#: regenerations of the JSON cannot silently lower the bar.
PR3_PACKET_PIPELINE_EVENTS_PER_SEC = 970_458

#: --check requires the vectorized_pipeline fast path to reach at
#: least this multiple of the pinned packet_pipeline baseline.
VECTORIZED_FLOOR = 2.5


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------

def event_chain(n: int, fast: bool) -> dict:
    """Dependent timer chains; measures raw dispatch throughput."""
    sim = Simulator()
    chains = 4
    per = n // chains

    class Chain:
        __slots__ = ("left", "delay")

        def __init__(self, index: int) -> None:
            self.left = per
            self.delay = 0.001 + index * 0.0001

        def fire(self) -> None:
            self.left -= 1
            if self.left:
                if fast:
                    sim.post(self.delay, self.fire)
                else:
                    sim.schedule(self.delay, self.fire)

    for index in range(chains):
        sim.schedule(0.001, Chain(index).fire)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return {"events": sim.events_processed, "seconds": elapsed,
            "peak_heap": sim.peak_heap}


def packet_pipeline(n: int, fast: bool) -> dict:
    """Link-shaped load: service + delivery event per packet."""
    sim = Simulator()

    class Pkt:
        __slots__ = ("n",)

        def __init__(self, index: int) -> None:
            self.n = index

    delivered = []
    state = {"next": 0}

    def deliver(pkt: Pkt) -> None:
        delivered.append(pkt.n)

    def service_done(pkt: Pkt) -> None:
        if fast:
            sim.post(0.0005, deliver, pkt)
        else:
            sim.schedule(0.0005, lambda: deliver(pkt))
        send_next()

    def send_next() -> None:
        index = state["next"]
        if index >= n:
            return
        state["next"] = index + 1
        pkt = Pkt(index)
        if fast:
            sim.post(0.0001, service_done, pkt)
        else:
            sim.schedule(0.0001, lambda: service_done(pkt))

    for _ in range(8):
        send_next()
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    assert len(delivered) == n
    return {"events": sim.events_processed, "seconds": elapsed,
            "peak_heap": sim.peak_heap}


def timer_churn(n: int, fast: bool) -> dict:
    """RTO-style far-out timer reset on every simulated ACK."""
    sim = Simulator()
    state = {"i": 0, "rto": None}

    def on_rto() -> None:  # pragma: no cover - never fires
        pass

    def on_ack() -> None:
        if fast:
            if state["rto"] is not None:
                sim.reschedule(state["rto"], 60.0)
            else:
                state["rto"] = sim.schedule(60.0, on_rto)
        else:
            if state["rto"] is not None:
                state["rto"].cancel()
            state["rto"] = sim.schedule(60.0, on_rto)
        state["i"] += 1
        if state["i"] < n:
            sim.post(0.0001, on_ack)

    sim.post(0.0001, on_ack)
    start = time.perf_counter()
    sim.run(until=50.0)
    elapsed = time.perf_counter() - start
    return {"events": sim.events_processed, "seconds": elapsed,
            "peak_heap": sim.peak_heap,
            "heap_compactions": sim.heap_compactions}


def vectorized_pipeline(n: int, fast: bool) -> dict:
    """Batched link shape: burst completion times in one numpy step,
    one ``post_batch`` heap entry per burst, inline drain."""
    import numpy as np

    sim = Simulator()
    burst = 64
    bit_time = 12_000 / 1e8  # 1500-byte packet on a 100 Mbit/s link
    delivered = [0]

    def deliver(index: int) -> None:
        delivered[0] += 1

    state = {"sent": 0}

    def send_burst() -> None:
        sent = state["sent"]
        if sent >= n:
            return
        count = min(burst, n - sent)
        state["sent"] = sent + count
        acc = np.arange(1, count + 1, dtype=np.float64) * bit_time
        times = (sim.now + acc).tolist()
        if fast:
            sim.post_batch(times, deliver, list(range(sent, sent + count)))
        else:
            for index, when in enumerate(times):
                sim.post_at(when, deliver, sent + index)
        sim.post_at(times[-1], send_burst)

    send_burst()
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    assert delivered[0] == n
    return {"events": sim.events_processed, "seconds": elapsed,
            "peak_heap": sim.peak_heap,
            "batch_inline": sim.batch_inline}


WORKLOADS = {
    "event_chain": (event_chain, 400_000),
    "packet_pipeline": (packet_pipeline, 150_000),
    "timer_churn": (timer_churn, 150_000),
    "vectorized_pipeline": (vectorized_pipeline, 300_000),
}


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------

def best_of(func, n: int, fast: bool, reps: int) -> dict:
    """Run ``reps`` times, return the fastest rep (min seconds)."""
    best = None
    for _ in range(reps):
        result = func(n, fast)
        if best is None or result["seconds"] < best["seconds"]:
            best = result
    best["events_per_sec"] = round(best["events"] / best["seconds"])
    best["seconds"] = round(best["seconds"], 4)
    return best


def run_benchmarks(reps: int, quick: bool) -> dict:
    engine = {"reps": reps, "workloads": {}}
    for name, (func, n) in WORKLOADS.items():
        size = n // 10 if quick else n
        fast = best_of(func, size, True, reps)
        legacy = best_of(func, size, False, reps)
        ratio = fast["events_per_sec"] / legacy["events_per_sec"]
        entry = {
            "n": size,
            "fast": fast,
            "legacy": legacy,
            "fast_vs_legacy": round(ratio, 2),
        }
        if name == "vectorized_pipeline":
            entry["pr3_packet_pipeline_events_per_sec"] = \
                PR3_PACKET_PIPELINE_EVENTS_PER_SEC
            entry["speedup_vs_pr3"] = round(
                fast["events_per_sec"]
                / PR3_PACKET_PIPELINE_EVENTS_PER_SEC, 2)
        engine["workloads"][name] = entry
        print(f"{name:16s} fast {fast['events_per_sec']:>9,} ev/s   "
              f"legacy {legacy['events_per_sec']:>9,} ev/s   "
              f"({ratio:.2f}x, peak heap {fast['peak_heap']:,} vs "
              f"{legacy['peak_heap']:,})")
    return engine


def merge_output(path: Path, engine: dict) -> dict:
    """Update the engine section of BENCH_PERF.json, preserving the
    campaign section and the recorded seed baseline."""
    document = {}
    if path.exists():
        document = json.loads(path.read_text())
    document.setdefault("schema", "repro-bench-perf/1")
    document["python"] = sys.version.split()[0]
    document["platform"] = sys.platform
    document["engine"] = engine
    baseline = document.get("seed_baseline", {}).get("engine")
    if baseline:
        for name, entry in engine["workloads"].items():
            before = baseline.get(name, {}).get("events_per_sec")
            if before:
                entry["seed_baseline_events_per_sec"] = before
                entry["speedup_vs_seed"] = round(
                    entry["fast"]["events_per_sec"] / before, 2)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def check_regression(path: Path, engine: dict) -> int:
    """Gate: fast events/sec must stay within tolerance of baseline."""
    if not path.exists():
        print(f"no baseline at {path}; nothing to check against")
        return 0
    baseline = json.loads(path.read_text())
    committed = baseline.get("engine", {}).get("workloads", {})
    soft = os.environ.get("REPRO_PERF_SOFT") == "1"
    failures = []
    for name, entry in engine["workloads"].items():
        reference = committed.get(name, {}).get("fast", {}) \
            .get("events_per_sec")
        if not reference:
            continue
        measured = entry["fast"]["events_per_sec"]
        floor = reference * (1.0 - REGRESSION_TOLERANCE)
        verdict = "ok" if measured >= floor else "REGRESSION"
        print(f"check {name:16s} {measured:>9,} ev/s vs baseline "
              f"{reference:,} (floor {floor:,.0f}): {verdict}")
        if measured < floor:
            failures.append(name)
    vectorized = engine["workloads"].get("vectorized_pipeline")
    if vectorized:
        measured = vectorized["fast"]["events_per_sec"]
        floor = VECTORIZED_FLOOR * PR3_PACKET_PIPELINE_EVENTS_PER_SEC
        verdict = "ok" if measured >= floor else "REGRESSION"
        print(f"check vectorized floor: {measured:>9,} ev/s vs "
              f"{VECTORIZED_FLOOR}x pinned packet_pipeline baseline "
              f"(floor {floor:,.0f}): {verdict}")
        if measured < floor:
            failures.append("vectorized_pipeline (absolute floor)")
    if failures:
        message = (f"events/sec regression >{REGRESSION_TOLERANCE:.0%} "
                   f"in: {', '.join(failures)}")
        if soft:
            print(f"WARNING (REPRO_PERF_SOFT=1): {message}")
            return 0
        print(f"FAIL: {message}")
        print("Set REPRO_PERF_SOFT=1 to soft-fail on machines slower "
              "than the baseline recorder.")
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=3,
                        help="repetitions per variant; the fastest rep "
                             "is reported (default 3)")
    parser.add_argument("--quick", action="store_true",
                        help="10x smaller workloads (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed baseline "
                             "and exit 1 on a >25%% events/sec drop "
                             "(REPRO_PERF_SOFT=1 downgrades to a "
                             "warning); does not rewrite the baseline")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"JSON path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    engine = run_benchmarks(args.reps, args.quick)
    if args.check:
        return check_regression(args.output, engine)
    merge_output(args.output, engine)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

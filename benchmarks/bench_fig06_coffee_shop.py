"""Figure 6: download times at the Amherst coffee shop (public WiFi).

Expected shape: the loaded hotspot is unreliable -- SP-WiFi is no
longer consistently the best path even for mid-size flows, and MPTCP
stays close to the best available option throughout.
"""

from benchmarks.conftest import BENCH_REPS, emit
from repro.experiments.scenarios import (
    coffee_shop_campaign,
    download_time_rows,
)


def test_fig06_coffee_shop_download_times(campaign_runner):
    spec = coffee_shop_campaign(repetitions=BENCH_REPS)
    results = campaign_runner(spec)
    headers, rows = download_time_rows(results)
    emit("fig06",
         "Figure 6: coffee-shop (public WiFi) download time (seconds)",
         [("download time", headers, rows)])
    medians = {(row[0], row[1]): float(row[6]) for row in rows}
    # On the loaded hotspot, cellular wins mid-size flows outright...
    assert medians[("512 KB", "SP-ATT")] < medians[("512 KB", "SP-WiFi")]
    # ...and MPTCP tracks the best available path.
    best = min(medians[("512 KB", "SP-ATT")],
               medians[("512 KB", "SP-WiFi")])
    assert medians[("512 KB", "MP-2")] < best * 1.25

"""Run-cache and dispatch benchmark: cold vs warm, LJF vs plan order.

The workload is the mix the paper's figures actually produce: fig02
style cells (2 MB baseline downloads) interleaved with fig09-style
cells (16 MB large flows) across MP-2 and single-path WiFi — the
shape where plan-order submission leaves the pool tail-bound on a
16 MB straggler, and where re-running a campaign recomputes every
cell from scratch without the cache.

Four configurations, all over the same plan and the same worker
count, every one asserted byte-identical on download times:

* **plan_order**   -- dispatch="plan", chunk=1, no cache (the old
  submission behaviour).
* **ljf_chunked**  -- longest-job-first submission with tiny-cell
  chunking, no cache.
* **cold**         -- ljf+chunk against an empty cache directory
  (computes and stores every cell).
* **warm**         -- the same cache directory again: every cell must
  hit (this is exactly the cross-campaign scenario — fig2, fig3 and
  tab2 request identical cells).

Results land in the ``cache`` section of BENCH_PERF.json.  ``--check``
gates CI: the warm pass must hit >= 90% (hard — that is determinism,
not timing) and show a wall-clock reduction over the cold pass
(softened by REPRO_PERF_SOFT=1 on noisy runners, like the other perf
gates).

Usage::

    python benchmarks/bench_perf_cache.py             # run + update JSON
    python benchmarks/bench_perf_cache.py --quick     # smaller flows (CI)
    python benchmarks/bench_perf_cache.py --check     # assert the gates
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cache import RunCache  # noqa: E402
from repro.experiments.config import FlowSpec  # noqa: E402
from repro.experiments.parallel import execute_plan  # noqa: E402
from repro.experiments.runner import Campaign, CampaignSpec  # noqa: E402
from repro.wireless.profiles import TimeOfDay  # noqa: E402

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "output" / \
    "BENCH_PERF.json"

MB = 1024 * 1024

#: Minimum warm-pass hit rate ``--check`` enforces (hard: a low rate
#: means keys shifted, which is a correctness bug, not noise).
HIT_RATE_FLOOR = 0.90
#: Minimum warm-vs-cold wall reduction ``--check`` enforces (soft).
WARM_REDUCTION_FLOOR = 0.50


def _plan(quick: bool):
    sizes = (1 * MB, 4 * MB) if quick else (2 * MB, 16 * MB)
    spec = CampaignSpec(
        name="bench-cache",
        specs=(FlowSpec.mptcp(carrier="att", controller="coupled"),
               FlowSpec.single_path("wifi")),
        sizes=sizes, repetitions=2,
        periods=(TimeOfDay.AFTERNOON,), base_seed=2013)
    return Campaign(spec).plan()


def _run(plan, jobs, reps, **kwargs):
    """Best-of-reps wall clock for one execute_plan configuration."""
    best = None
    oracle = None
    for _ in range(reps):
        started = time.perf_counter()
        results = execute_plan(plan, jobs=jobs, **kwargs)
        wall = time.perf_counter() - started
        times = [result.download_time for result in results]
        if any(time_s is None for time_s in times):
            raise AssertionError("benchmark transfer incomplete")
        if oracle is None:
            oracle = times
        elif times != oracle:
            raise AssertionError(
                f"determinism violation: {times!r} != {oracle!r}")
        if best is None or wall < best:
            best = wall
    return best, oracle


def bench(jobs: int, reps: int, quick: bool, scratch: Path) -> dict:
    plan = _plan(quick)
    section = {"jobs": jobs, "reps": reps, "cells": len(plan),
               "workload": "fig02+fig09 mix"
                           + (" (quick)" if quick else "")}

    plan_wall, oracle = _run(plan, jobs, reps,
                             dispatch="plan", chunk=1)
    section["plan_order_wall_s"] = round(plan_wall, 3)
    print(f"{'plan-order':12s} {plan_wall:7.3f}s")

    ljf_wall, times = _run(plan, jobs, reps, dispatch="ljf", chunk=4)
    if times != oracle:
        raise AssertionError("LJF+chunk changed results")
    section["ljf_chunked_wall_s"] = round(ljf_wall, 3)
    section["dispatch_reduction"] = round(1.0 - ljf_wall / plan_wall, 3)
    print(f"{'ljf+chunk':12s} {ljf_wall:7.3f}s   "
          f"(-{section['dispatch_reduction']:.1%} vs plan order)")

    # Cold: a fresh store per rep (each pass computes and stores).
    cold_best = None
    for rep in range(reps):
        root = scratch / f"cold-{rep}"
        shutil.rmtree(root, ignore_errors=True)
        wall, times = _run(plan, jobs, 1, dispatch="ljf", chunk=4,
                           cache=str(root))
        if times != oracle:
            raise AssertionError("cold cache changed results")
        if cold_best is None or wall < cold_best[0]:
            cold_best = (wall, root)
    cold_wall, warm_root = cold_best
    section["cold_wall_s"] = round(cold_wall, 3)
    print(f"{'cache cold':12s} {cold_wall:7.3f}s")

    # Warm: every later campaign that needs these cells — fig2, fig3
    # and tab2 share the whole baseline matrix — sees this path.
    warm_best = None
    hit_rate = None
    for _ in range(reps):
        cache = RunCache(warm_root)
        wall, times = _run(plan, jobs, 1, dispatch="ljf", chunk=4,
                           cache=cache)
        if times != oracle:
            raise AssertionError("warm cache changed results")
        hit_rate = cache.hit_rate
        cache.close()
        if warm_best is None or wall < warm_best:
            warm_best = wall
    section["warm_wall_s"] = round(warm_best, 3)
    section["warm_hit_rate"] = round(hit_rate, 4)
    section["warm_reduction"] = round(1.0 - warm_best / cold_wall, 3)
    print(f"{'cache warm':12s} {warm_best:7.3f}s   "
          f"(-{section['warm_reduction']:.1%} vs cold, "
          f"{hit_rate:.0%} hits)")
    return section


def merge_output(path: Path, section: dict) -> None:
    document = {}
    if path.exists():
        document = json.loads(path.read_text())
    document.setdefault("schema", "repro-bench-perf/1")
    document["cache"] = section
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def check(section: dict) -> int:
    """The CI gates; returns a shell exit status."""
    soft = os.environ.get("REPRO_PERF_SOFT", "0") == "1"
    failures = []
    if section["warm_hit_rate"] < HIT_RATE_FLOOR:
        # Never softened: a cold key is a correctness regression.
        print(f"FAIL: warm hit rate {section['warm_hit_rate']:.0%} "
              f"< {HIT_RATE_FLOOR:.0%}")
        return 1
    if section["warm_reduction"] < WARM_REDUCTION_FLOOR:
        failures.append(
            f"warm pass reduced wall by {section['warm_reduction']:.1%}"
            f" < {WARM_REDUCTION_FLOOR:.0%}")
    if section["dispatch_reduction"] < 0:
        failures.append(
            f"LJF+chunk slower than plan order "
            f"({section['dispatch_reduction']:.1%})")
    for failure in failures:
        print(("WARN" if soft else "FAIL") + f": {failure}")
    return 0 if (soft or not failures) else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker processes (default 2)")
    parser.add_argument("--reps", type=int, default=2,
                        help="repetitions per configuration; fastest "
                             "rep kept (default 2)")
    parser.add_argument("--quick", action="store_true",
                        help="1/4 MB flows instead of 2/16 MB (CI)")
    parser.add_argument("--check", action="store_true",
                        help="assert the hit-rate and wall gates")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"JSON path (default {DEFAULT_OUTPUT})")
    parser.add_argument("--scratch", type=Path, default=None,
                        help="cache scratch directory (default: a "
                             "fresh temp dir, removed afterwards)")
    args = parser.parse_args(argv)

    scratch = args.scratch
    cleanup = False
    if scratch is None:
        import tempfile
        scratch = Path(tempfile.mkdtemp(prefix="bench-cache-"))
        cleanup = True
    try:
        section = bench(args.jobs, args.reps, args.quick, scratch)
    finally:
        if cleanup:
            shutil.rmtree(scratch, ignore_errors=True)
    merge_output(args.output, section)
    print(f"wrote {args.output}")
    if args.check:
        return check(section)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Extension: page load time across transports.

The paper's motivation is Web-object latency; a user-facing page is a
*sequence* of such objects over a persistent connection.  This
benchmark loads heavy-tailed pages over SP-WiFi, SP-LTE and MPTCP and
compares page load time -- the workload where MPTCP's per-object
robustness compounds.

Expected shape: median PLT tracks the best single path; the p95/worst
pages (the ones with a multi-MB object in the tail) benefit most from
MPTCP, mirroring the large-flow findings.
"""

import random
import statistics

from benchmarks.conftest import BENCH_REPS, emit
from repro.app.http import HTTP_PORT, HttpServerSession, \
    PlainTcpAcceptor
from repro.app.web import TYPICAL_PAGE, PageLoader
from repro.core.connection import MptcpConfig, MptcpConnection, \
    MptcpListener
from repro.core.coupling import RenoController
from repro.experiments.stats import quantile
from repro.tcp.endpoint import TcpConfig, TcpEndpoint
from repro.testbed import Testbed, TestbedConfig

N_PAGES = max(BENCH_REPS * 5, 10)


def load(mode, sizes, seed):
    testbed = Testbed(TestbedConfig(seed=seed))
    if mode == "mptcp":
        config = MptcpConfig()
        transport = MptcpConnection.client(
            testbed.sim, testbed.client, testbed.client_addrs,
            testbed.server_addrs[0], HTTP_PORT, config)
        loader = PageLoader(testbed.sim, transport, sizes)
        MptcpListener(
            testbed.sim, testbed.server, HTTP_PORT, config,
            server_addrs=testbed.server_addrs,
            on_connection=lambda server_conn: HttpServerSession(
                server_conn, loader.responder(), close_after=None))
    else:
        config = TcpConfig()
        local = "client.wifi" if mode == "wifi" else "client.att"
        transport = TcpEndpoint(testbed.sim, testbed.client, local,
                                testbed.client.ephemeral_port(),
                                testbed.server_addrs[0], HTTP_PORT,
                                config, RenoController())
        loader = PageLoader(testbed.sim, transport, sizes)
        PlainTcpAcceptor(testbed.sim, testbed.server, HTTP_PORT, config,
                         RenoController, responder=loader.responder())
    transport.connect()
    testbed.run(until=600.0)
    assert loader.record.complete, f"{mode} page load did not finish"
    return loader.record.page_load_time


def test_ext_page_load_time(benchmark):
    rng = random.Random(77)
    pages = [TYPICAL_PAGE.draw_page(rng) for _ in range(N_PAGES)]

    def run():
        rows = []
        plts = {}
        for mode, label in (("wifi", "SP-WiFi"), ("lte", "SP-LTE"),
                            ("mptcp", "MPTCP")):
            times = [load(mode, sizes, seed=700 + index)
                     for index, sizes in enumerate(pages)]
            plts[label] = times
            rows.append([label, f"{statistics.mean(times):.3f}",
                         f"{statistics.median(times):.3f}",
                         f"{quantile(times, 0.95):.3f}",
                         f"{max(times):.3f}"])
        rows.append(["(pages)", str(N_PAGES),
                     f"{statistics.mean([sum(p) for p in pages]) / 1024:.0f}"
                     " KB avg",
                     "", ""])
        return rows, plts

    rows, plts = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ext_pageload",
         "Extension: page load time over heavy-tailed Web pages",
         [("page load time (s)",
           ["transport", "mean", "median", "p95", "worst"], rows)])
    best_single = [min(wifi, lte) for wifi, lte
                   in zip(plts["SP-WiFi"], plts["SP-LTE"])]
    mptcp = plts["MPTCP"]
    # Per page, MPTCP stays close to the best single path...
    regressions = sum(1 for m, b in zip(mptcp, best_single)
                      if m > b * 1.35)
    assert regressions <= max(N_PAGES // 5, 1)
    # ...and wins on average.
    assert statistics.mean(mptcp) < statistics.mean(best_single) * 1.05

"""Figure 9: large-flow download times (4-32 MB) on AT&T, all
controllers, 2 vs 4 paths.

Expected shape: WiFi is never the best path; MPTCP beats the best
single path; MP-4 beats MP-2; reno (unfair) is fastest among the
controllers and olia edges out coupled for the biggest sizes.
"""

from benchmarks.conftest import BENCH_REPS, PERIODS, emit
from repro.experiments.scenarios import (
    download_time_rows,
    large_flows_campaign,
)


def test_fig09_large_flow_download_times(campaign_runner):
    spec = large_flows_campaign(repetitions=BENCH_REPS, periods=PERIODS)
    results = campaign_runner(spec)
    headers, rows = download_time_rows(results)
    emit("fig09", "Figure 9: large-flow download time (seconds), AT&T",
         [("download time", headers, rows)])
    medians = {(row[0], row[1]): float(row[6]) for row in rows}
    for size in ("8 MB", "32 MB"):
        best_single = min(medians[(size, "SP-WiFi")],
                          medians[(size, "SP-ATT")])
        assert medians[(size, "MP-2")] < best_single * 1.05
        assert medians[(size, "MP-4")] <= medians[(size, "MP-2")] * 1.05

"""Extension: sensitivity of the conclusions to the WiFi loss rate.

The home-WiFi loss rate (calibrated to the paper's 1.3-2%) is the
least certain profile parameter -- the paper itself observes it varies
by AP generation and load.  This benchmark sweeps it from pristine
(0.1%) to hotspot-bad (8%) and shows the paper's conclusion --
*MPTCP tracks or beats the best single path* -- holds across the whole
range, while which single path is "best" flips.
"""

from benchmarks.conftest import BENCH_REPS, emit
from repro.experiments.sensitivity import sweep_wifi_loss

MB = 1024 * 1024
LOSS_RATES = (0.001, 0.005, 0.013, 0.04, 0.08)
SEEDS = tuple(range(240, 240 + max(BENCH_REPS, 2)))


def test_ext_wifi_loss_sensitivity(benchmark):
    curves = benchmark.pedantic(
        sweep_wifi_loss, args=(LOSS_RATES, 1 * MB, SEEDS),
        rounds=1, iterations=1)
    rows = []
    for index, loss in enumerate(LOSS_RATES):
        wifi = curves["SP-WiFi"][index].median
        lte = curves["SP-LTE"][index].median
        mptcp = curves["MPTCP"][index].median
        best = min(wifi, lte)
        rows.append([f"{loss * 100:.1f}%", f"{wifi:.3f}", f"{lte:.3f}",
                     f"{mptcp:.3f}",
                     "wifi" if wifi <= lte else "lte",
                     f"{mptcp / best:.2f}"])
    emit("ext_sensitivity",
         "Extension: 1 MB download vs WiFi loss rate",
         [("wifi loss sweep",
           ["wifi loss", "SP-WiFi (s)", "SP-LTE (s)", "MPTCP (s)",
            "best single", "MPTCP/best"], rows)])
    # The conclusion must be loss-rate-robust: MPTCP within 25% of the
    # best single path at every point, and the winner flips somewhere.
    ratios = [float(row[5]) for row in rows]
    assert max(ratios) < 1.25
    winners = {row[4] for row in rows}
    assert winners == {"wifi", "lte"}, \
        "the best single path should flip across the sweep"
"""Table 7: streaming-video workload summary (prefetch / block /
period) measured from simulated sessions over MPTCP.

The paper measures Netflix on two devices; here each profile drives a
session over a 2-path MPTCP connection (AT&T + home WiFi) and the
session summary must reproduce the Table 7 parameters, since the
workload model is calibrated to them.  YouTube is scaled down in the
same run for comparison, as in the Section 6 text.
"""

import random

import pytest

from benchmarks.conftest import emit
from repro.app.http import HTTP_PORT, HttpServerSession
from repro.app.video import NETFLIX_ANDROID, NETFLIX_IPAD, YOUTUBE, \
    VideoSession
from repro.core.connection import MptcpConfig, MptcpConnection, \
    MptcpListener
from repro.testbed import Testbed, TestbedConfig

MB = 1024 * 1024


def run_session(profile, seed, n_blocks=3):
    testbed = Testbed(TestbedConfig(seed=seed))
    config = MptcpConfig()
    rng = random.Random(seed)
    connection = MptcpConnection.client(
        testbed.sim, testbed.client, testbed.client_addrs,
        testbed.server_addrs[0], HTTP_PORT, config)
    session = VideoSession(testbed.sim, connection, profile, rng,
                           n_blocks=n_blocks)

    def on_connection(server_conn):
        HttpServerSession(server_conn, session.responder(),
                          close_after=None)

    MptcpListener(testbed.sim, testbed.server, HTTP_PORT, config,
                  server_addrs=testbed.server_addrs,
                  on_connection=on_connection)
    connection.connect()
    testbed.run(until=900.0)
    return session


def test_tab07_video_streaming_summary(benchmark):
    profiles = (NETFLIX_ANDROID, NETFLIX_IPAD, YOUTUBE)

    def run_all():
        return {profile.name: run_session(profile, seed=31)
                for profile in profiles}

    sessions = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for profile in profiles:
        session = sessions[profile.name]
        summary = session.summary()
        rows.append([profile.name,
                     f"{summary.prefetch_bytes / MB:.1f}",
                     f"{summary.block_bytes_mean / MB:.2f}",
                     f"{summary.period_mean:.1f}",
                     str(summary.blocks), str(summary.stalls)])
    emit("tab07", "Table 7: video streaming over MPTCP (AT&T + WiFi)",
         [("sessions", ["profile", "prefetch (MB)", "block (MB)",
                        "period (s)", "blocks", "stalls"], rows)])
    android = sessions[NETFLIX_ANDROID.name].summary()
    ipad = sessions[NETFLIX_IPAD.name].summary()
    # Table 7's parameters: Android prefetches ~40.6 MB in ~5.2 MB
    # blocks every ~72 s; iPad ~15 MB / ~1.8 MB / ~10.2 s.
    assert android.prefetch_bytes / MB == pytest.approx(40.6, rel=0.15)
    assert android.block_bytes_mean / MB == pytest.approx(5.2, rel=0.25)
    assert ipad.prefetch_bytes / MB == pytest.approx(15.0, rel=0.4)
    assert ipad.period_mean == pytest.approx(10.2, rel=0.6)
    # MPTCP keeps the stream ahead of the player: no stalls.
    assert android.stalls == 0

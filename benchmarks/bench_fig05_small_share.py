"""Figure 5: small flows -- fraction of traffic on the cellular path.

Expected shape: ~0 below 64 KB (the transfer beats the JOIN), rising
through 512 KB, approaching/passing 50% at 4 MB; MP-4 offloads less at
small sizes than MP-2 (two WiFi subflows finish the job first).
"""

from benchmarks.conftest import BENCH_REPS, PERIODS, emit
from repro.experiments.scenarios import (
    small_flows_campaign,
    traffic_share_rows,
)


def test_fig05_small_flow_traffic_share(campaign_runner):
    spec = small_flows_campaign(repetitions=BENCH_REPS, periods=PERIODS)
    results = campaign_runner(spec)
    headers, rows = traffic_share_rows(results)
    emit("fig05", "Figure 5: small flows, cellular traffic fraction",
         [("cellular share", headers, rows)])
    shares = {(row[0], row[1]): float(row[3].split("+-")[0])
              for row in rows}
    assert shares[("8 KB", "MP-2")] < 0.05
    assert shares[("8 KB", "MP-2")] <= shares[("512 KB", "MP-2")]
    assert shares[("4 MB", "MP-2")] > 0.4

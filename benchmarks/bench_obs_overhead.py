"""Observability overhead benchmark: events/sec at each trace level.

Runs the fig02-style MP-2 workload (AT&T + WiFi, coupled, 2 MB) with
tracing ``off`` (the slotted :class:`NullTraceBus`), ``ring`` (the
in-memory flight recorder), ``jsonl`` (full event streaming to disk)
and ``metrics`` (tracing off, the typed metrics registry on), and
reports engine events/sec for each.  Every run asserts the download
time against the known-good oracle: neither trace level nor the
metrics registry must ever change simulation results.

``--check`` is the perf-smoke gate for the tracing tentpole: the
``off`` throughput must stay within 2 % of the pre-tracing baseline
recorded in ``benchmarks/output/BENCH_PERF.json`` (``obs.baseline``,
measured at the commit before any probe points existed).  A null bus
that costs more than that means a probe site is doing work before the
``trace.enabled`` guard — the ``off`` workload also carries every
``metrics.enabled`` site against ``NULL_METRICS``, so the same gate
proves disabled metrics are free.  Set ``REPRO_PERF_SOFT=1`` to downgrade the
failure to a warning on machines slower than the baseline recorder.

Usage::

    python benchmarks/bench_obs_overhead.py            # run + update JSON
    python benchmarks/bench_obs_overhead.py --check    # CI regression gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.config import FlowSpec  # noqa: E402
from repro.experiments.runner import Measurement  # noqa: E402
from repro.perf import Instrumentation  # noqa: E402
from repro.sim.rng import derive_seed  # noqa: E402
from repro.wireless.profiles import TimeOfDay  # noqa: E402

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "output" / \
    "BENCH_PERF.json"

MB = 1024 * 1024

#: --check fails when the null-bus events/sec falls more than this
#: fraction below the recorded pre-tracing baseline.
NULL_BUS_TOLERANCE = 0.02

TRACE_MODES = ("off", "ring", "jsonl", "metrics")


def run_one(mode: str, trace_path: str | None) -> dict:
    spec = FlowSpec.mptcp(carrier="att", controller="coupled")
    size = 2 * MB
    seed = derive_seed(2013, f"bench-perf:{spec.identity}:{size}")
    trace = "off" if mode == "metrics" else mode
    measurement = Measurement(spec, size, seed=seed,
                              period=TimeOfDay.AFTERNOON,
                              trace=trace, trace_path=trace_path,
                              metrics="on" if mode == "metrics" else "off")
    inst = Instrumentation()
    result = measurement.run(instrumentation=inst)
    if not result.completed:
        raise AssertionError(f"trace={mode}: transfer incomplete")
    return {
        "download_time": result.download_time,
        "events": int(inst.counters["events_processed"]),
        "simulate_s": inst.phases["simulate"],
        "events_per_sec": round(inst.events_per_sec()),
    }


def bench(reps: int) -> dict:
    obs = {"reps": reps, "workload": "fig02-mp2-2MB", "modes": {}}
    oracle = None
    best: dict = {}
    with tempfile.TemporaryDirectory() as tmp:
        # Modes are interleaved within each rep (off, ring, jsonl,
        # off, ...) so a slow window on a shared machine penalizes
        # every mode equally instead of whichever ran its reps there.
        for _ in range(reps):
            for mode in TRACE_MODES:
                trace_path = (os.path.join(tmp, f"bench-{mode}.jsonl")
                              if mode in ("ring", "jsonl") else None)
                sample = run_one(mode, trace_path)
                if oracle is None:
                    oracle = sample["download_time"]
                elif sample["download_time"] != oracle:
                    raise AssertionError(
                        f"mode={mode}: observability changed the result "
                        f"-- {sample['download_time']!r} != {oracle!r}")
                if (mode not in best
                        or sample["simulate_s"] < best[mode]["simulate_s"]):
                    best[mode] = sample
    for mode in TRACE_MODES:
        obs["modes"][mode] = {
            "events_per_sec": best[mode]["events_per_sec"],
            "simulate_s": round(best[mode]["simulate_s"], 4),
            "events": best[mode]["events"],
        }
        print(f"trace={mode:5s} {best[mode]['events_per_sec']:>8,} ev/s  "
              f"({best[mode]['events']:,} events in "
              f"{best[mode]['simulate_s']:.4f}s)")
    obs["download_time"] = oracle
    off = obs["modes"]["off"]["events_per_sec"]
    for mode in ("ring", "jsonl", "metrics"):
        overhead = 1.0 - obs["modes"][mode]["events_per_sec"] / off
        obs["modes"][mode]["overhead_vs_off"] = round(overhead, 3)
        print(f"trace={mode}: {overhead:.1%} events/sec overhead vs off")
    return obs


def merge_output(path: Path, obs: dict) -> None:
    """Update the obs section, preserving every other section and the
    recorded pre-tracing baseline."""
    document = {}
    if path.exists():
        document = json.loads(path.read_text())
    document.setdefault("schema", "repro-bench-perf/1")
    baseline = document.get("obs", {}).get("baseline")
    if baseline:
        obs["baseline"] = baseline
        before = baseline.get("events_per_sec")
        if before:
            measured = obs["modes"]["off"]["events_per_sec"]
            obs["modes"]["off"]["overhead_vs_baseline"] = round(
                1.0 - measured / before, 3)
    document["obs"] = obs
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def check_regression(path: Path, obs: dict) -> int:
    """Gate: the null bus must stay within 2 % of the pre-tracing
    baseline, proving the probe sites are free when tracing is off."""
    if not path.exists():
        print(f"no baseline at {path}; nothing to check against")
        return 0
    document = json.loads(path.read_text())
    baseline = document.get("obs", {}).get("baseline", {}) \
        .get("events_per_sec")
    if not baseline:
        print("no obs.baseline recorded; nothing to check against")
        return 0
    measured = obs["modes"]["off"]["events_per_sec"]
    floor = baseline * (1.0 - NULL_BUS_TOLERANCE)
    verdict = "ok" if measured >= floor else "REGRESSION"
    print(f"check null-bus {measured:>8,} ev/s vs pre-tracing baseline "
          f"{baseline:,} (floor {floor:,.0f}): {verdict}")
    if measured < floor:
        message = (f"NullTraceBus costs more than "
                   f"{NULL_BUS_TOLERANCE:.0%}: {measured:,} ev/s vs "
                   f"baseline {baseline:,}")
        if os.environ.get("REPRO_PERF_SOFT") == "1":
            print(f"WARNING (REPRO_PERF_SOFT=1): {message}")
            return 0
        print(f"FAIL: {message}")
        print("Set REPRO_PERF_SOFT=1 to soft-fail on machines slower "
              "than the baseline recorder.")
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=5,
                        help="repetitions per trace mode; the fastest "
                             "rep is reported (default 5)")
    parser.add_argument("--check", action="store_true",
                        help="compare the null-bus events/sec against "
                             "the recorded pre-tracing baseline and "
                             "exit 1 on a >2%% drop (REPRO_PERF_SOFT=1 "
                             "downgrades to a warning); does not "
                             "rewrite the baseline")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"JSON path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    obs = bench(args.reps)
    if args.check:
        return check_regression(args.output, obs)
    merge_output(args.output, obs)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 10: large flows -- over half the traffic rides the cellular
path.

Expected shape: for every 4-32 MB configuration the cellular fraction
exceeds 50%: the loss-free LTE path out-earns the lossy WiFi path once
flows live long enough to grow a window there.
"""

from benchmarks.conftest import BENCH_REPS, PERIODS, emit
from repro.experiments.scenarios import (
    large_flows_campaign,
    traffic_share_rows,
)


def test_fig10_large_flow_traffic_share(campaign_runner):
    spec = large_flows_campaign(repetitions=BENCH_REPS, periods=PERIODS)
    results = campaign_runner(spec)
    headers, rows = traffic_share_rows(results)
    emit("fig10", "Figure 10: large flows, cellular traffic fraction",
         [("cellular share", headers, rows)])
    for row in rows:
        fraction = float(row[3].split("+-")[0])
        if "reno" in row[1]:
            # Uncoupled WiFi subflows recover from losses aggressively
            # and keep a slightly larger share of the traffic.
            assert fraction > 0.4, f"{row[1]} at {row[0]}: {fraction}"
        else:
            assert fraction > 0.5, f"{row[1]} at {row[0]}: {fraction}"

"""Extension: locating the WiFi/LTE crossover and MPTCP's win region.

Section 4 narrates a structural story: below some size WiFi's short
RTT wins; above it, LTE's loss-free path wins; and past a further
size MPTCP beats both by pooling.  The paper samples four sizes; this
benchmark sweeps a geometric grid of sizes and reports where the
crossovers actually fall in the reproduction -- the kind of structural
result that should be robust even where absolute times are not.
"""

import statistics

from benchmarks.conftest import BENCH_REPS, emit
from repro.experiments.config import FlowSpec
from repro.experiments.runner import Measurement

KB = 1024
SIZES = tuple(int(16 * KB * (2 ** power)) for power in range(0, 11, 2))
# 16 KB, 64 KB, 256 KB, 1 MB, 4 MB, 16 MB
SEEDS = tuple(range(220, 220 + max(BENCH_REPS * 2, 4)))


def median_time(spec, size):
    times = [Measurement(spec, size, seed=seed).run().download_time
             for seed in SEEDS]
    return statistics.median([t for t in times if t is not None])


def test_ext_crossover(benchmark):
    def run():
        rows = []
        wifi_spec = FlowSpec.single_path("wifi")
        lte_spec = FlowSpec.single_path("cell", carrier="att")
        mptcp_spec = FlowSpec.mptcp(carrier="att")
        for size in SIZES:
            wifi = median_time(wifi_spec, size)
            lte = median_time(lte_spec, size)
            mptcp = median_time(mptcp_spec, size)
            best = min(wifi, lte)
            rows.append([
                f"{size // KB} KB" if size < 1024 * KB
                else f"{size // (1024 * KB)} MB",
                f"{wifi:.3f}", f"{lte:.3f}", f"{mptcp:.3f}",
                "wifi" if wifi <= lte else "lte",
                f"{(1 - mptcp / best) * 100:+.0f}%"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ext_crossover",
         "Extension: the WiFi/LTE crossover and MPTCP's win margin",
         [("crossover sweep",
           ["size", "SP-WiFi (s)", "SP-LTE (s)", "MPTCP (s)",
            "best single", "MPTCP vs best"], rows)])
    winners = [row[4] for row in rows]
    # WiFi wins the smallest size; LTE wins the largest: a crossover
    # exists somewhere between (Section 4's structure).
    assert winners[0] == "wifi"
    assert winners[-1] == "lte"
    # MPTCP's win margin grows toward large sizes.
    margins = [float(row[5].rstrip("%")) for row in rows]
    assert margins[-1] > 0, "MPTCP must beat the best path at 16 MB"
    assert max(margins[-3:]) >= max(margins[:2])
"""Extension: MPTCP fallback behind interfering middleboxes.

The paper measured MPTCP on networks where it worked; RFC 6824's
fallback machinery (Section 3.6) exists for the networks where it
would not have.  This benchmark places each middlebox profile — from
"strips every MPTCP option" down to "only corrupts the DSS mappings"
— on the WiFi access links and verifies the deployment story: every
connection still completes (via plain-TCP or infinite-mapping
fallback), at single-path goodput instead of a hang.
"""

from benchmarks.conftest import BENCH_REPS, emit
from repro.experiments.scenarios import fallback_campaign, fallback_rows


def test_ext_middlebox_fallback(campaign_runner):
    spec = fallback_campaign(repetitions=BENCH_REPS)
    results = campaign_runner(spec)
    headers, rows = fallback_rows(results)
    emit("ext_fallback",
         "Extension: middlebox interference, fallback rate and goodput",
         [("fallback", headers, rows)])
    by_cell = {(row[0], row[1]): row for row in rows}
    for (size, profile), row in by_cell.items():
        completed, rate = float(row[3]), float(row[4])
        # The acceptance bar: interference degrades, never deadlocks.
        assert completed == 1.0, (
            f"{profile} at {size}: only {completed:.0%} completed")
        if profile == "none":
            assert rate == 0.0, "clean runs must not fall back"
        elif profile != "strip-join":
            # strip-join only blocks the *second* subflow; the MPTCP
            # connection itself survives, so no fallback is expected.
            assert rate == 1.0, (
                f"{profile} at {size}: fallback rate {rate:.0%}")
    # Fallback costs the cellular path: goodput behind a stripping box
    # must not exceed the clean MPTCP goodput.
    for size in {row[0] for row in rows}:
        clean = float(by_cell[(size, "none")][8])
        stripped = float(by_cell[(size, "strip-all")][8])
        assert stripped <= clean * 1.05

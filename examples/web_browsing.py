#!/usr/bin/env python3
"""Web browsing: the finite-flow workload that motivates the paper.

The introduction argues that prior MPTCP studies only looked at
long-lived flows, while "most Web downloads are of objects no more
than one MB in size, although the tail of the size distribution is
large".  This example draws object sizes from such a heavy-tailed
distribution (log-normal body, Pareto-ish tail), fetches each object
over SP-WiFi, SP-LTE and 2-path MPTCP, and reports mean / median / p95
latency per transport -- showing MPTCP's value is *robustness across
the size mix*, not just raw throughput.

Run:  python examples/web_browsing.py [n_objects]
"""

import random
import statistics
import sys

from repro.experiments import FlowSpec, Measurement, quantile

KB = 1024


def draw_object_sizes(n, seed=7):
    """Heavy-tailed Web object sizes: median ~30 KB, occasional multi-MB."""
    rng = random.Random(seed)
    sizes = []
    for _ in range(n):
        if rng.random() < 0.08:
            # Tail: large embedded media, 1-16 MB.
            sizes.append(int(rng.uniform(1, 16) * 1024 * KB))
        else:
            sizes.append(max(int(rng.lognormvariate(10.3, 1.1)), 2 * KB))
    return sizes


def main():
    n_objects = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    sizes = draw_object_sizes(n_objects)
    print(f"Fetching {n_objects} objects "
          f"(median {statistics.median(sizes) / KB:.0f} KB, "
          f"max {max(sizes) / KB / 1024:.1f} MB)\n")
    specs = [
        FlowSpec.single_path("wifi"),
        FlowSpec.single_path("cell", carrier="att"),
        FlowSpec.mptcp(carrier="att"),
    ]
    print(f"{'transport':12s} {'mean':>8s} {'median':>8s} {'p95':>8s} "
          f"{'worst':>8s}")
    summary = {}
    for spec in specs:
        latencies = []
        for index, size in enumerate(sizes):
            result = Measurement(spec, size, seed=1000 + index).run()
            assert result.completed
            latencies.append(result.download_time)
        summary[spec.label] = latencies
        print(f"{spec.label:12s} "
              f"{statistics.mean(latencies):8.3f} "
              f"{statistics.median(latencies):8.3f} "
              f"{quantile(latencies, 0.95):8.3f} "
              f"{max(latencies):8.3f}")
    print()
    # The paper's robustness claim: per object, MPTCP is near the best.
    regressions = 0
    for index in range(n_objects):
        best = min(summary["SP-WiFi"][index], summary["SP-ATT"][index])
        if summary["MP-2"][index] > best * 1.25:
            regressions += 1
    print(f"objects where MPTCP lost >25% to the best single path: "
          f"{regressions}/{n_objects}")


if __name__ == "__main__":
    main()

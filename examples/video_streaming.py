#!/usr/bin/env python3
"""Video streaming over MPTCP (Section 6 of the paper).

Plays a Netflix-iPad-style session (Table 7: ~15 MB prefetch, then
~1.8 MB blocks every ~10 s) over 2-path MPTCP, pairing WiFi with AT&T
LTE and then with Sprint 3G, and reports per-block download times,
player stalls, and the receive-buffer out-of-order delay -- the metric
the paper argues decides whether MPTCP can carry real-time traffic
(the 150 ms tolerance discussion of Section 5.2).

Run:  python examples/video_streaming.py
"""

import random
import statistics

from repro.app.http import HTTP_PORT, HttpServerSession
from repro.app.video import NETFLIX_IPAD, VideoSession
from repro.core.connection import MptcpConfig, MptcpConnection, \
    MptcpListener
from repro.experiments import ccdf_fraction_above
from repro.testbed import Testbed, TestbedConfig

MB = 1024 * 1024


def stream_over(carrier, n_blocks=4, seed=5):
    testbed = Testbed(TestbedConfig(carrier=carrier, seed=seed))
    config = MptcpConfig(controller="coupled")
    connection = MptcpConnection.client(
        testbed.sim, testbed.client, testbed.client_addrs,
        testbed.server_addrs[0], HTTP_PORT, config)
    session = VideoSession(testbed.sim, connection, NETFLIX_IPAD,
                           random.Random(seed), n_blocks=n_blocks)
    MptcpListener(
        testbed.sim, testbed.server, HTTP_PORT, config,
        server_addrs=testbed.server_addrs,
        on_connection=lambda server_conn: HttpServerSession(
            server_conn, session.responder(), close_after=None))
    connection.connect()
    testbed.run(until=600.0)
    return session, connection


def main():
    for carrier in ("att", "sprint"):
        session, connection = stream_over(carrier)
        summary = session.summary()
        print(f"=== Netflix (iPad profile) over WiFi + {carrier} ===")
        print(f"  prefetch: {summary.prefetch_bytes / MB:.1f} MB in "
              f"{session.blocks[0].download_time:.1f} s")
        block_times = [block.download_time for block in session.blocks[1:]
                       if block.completed_at is not None]
        if block_times:
            print(f"  blocks  : {len(block_times)} x "
                  f"~{summary.block_bytes_mean / MB:.1f} MB, "
                  f"mean download {statistics.mean(block_times):.2f} s "
                  f"(period {summary.period_mean:.1f} s)")
        print(f"  stalls  : {session.stalls}")
        delays = connection.receive_buffer.metrics.delays()
        in_order = connection.receive_buffer.metrics.in_order_fraction()
        over_150 = ccdf_fraction_above(delays, 0.150)
        print(f"  reorder : {in_order:.0%} of packets in order; "
              f"{over_150:.1%} wait >150 ms in the receive buffer")
        share = connection.receive_buffer.metrics.bytes_by_path
        total = sum(share.values()) or 1
        print(f"  split   : " + ", ".join(
            f"{path} {nbytes / total:.0%}"
            for path, nbytes in sorted(share.items())))
        print()
    print("Note the Sprint pairing's reordering tail: with 3G in the mix")
    print("a large fraction of packets sit in the receive buffer waiting")
    print("for the slow path -- the paper's Section 5.2 finding.")


if __name__ == "__main__":
    main()

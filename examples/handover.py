#!/usr/bin/env python3
"""WiFi-to-cellular handover (Section 6's mobility argument).

Walks a download through a WiFi outage: the client loses its access
point two seconds into an 8 MB transfer and re-associates four seconds
later.  Compares:

* **SP-WiFi** — stalls through the outage (retransmission timeouts,
  exponential backoff), the paper's "stalled or reset" fate;
* **MPTCP** — the link-down signal fails the WiFi subflow, the
  connection *reinjects* its in-flight data on LTE, and when WiFi
  returns the path manager re-joins and traffic flows on both again.

Run:  python examples/handover.py
"""

from repro.app.http import HTTP_PORT, HttpClient, HttpServerSession, \
    PlainTcpAcceptor
from repro.core.connection import MptcpConfig, MptcpConnection, \
    MptcpListener
from repro.core.coupling import RenoController
from repro.tcp.endpoint import TcpConfig, TcpEndpoint
from repro.testbed import Testbed, TestbedConfig
from repro.wireless.mobility import InterfaceOutage

MB = 1024 * 1024
SIZE = 8 * MB
DOWN_AT, UP_AT = 2.0, 6.0
SEED = 17


def run_single_path():
    testbed = Testbed(TestbedConfig(seed=SEED))
    config = TcpConfig()
    PlainTcpAcceptor(testbed.sim, testbed.server, HTTP_PORT, config,
                     RenoController, responder=lambda i: SIZE)
    endpoint = TcpEndpoint(testbed.sim, testbed.client, "client.wifi",
                           testbed.client.ephemeral_port(),
                           testbed.server_addrs[0], HTTP_PORT, config,
                           RenoController())
    client = HttpClient(testbed.sim, endpoint, SIZE)
    client.start()
    endpoint.connect()
    outage = InterfaceOutage(testbed.sim,
                             testbed.client.interfaces["client.wifi"])
    outage.schedule(down_at=DOWN_AT, up_at=UP_AT)
    testbed.run(until=300.0)
    return client.record


def run_mptcp():
    testbed = Testbed(TestbedConfig(seed=SEED))
    config = MptcpConfig()
    server_side = {}

    def on_connection(server_conn):
        server_side["conn"] = server_conn
        HttpServerSession.fixed(server_conn, SIZE)

    MptcpListener(testbed.sim, testbed.server, HTTP_PORT, config,
                  server_addrs=testbed.server_addrs,
                  on_connection=on_connection)
    connection = MptcpConnection.client(
        testbed.sim, testbed.client, testbed.client_addrs,
        testbed.server_addrs[0], HTTP_PORT, config)
    client = HttpClient(testbed.sim, connection, SIZE)
    client.start()
    connection.connect()
    outage = InterfaceOutage(testbed.sim,
                             testbed.client.interfaces["client.wifi"])
    outage.schedule(down_at=DOWN_AT, up_at=UP_AT)
    manager = connection.path_manager
    outage.on_down.append(lambda: manager.on_interface_down("client.wifi"))
    outage.on_up.append(lambda: manager.on_interface_up("client.wifi"))
    testbed.run(until=300.0)
    return client.record, connection, server_side["conn"]


def main():
    print(f"{SIZE // MB} MB download; WiFi down {DOWN_AT:.0f}s-{UP_AT:.0f}s\n")
    sp = run_single_path()
    if sp.complete:
        print(f"SP-WiFi : completed in {sp.download_time:7.2f} s "
              f"(stalled through the outage)")
    else:
        print(f"SP-WiFi : DID NOT COMPLETE "
              f"({sp.bytes_received / MB:.1f} MB received)")
    mp, connection, server_conn = run_mptcp()
    print(f"MPTCP   : completed in {mp.download_time:7.2f} s")
    print("\nMPTCP subflow history:")
    for subflow in connection.subflows:
        endpoint = subflow.endpoint
        started = endpoint.stats.connect_started_at
        print(f"  {subflow.path_name:6s} opened t={started:5.2f}s "
              f"-> {endpoint.state}")
    shares = connection.receive_buffer.metrics.bytes_by_path
    total = sum(shares.values())
    print("\nbytes by path: " + ", ".join(
        f"{path} {nbytes / total:.0%}" for path, nbytes
        in sorted(shares.items())))
    reinjected = sum(server_conn.bytes_reinjected.values())
    print(f"(server reinjected {reinjected / 1024:.0f} KB stranded on "
          f"the dead WiFi subflow)")


if __name__ == "__main__":
    main()

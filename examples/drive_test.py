#!/usr/bin/env python3
"""A drive test: sweeping cellular signal strength.

Section 3.1 reports signals between -60 and -102 dBm across the three
towns.  This example sweeps that range explicitly (the measurement a
drive test performs), downloading a 1 MB object at each signal level
over SP-LTE and over MPTCP, showing the paper's robustness argument
from another angle: as the cellular path fades, MPTCP degrades toward
plain WiFi instead of toward the fading path.

Run:  python examples/drive_test.py
"""

import statistics

from repro.experiments import FlowSpec, Measurement
from repro.wireless.profiles import ATT_LTE
from repro.wireless.signal import apply_signal, rate_fraction

MB = 1024 * 1024
SIZE = 1 * MB
SIGNALS = (-60, -75, -85, -95, -102)
SEEDS = (44, 45, 46)


def median_time(spec, profile):
    times = []
    for seed in SEEDS:
        result = Measurement(spec, SIZE, seed=seed,
                             cell_profile=profile).run()
        if result.completed:
            times.append(result.download_time)
    return statistics.median(times)


def main():
    wifi_baseline = median_time(FlowSpec.single_path("wifi"), None)
    print(f"1 MB download vs AT&T signal strength "
          f"(SP-WiFi baseline: {wifi_baseline:.2f}s)\n")
    print(f"{'signal':>8s} {'capacity':>9s} {'SP-LTE':>8s} "
          f"{'MPTCP':>8s}")
    for dbm in SIGNALS:
        profile = apply_signal(ATT_LTE, dbm)
        lte = median_time(FlowSpec.single_path("cell", carrier="att"),
                          profile)
        mptcp = median_time(FlowSpec.mptcp(carrier="att"), profile)
        print(f"{dbm:>6} dBm {rate_fraction(dbm):8.0%} "
              f"{lte:8.2f} {mptcp:8.2f}")
    print("\nSP-LTE collapses with the signal; MPTCP degrades only to")
    print("the WiFi baseline -- robustness without choosing a network.")


if __name__ == "__main__":
    main()

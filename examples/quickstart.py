#!/usr/bin/env python3
"""Quickstart: download one Web object three ways and compare.

Reproduces the paper's core experiment in miniature: fetch a 512 KB
object from the simulated UMass server over

  1. single-path TCP on home WiFi,
  2. single-path TCP on AT&T LTE,
  3. 2-path MPTCP using both (coupled congestion controller),

and print download time, per-path traffic split, loss and RTT.

Run:  python examples/quickstart.py
"""

from repro.experiments import FlowSpec, Measurement

KB = 1024
SIZE = 512 * KB
SEED = 2013


def describe(result):
    metrics = result.metrics
    print(f"  download time : {result.download_time:.3f} s")
    print(f"  cellular share: {metrics.cellular_fraction:.0%}")
    for path, analysis in sorted(metrics.per_path.items()):
        print(f"  {path:8s} loss={analysis.loss_rate:6.2%} "
              f"rtt={analysis.mean_rtt * 1000:7.1f} ms "
              f"({analysis.data_packets_sent} data pkts)")
    print()


def main():
    specs = [
        FlowSpec.single_path("wifi"),
        FlowSpec.single_path("cell", carrier="att"),
        FlowSpec.mptcp(carrier="att", controller="coupled"),
    ]
    print(f"Downloading a {SIZE // KB} KB object (seed {SEED}):\n")
    times = {}
    for spec in specs:
        result = Measurement(spec, SIZE, seed=SEED).run()
        assert result.completed, f"{spec.label} did not complete"
        print(f"{spec.label}")
        describe(result)
        times[spec.label] = result.download_time
    best_single = min(times["SP-WiFi"], times["SP-ATT"])
    gain = 1 - times["MP-2"] / best_single
    print(f"MPTCP vs best single path: {gain:+.0%} "
          f"({'faster' if gain > 0 else 'comparable'})")


if __name__ == "__main__":
    main()

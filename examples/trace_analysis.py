#!/usr/bin/env python3
"""Working with traces: the tcpdump/tcptrace workflow, simulated.

The paper's methodology (Section 3.2): capture packets at both ends,
analyze per-subflow RTT and loss with tcptrace.  This example runs one
MPTCP download with captures attached, then walks the same pipeline:

* a tcpdump-style excerpt of the handshake (MPTCP options visible);
* per-subflow tcptrace summaries from the server capture;
* a cwnd/RTT time-series probe on the WiFi subflow;
* the connection-level roll-up (download time, split, reorder delay).

Run:  python examples/trace_analysis.py
"""

from repro.app.http import HTTP_PORT, HttpClient, HttpServerSession
from repro.core.connection import MptcpConfig, MptcpConnection, \
    MptcpListener
from repro.testbed import Testbed, TestbedConfig
from repro.trace.analyzer import analyze_flow, flows_in
from repro.trace.capture import PacketCapture
from repro.trace.dump import dump, flow_summary
from repro.trace.metrics import connection_metrics
from repro.trace.timeseries import TimeSeriesProbe

MB = 1024 * 1024
SIZE = 2 * MB


def main():
    testbed = Testbed(TestbedConfig(carrier="att", seed=12))
    server_capture = PacketCapture(testbed.server)
    client_capture = PacketCapture(testbed.client)
    config = MptcpConfig()
    server_side = {}

    def on_connection(server_conn):
        server_side["conn"] = server_conn
        HttpServerSession.fixed(server_conn, SIZE)

    MptcpListener(testbed.sim, testbed.server, HTTP_PORT, config,
                  server_addrs=testbed.server_addrs,
                  on_connection=on_connection)
    connection = MptcpConnection.client(
        testbed.sim, testbed.client, testbed.client_addrs,
        testbed.server_addrs[0], HTTP_PORT, config)
    probe = TimeSeriesProbe(testbed.sim, period=0.05)
    client = HttpClient(testbed.sim, connection, SIZE,
                        on_complete=lambda record: probe.stop())

    def on_established():
        client._on_established()  # keep the HTTP flow going
        wifi = server_side["conn"].subflows[0].endpoint
        probe.track("cwnd (KB)", lambda: wifi.cwnd / 1024)
        probe.track("srtt (ms)",
                    lambda: wifi.smoothed_rtt() * 1000)
        probe.start()

    connection.on_established = on_established
    client.start()
    connection.connect()
    testbed.run(until=120.0)

    print("=== tcpdump excerpt (client, first 8 packets) ===")
    print(dump(client_capture, limit=8))

    print("\n=== tcptrace per-subflow summaries (server capture) ===")
    for key, records in sorted(flows_in(server_capture).items()):
        senders = {record.src for record in records
                   if record.direction == "send"
                   and record.payload_len > 0}
        server_addr = next((addr for addr in senders
                            if addr.startswith("server.")), None)
        if server_addr is None:
            continue
        print()
        print(flow_summary(analyze_flow(records, server_addr)))

    print("\n=== WiFi subflow trajectory ===")
    for name in ("cwnd (KB)", "srtt (ms)"):
        print("  " + probe.sparkline(name))

    print("\n=== connection roll-up ===")
    metrics = connection_metrics(
        server_capture, client_capture,
        ofo_delays=connection.receive_buffer.metrics.delays())
    print(f"  download time    : {metrics.download_time:.3f} s")
    print(f"  cellular fraction: {metrics.cellular_fraction:.0%}")
    in_order = connection.receive_buffer.metrics.in_order_fraction()
    print(f"  in-order packets : {in_order:.0%}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The energy cost of the second radio (the paper's future work).

Section 6 closes with: "By adding another cellular path to an MPTCP
connection, there will be an additional energy cost for activating and
using the antenna. ... We leave this as future work."  This example
runs that measurement: download the same object over SP-WiFi, SP-LTE
and 2-path MPTCP, metering each radio with the standard smartphone
power model (active/tail/promotion states), and report the
latency-vs-joules trade-off.

Run:  python examples/energy_cost.py [size_mb]
"""

import sys

from repro.app.http import HTTP_PORT, HttpClient, HttpServerSession, \
    PlainTcpAcceptor
from repro.core.connection import MptcpConfig, MptcpConnection, \
    MptcpListener
from repro.core.coupling import RenoController
from repro.tcp.endpoint import TcpConfig, TcpEndpoint
from repro.testbed import Testbed, TestbedConfig
from repro.wireless.energy import EnergyAudit

MB = 1024 * 1024
SEED = 23


def run(mode, size):
    testbed = Testbed(TestbedConfig(seed=SEED))
    audit = EnergyAudit(testbed)
    if mode == "mptcp":
        config = MptcpConfig()
        MptcpListener(testbed.sim, testbed.server, HTTP_PORT, config,
                      server_addrs=testbed.server_addrs,
                      on_connection=lambda c:
                      HttpServerSession.fixed(c, size))
        transport = MptcpConnection.client(
            testbed.sim, testbed.client, testbed.client_addrs,
            testbed.server_addrs[0], HTTP_PORT, config)
    else:
        config = TcpConfig()
        PlainTcpAcceptor(testbed.sim, testbed.server, HTTP_PORT, config,
                         RenoController, responder=lambda i: size)
        local = ("client.wifi" if mode == "wifi" else "client.att")
        transport = TcpEndpoint(testbed.sim, testbed.client, local,
                                testbed.client.ephemeral_port(),
                                testbed.server_addrs[0], HTTP_PORT,
                                config, RenoController())
    client = HttpClient(testbed.sim, transport, size)
    client.start()
    transport.connect()
    testbed.run(until=300.0)
    assert client.record.complete
    # Account until the tail after the last packet has drained, the
    # way a phone actually pays for the download.
    return client.record, audit


def main():
    size = (int(sys.argv[1]) if len(sys.argv) > 1 else 4) * MB
    print(f"Energy to download {size // MB} MB (radio model: "
          f"active/tail/promotion):\n")
    print(f"{'transport':10s} {'time (s)':>9s} {'energy (J)':>11s} "
          f"{'J/MB':>7s}   breakdown")
    for mode in ("wifi", "lte", "mptcp"):
        record, audit = run(mode, size)
        # Account until every radio's tail has drained after the last
        # byte -- that is what the battery actually pays.
        reports = audit.report(until=record.completed_at + 12.0)
        joules = sum(r.total_joules for r in reports.values())
        parts = ", ".join(
            f"{addr.split('.', 1)[1]}: {r.total_joules:.1f}J "
            f"(active {r.active_joules:.1f} + tail {r.tail_joules:.1f})"
            for addr, r in sorted(reports.items())
            if r.active_joules > 0)
        label = {"wifi": "SP-WiFi", "lte": "SP-LTE",
                 "mptcp": "MPTCP"}[mode]
        print(f"{label:10s} {record.download_time:9.2f} {joules:11.2f} "
              f"{joules / (size / MB):7.2f}   {parts}")
    print("\nMPTCP finishes first but keeps two radios (and two tails)")
    print("burning -- the trade-off the paper flags as future work.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Anatomy of cellular bufferbloat (Section 5.1's mechanism).

Instruments a single-path download over Verizon LTE with a time-series
probe and shows the machinery the paper describes: the congestion
window grows essentially unchecked over the near-loss-free cellular
path, the deep carrier buffer fills, and the measured RTT inflates to
a multiple of its base value.  Run twice -- with the paper's 64 KB
initial ssthresh and with ssthresh = infinity -- to see why Section
3.1 pins the threshold.

Run:  python examples/bufferbloat_anatomy.py
"""

from repro.app.http import HTTP_PORT, HttpClient, PlainTcpAcceptor
from repro.core.coupling import RenoController
from repro.tcp.endpoint import TcpConfig, TcpEndpoint
from repro.testbed import Testbed, TestbedConfig
from repro.trace.timeseries import TimeSeriesProbe

MB = 1024 * 1024
SIZE = 8 * MB
SEED = 6


def run(ssthresh, label):
    testbed = Testbed(TestbedConfig(carrier="verizon", seed=SEED,
                                    environment_jitter=False))
    config = TcpConfig(initial_ssthresh=ssthresh)
    acceptor = PlainTcpAcceptor(
        testbed.sim, testbed.server, HTTP_PORT, config, RenoController,
        responder=lambda i: SIZE)
    endpoint = TcpEndpoint(testbed.sim, testbed.client, "client.verizon",
                           testbed.client.ephemeral_port(),
                           testbed.server_addrs[0], HTTP_PORT, config,
                           RenoController())
    up_link, down_link = testbed.network.links_for("client.verizon")
    probe = TimeSeriesProbe(testbed.sim, period=0.1)
    client = HttpClient(testbed.sim, endpoint, SIZE,
                        on_complete=lambda record: probe.stop())
    client.start()
    endpoint.connect()
    probe.track("cwnd (KB)", lambda: (
        acceptor.sessions[0].transport.cwnd / 1024
        if acceptor.sessions else 0.0))
    probe.track("srtt (ms)", lambda: (
        acceptor.sessions[0].transport.smoothed_rtt() * 1000
        if acceptor.sessions else 0.0))
    probe.track("queue (KB)", lambda: down_link.queue_bytes / 1024)
    probe.start()
    testbed.run(until=180.0)
    probe.stop()

    print(f"=== ssthresh = {label} ===")
    print(f"  download time: {client.record.download_time:8.2f} s")
    for name in ("cwnd (KB)", "srtt (ms)", "queue (KB)"):
        print("  " + probe.sparkline(name))
    srtt = probe.series["srtt (ms)"]
    nonzero = [value for value in srtt.values if value > 0]
    base = min(nonzero) if nonzero else 0.0
    print(f"  RTT inflation: {base:.0f} ms -> {srtt.maximum():.0f} ms "
          f"({srtt.maximum() / max(base, 1):.1f}x)")
    print()


def main():
    print(f"{SIZE // MB} MB over SP-Verizon; deep carrier buffer\n")
    run(64 * 1024, "64 KB (the paper's setting)")
    run(1 << 30, "infinity (Linux default)")
    print("With no slow-start ceiling the window blows straight into")
    print("the carrier buffer: the RTT inflation the paper calls")
    print("'severe' (Section 3.1), and its reason for pinning 64 KB.")


if __name__ == "__main__":
    main()

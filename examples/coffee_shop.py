#!/usr/bin/env python3
"""The Amherst coffee shop (Section 4.1, Figures 6/7).

A busy public hotspot on a Friday afternoon: lossy, slow, jittery
WiFi.  This example downloads the paper's small-flow sizes over the
hotspot alone, LTE alone, and 2-path MPTCP, showing the paper's two
observations: (1) WiFi is unreliable and not always the best path,
(2) MPTCP stays close to the best available path and shifts its
traffic onto cellular as the hotspot degrades.

Run:  python examples/coffee_shop.py
"""

import statistics

from repro.experiments import FlowSpec, Measurement
from repro.wireless.profiles import TimeOfDay

KB, MB = 1024, 1024 * 1024
SIZES = (8 * KB, 64 * KB, 512 * KB, 4 * MB)
SEEDS = (1, 2, 3)


def mean_over_seeds(spec, size, metric):
    values = []
    for seed in SEEDS:
        result = Measurement(spec, size, seed=seed,
                             period=TimeOfDay.AFTERNOON).run()
        if result.completed:
            values.append(metric(result))
    return statistics.mean(values)


def label(size):
    return f"{size // MB} MB" if size >= MB else f"{size // KB} KB"


def main():
    specs = {
        "SP-WiFi (hotspot)": FlowSpec.single_path("wifi", wifi="public"),
        "SP-ATT": FlowSpec.single_path("cell", carrier="att",
                                       wifi="public"),
        "MP-2": FlowSpec.mptcp(carrier="att", wifi="public"),
    }
    print("Mean download time (s) on the public hotspot:\n")
    print(f"{'size':>8s} " + " ".join(f"{name:>18s}" for name in specs))
    for size in SIZES:
        row = [f"{label(size):>8s}"]
        for spec in specs.values():
            time = mean_over_seeds(spec, size,
                                   lambda r: r.download_time)
            row.append(f"{time:18.3f}")
        print(" ".join(row))
    print("\nCellular share of MPTCP traffic (hotspot vs home WiFi):\n")
    home = FlowSpec.mptcp(carrier="att", wifi="home")
    hotspot = specs["MP-2"]
    print(f"{'size':>8s} {'home wifi':>12s} {'hotspot':>12s}")
    for size in SIZES:
        home_share = mean_over_seeds(
            home, size, lambda r: r.metrics.cellular_fraction)
        hot_share = mean_over_seeds(
            hotspot, size, lambda r: r.metrics.cellular_fraction)
        print(f"{label(size):>8s} {home_share:12.0%} {hot_share:12.0%}")
    print("\nThe lossier the WiFi, the more MPTCP leans on LTE -- the")
    print("offloading behaviour of Figure 7.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Photo backup: bulk uploads over MPTCP.

The paper measures downloads; the classic *upstream* mobile workload
is the camera-roll backup.  Uplinks are a fraction of downlinks on
every access network (WiFi 4 vs 20 Mbit/s here, LTE 6 vs 13), which
makes pooling even more attractive upstream: MPTCP's aggregate uplink
beats either path alone.

Uploads a burst of "photos" (3 MB each) over SP-WiFi, SP-LTE and
2-path MPTCP and reports the per-photo and total backup times.

Run:  python examples/photo_upload.py [n_photos]
"""

import statistics
import sys

from repro.app.http import HTTP_PORT
from repro.app.upload import UploadClient, UploadServerSession
from repro.core.connection import MptcpConfig, MptcpConnection, \
    MptcpListener
from repro.core.coupling import RenoController
from repro.tcp.endpoint import TcpConfig, TcpEndpoint, TcpListener
from repro.testbed import Testbed, TestbedConfig

MB = 1024 * 1024
PHOTO = 3 * MB
SEED = 41


def upload_once(mode, seed):
    testbed = Testbed(TestbedConfig(seed=seed))
    if mode == "mptcp":
        config = MptcpConfig()
        MptcpListener(testbed.sim, testbed.server, HTTP_PORT, config,
                      server_addrs=testbed.server_addrs,
                      on_connection=lambda c:
                      UploadServerSession(c, PHOTO))
        transport = MptcpConnection.client(
            testbed.sim, testbed.client, testbed.client_addrs,
            testbed.server_addrs[0], HTTP_PORT, config)
    else:
        config = TcpConfig()

        def accept(packet, host):
            segment = packet.segment
            endpoint = TcpEndpoint(testbed.sim, host, packet.dst,
                                   segment.dst_port, packet.src,
                                   segment.src_port, config,
                                   RenoController())
            UploadServerSession(endpoint, PHOTO)
            endpoint.accept(packet)

        testbed.server.bind_listener(HTTP_PORT, TcpListener(accept))
        local = "client.wifi" if mode == "wifi" else "client.att"
        transport = TcpEndpoint(testbed.sim, testbed.client, local,
                                testbed.client.ephemeral_port(),
                                testbed.server_addrs[0], HTTP_PORT,
                                config, RenoController())
    client = UploadClient(testbed.sim, transport, PHOTO)
    client.start()
    transport.connect()
    testbed.run(until=600.0)
    assert client.record.complete, f"{mode} upload did not complete"
    return client.record.upload_time


def main():
    n_photos = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    print(f"Backing up {n_photos} photos x {PHOTO // MB} MB "
          f"(uplink-bound):\n")
    print(f"{'transport':10s} {'per photo':>10s} {'total':>9s}")
    for mode, label in (("wifi", "SP-WiFi"), ("lte", "SP-LTE"),
                        ("mptcp", "MPTCP")):
        times = [upload_once(mode, SEED + index)
                 for index in range(n_photos)]
        print(f"{label:10s} {statistics.mean(times):10.2f} "
              f"{sum(times):9.1f}")
    print("\nUpstream, the pooled uplinks give MPTCP a clean win over")
    print("either access network alone.")


if __name__ == "__main__":
    main()

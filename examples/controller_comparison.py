#!/usr/bin/env python3
"""Congestion-controller comparison on large flows (Section 4.2).

Downloads an 8 MB object over 2-path MPTCP (WiFi + AT&T) with each of
the three controllers the paper evaluates -- uncoupled reno, the
default coupled (LIA), and olia -- plus the 4-path variants, and
prints download times and per-path splits.

Expected, per Figure 9: reno is fastest (and unfair); olia edges out
coupled; 4 paths beat 2.

Run:  python examples/controller_comparison.py [size_mb]
"""

import statistics
import sys

from repro.experiments import FlowSpec, Measurement

MB = 1024 * 1024
SEEDS = tuple(range(300, 306))


def main():
    size = (int(sys.argv[1]) if len(sys.argv) > 1 else 8) * MB
    print(f"2-path and 4-path MPTCP, {size // MB} MB object, "
          f"{len(SEEDS)} runs each:\n")
    print(f"{'config':16s} {'mean time':>10s} {'stdev':>8s} "
          f"{'cell share':>11s}")
    results = {}
    for paths in (2, 4):
        for controller in ("reno", "coupled", "olia"):
            spec = FlowSpec.mptcp(carrier="att", controller=controller,
                                  paths=paths)
            times, shares = [], []
            for seed in SEEDS:
                result = Measurement(spec, size, seed=seed).run()
                if result.completed:
                    times.append(result.download_time)
                    shares.append(result.metrics.cellular_fraction)
            results[(paths, controller)] = statistics.mean(times)
            print(f"{spec.label:16s} {statistics.mean(times):10.3f} "
                  f"{statistics.stdev(times):8.3f} "
                  f"{statistics.mean(shares):10.0%}")
    print()
    for paths in (2, 4):
        coupled = results[(paths, 'coupled')]
        olia = results[(paths, 'olia')]
        print(f"MP-{paths}: olia vs coupled: "
              f"{(1 - olia / coupled) * 100:+.1f}% "
              f"(paper: olia ~5-10% faster on large flows)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Coffee-shop WiFi with an MPTCP-hostile firewall (RFC 6824 S3.6).

Many public hotspots sit behind firewalls or load balancers that strip
TCP options they do not recognize -- the adoption studies' top reason
MPTCP "does not work" in the wild.  This example puts an
option-stripping box on the hotspot's access links and shows the
fallback machinery earning its keep: every download still completes,
as plain TCP, at single-path goodput -- degraded, never deadlocked.

Run:  python examples/middlebox_fallback.py
"""

import statistics

from repro.experiments import FlowSpec, Measurement

KB, MB = 1024, 1024 * 1024
SIZES = (64 * KB, 512 * KB, 2 * MB)
SEEDS = (1, 2, 3)


def label(size):
    return f"{size // MB} MB" if size >= MB else f"{size // KB} KB"


def run(spec, size):
    results = [Measurement(spec, size, seed=seed).run() for seed in SEEDS]
    assert all(result.completed for result in results), \
        "fallback must never hang a connection"
    time = statistics.mean(result.download_time for result in results)
    modes = {result.metrics.fallback for result in results}
    return time, size * 8 / time / 1e6, modes


def main():
    clean = FlowSpec.mptcp(carrier="att", wifi="public")
    hostile = clean.with_(middlebox="strip-all")
    print("2-path MPTCP on the hotspot, with and without an")
    print("option-stripping firewall on the WiFi access links:\n")
    print(f"{'size':>8s} {'clean (s)':>10s} {'firewall (s)':>13s} "
          f"{'clean Mbit/s':>13s} {'firewall Mbit/s':>16s} {'fallback':>9s}")
    for size in SIZES:
        clean_time, clean_goodput, clean_modes = run(clean, size)
        bad_time, bad_goodput, bad_modes = run(hostile, size)
        assert clean_modes == {"none"} and bad_modes == {"plain"}
        print(f"{label(size):>8s} {clean_time:10.3f} {bad_time:13.3f} "
              f"{clean_goodput:13.3f} {bad_goodput:16.3f} "
              f"{'plain TCP':>9s}")
    print("\nBehind the firewall the MP_CAPABLE option never survives the")
    print("SYN exchange, so every connection silently downgrades to")
    print("single-path TCP on the hotspot (RFC 6824 Section 3.6): the")
    print("cellular path -- and its capacity -- is simply lost.")


if __name__ == "__main__":
    main()

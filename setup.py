"""Legacy shim so editable installs work offline (no `wheel` package).

All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()

"""Client-side NAT behaviour.

Section 2.2.1 of the paper: mobile clients sit behind NATs that "filter
out unidentified packets", so a multi-homed *server* cannot open a
subflow toward the client -- it can only advertise its extra address
with ``ADD_ADDR`` and wait for the client to send the ``MP_JOIN`` SYN.

We model exactly that filtering: inbound packets are admitted only when
their reversed 4-tuple has been seen outbound (an established mapping).
Everything else -- in particular unsolicited inbound SYNs -- is dropped.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.netsim.packet import Packet

Mapping = Tuple[str, int, str, int]


class Nat:
    """A stateful address filter attached to a client interface."""

    def __init__(self) -> None:
        self._mappings: Set[Mapping] = set()
        self.dropped = 0

    def note_outbound(self, packet: Packet) -> None:
        """Record the mapping created by an outbound packet."""
        segment = packet.segment
        self._mappings.add(
            (packet.src, segment.src_port, packet.dst, segment.dst_port))

    def allows(self, packet: Packet) -> bool:
        """True if an inbound packet matches an established mapping."""
        segment = packet.segment
        mapping = (packet.dst, segment.dst_port, packet.src, segment.src_port)
        if mapping in self._mappings:
            return True
        self.dropped += 1
        return False

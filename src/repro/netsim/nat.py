"""Client-side NAT behaviour.

Section 2.2.1 of the paper: mobile clients sit behind NATs that "filter
out unidentified packets", so a multi-homed *server* cannot open a
subflow toward the client -- it can only advertise its extra address
with ``ADD_ADDR`` and wait for the client to send the ``MP_JOIN`` SYN.

We model exactly that filtering: inbound packets are admitted only when
their reversed 4-tuple has been seen outbound (an established mapping).
Everything else -- in particular unsolicited inbound SYNs -- is dropped.

Mappings live in a :class:`repro.middlebox.state.FlowTable`, the same
state machinery the middlebox firewalls and CGN use, so an *idle
timeout* (real NATs expire quiet bindings; the paper's never get the
chance to) and a binding-table capacity can be configured.  The
defaults -- no timeout, no capacity -- preserve the original
keep-forever behaviour.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.middlebox.state import FlowTable
from repro.netsim.packet import Packet

Mapping = Tuple[str, int, str, int]


class Nat:
    """A stateful address filter attached to a client interface."""

    def __init__(self, idle_timeout: Optional[float] = None,
                 max_entries: Optional[int] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if idle_timeout is not None and clock is None:
            raise ValueError("an idle_timeout needs a clock to age against")
        self.table = FlowTable(idle_timeout=idle_timeout,
                               max_entries=max_entries)
        self.clock = clock
        self.dropped = 0

    def _now(self) -> float:
        return self.clock() if self.clock is not None else 0.0

    def note_outbound(self, packet: Packet) -> None:
        """Record (or refresh) the mapping of an outbound packet."""
        segment = packet.segment
        self.table.touch(
            (packet.src, segment.src_port, packet.dst, segment.dst_port),
            now=self._now())

    def allows(self, packet: Packet) -> bool:
        """True if an inbound packet matches a live mapping (inbound
        traffic refreshes it, as on real NATs)."""
        segment = packet.segment
        mapping = (packet.dst, segment.dst_port, packet.src, segment.src_port)
        if self.table.active(mapping, now=self._now()):
            return True
        self.dropped += 1
        return False

    @property
    def expired(self) -> int:
        """Mappings lazily expired by the idle timeout."""
        return self.table.expired

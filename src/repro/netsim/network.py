"""Address-based routing between interfaces.

The topology of Figure 1 collapses to: every interface has an access
link pair (up toward the core, down from the core), and the core itself
is instantaneous -- the Internet backbone between UMass and the carrier
gateways contributes only a small fixed delay already folded into the
access links' propagation delay.  A packet from ``client.wifi`` to
``server.eth0`` therefore traverses the WiFi uplink in series with the
server-LAN downlink; the reverse direction traverses the server-LAN
uplink then the WiFi downlink (where the deep cellular/WiFi buffers
live).

Two MPTCP subflows that share an interface (the 4-path scenarios)
automatically share that interface's access links, and hence compete
for the same bottleneck -- exactly the resource-pooling situation the
coupled controllers are designed for.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.netsim.host import Host, Interface
from repro.netsim.link import Link, LinkConfig
from repro.netsim.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


class Network:
    """Wires hosts' interfaces together through their access links."""

    def __init__(self, sim: Simulator, rng: RngRegistry) -> None:
        self.sim = sim
        self.rng = rng
        self._interfaces: Dict[str, Interface] = {}

    def attach(self, host: Host, interface: Interface,
               up: LinkConfig, down: LinkConfig) -> Interface:
        """Attach ``interface`` of ``host`` with the given access links."""
        host.add_interface(interface)
        if interface.address in self._interfaces:
            raise ValueError(
                f"address {interface.address!r} already on the network")
        up_link = Link(self.sim, up,
                       self.rng.stream(f"{interface.address}.up"),
                       name=f"{interface.address}.up")
        down_link = Link(self.sim, down,
                         self.rng.stream(f"{interface.address}.down"),
                         name=f"{interface.address}.down")
        up_link.deliver = self._route_to_destination
        down_link.deliver = lambda packet, iface=interface: (
            iface.host.receive(packet, iface))
        interface.up_link = up_link
        interface.down_link = down_link
        self._interfaces[interface.address] = interface
        return interface

    def interface(self, address: str) -> Interface:
        return self._interfaces[address]

    def links_for(self, address: str) -> Tuple[Link, Link]:
        """Return (up_link, down_link) of the interface at ``address``."""
        interface = self._interfaces[address]
        return interface.up_link, interface.down_link

    def _route_to_destination(self, packet: Packet) -> None:
        """Core forwarding: hand the packet to the destination's downlink."""
        interface = self._interfaces.get(packet.dst)
        if interface is None:
            return  # black-hole unroutable packets, as the Internet does
        interface.down_link.send(packet)

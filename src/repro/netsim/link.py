"""Unidirectional links: serialization, propagation, buffering, loss.

This is where every access-network pathology the paper measures comes
from:

* **Bufferbloat** (Section 5.1): a link has a finite *drop-tail* buffer
  sized in bytes.  Cellular profiles use very deep buffers, so when TCP
  grows its window the queueing delay -- occupancy divided by service
  rate -- inflates the RTT by the 4-20x factors the paper reports.
* **Wireless loss**: a Bernoulli per-packet loss probability models
  WiFi's 1-3 % TCP-visible loss.
* **Link-layer ARQ** (Section 2.1): cellular carriers retransmit
  locally, transparent to TCP, so radio errors surface as *delay*
  rather than loss.  :class:`ArqConfig` models this: with probability
  ``error_rate`` a packet is delayed by a recovery time, and only a
  small residual fraction is actually dropped.
* **Rate variability**: cellular service rate is modulated by a seeded
  AR(1) process (:class:`RateModulation`), producing the RTT spread and
  heavy tails of Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional
import bisect
import collections
import random

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

from repro.netsim.packet import Packet
from repro.obs.metrics import BYTES_EDGES
from repro.sim.engine import Simulator
from repro.sim.fastpath import scalar_mode

#: Queue length at which :meth:`Link._serve_next` switches from the
#: scalar per-packet path to a batched burst.  A singleton queue stays
#: scalar (zero batch-build overhead on idle links).
_BATCH_MIN = 2

#: Burst size at which RNG-free links switch from the sequential
#: replication loop to the numpy path.  Both produce bit-identical
#: floats; numpy only amortizes better on long bursts.
_NUMPY_MIN = 16

#: Build-time outcome codes for packets of an active burst, kept so a
#: mid-burst link-down can rewind the burst's precounted statistics.
_DELIVERED = 0
_LOSS = 1
_ARQ_LOSS = 2
_ARQ_RECOVERED = 3


@dataclass(frozen=True)
class ArqConfig:
    """Link-layer local retransmission parameters.

    Attributes:
        error_rate: probability that a packet suffers a radio error.
        recovery_min: minimum local-recovery delay (seconds).
        recovery_max: maximum local-recovery delay (seconds).
        residual_loss: probability, *given* a radio error, that local
            recovery fails and the packet is dropped (TCP-visible loss).
    """

    error_rate: float = 0.0
    recovery_min: float = 0.02
    recovery_max: float = 0.08
    residual_loss: float = 0.01


@dataclass(frozen=True)
class RateModulation:
    """AR(1) multiplicative modulation of the link service rate.

    Every ``interval`` seconds the rate multiplier ``m`` evolves as
    ``m' = 1 + rho * (m - 1) + sigma * N(0, 1)`` and is clamped to
    ``[floor, ceiling]``.  ``sigma = 0`` disables modulation.
    """

    rho: float = 0.9
    sigma: float = 0.0
    interval: float = 0.1
    floor: float = 0.25
    ceiling: float = 1.75


@dataclass(frozen=True)
class LinkConfig:
    """Static description of a unidirectional link."""

    rate_bps: float
    prop_delay: float
    buffer_bytes: int
    loss_rate: float = 0.0
    jitter_mean: float = 0.0
    arq: Optional[ArqConfig] = None
    modulation: Optional[RateModulation] = None


@dataclass
class LinkStats:
    """Counters a link accumulates; read by tests and reports."""

    packets_offered: int = 0
    packets_delivered: int = 0
    drops_overflow: int = 0
    drops_loss: int = 0
    drops_arq_residual: int = 0
    drops_down: int = 0
    drops_middlebox: int = 0
    arq_recoveries: int = 0
    bytes_delivered: int = 0
    peak_queue_bytes: int = 0


class Link:
    """A unidirectional store-and-forward link.

    Packets are serialized one at a time at the (possibly modulated)
    service rate, subject to a drop-tail buffer, then experience
    propagation delay, optional jitter, random loss and optional ARQ
    recovery before being handed to ``deliver``.
    """

    #: Route per-packet events through :meth:`Simulator.post` /
    #: :meth:`Simulator.post_at` (no closure, no Event object) instead
    #: of the legacy ``schedule(..., lambda: ...)`` form.  Both paths
    #: consume one engine sequence number per packet per hop, so flipping
    #: this flag changes allocation behaviour only -- results are
    #: byte-identical (the determinism guard test asserts this).
    use_fast_scheduling = True

    def __init__(self, sim: Simulator, config: LinkConfig,
                 rng: random.Random, name: str = "link") -> None:
        self.sim = sim
        self.config = config
        self.rng = rng
        self.name = name
        self.deliver: Callable[[Packet], None] = lambda packet: None
        #: Optional on-path middlebox hook: called as ``(packet, now)``
        #: for every offered packet, returning the packets to forward
        #: (none = dropped by the box).  See :mod:`repro.middlebox`.
        self.middlebox: Optional[
            Callable[[Packet, float], "list[Packet]"]] = None
        self.stats = LinkStats()
        # Metrics registry, cached at construction like ``sim.trace``
        # consumers elsewhere: install a real registry before building
        # the network.  Guarded with ``enabled`` on the hot path.
        self._metrics = sim.metrics
        self._queue: collections.deque[Packet] = collections.deque()
        self._queue_bytes = 0
        self._busy = False
        self._rate_multiplier = 1.0
        self._last_modulation_step = 0.0
        self._last_delivery_time = 0.0
        self._down = False
        self._fluid_bps = 0.0
        # Hoisted once: per-packet service must not pay a dataclass
        # attribute walk just to learn there is nothing to modulate.
        self._modulated = (config.modulation is not None
                           and config.modulation.sigma != 0.0)
        #: Batched serving enabled?  Cleared by :meth:`disable_batching`
        #: (mobility / shared-world owners) and by ``REPRO_SCALAR=1``.
        self._vectorized = not scalar_mode()
        # Active-burst bookkeeping.  While a burst is in flight the
        # packets are no longer in ``_queue``, so drop-tail admission
        # and occupancy reads reconstruct "bytes not yet in service"
        # from the burst's precomputed service-start times.
        self._batch = None            # the engine-side _Batch handle
        self._batch_starts: Optional[list] = None  # service starts
        self._batch_sizes: list = []
        self._batch_suffix: list = []  # suffix byte sums over starts
        self._batch_entry_index: list = []  # packet -> delivery entry
        self._batch_outcomes: list = []     # packet -> build outcome
        self._batch_end = 0.0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def set_down(self, down: bool) -> None:
        """Take the link down (all traffic black-holed) or back up.

        Models WiFi disassociation / walking out of AP range: packets
        already queued are flushed (they would be lost with the
        association state), and new offers are dropped until the link
        comes back.
        """
        self._down = down
        if down:
            self.stats.drops_down += len(self._queue)
            self._queue.clear()
            self._queue_bytes = 0
            if self._batch_starts is not None:
                self._abort_batch()
            # A link that suffers outages is volatile: stay on the
            # scalar pipeline from here on so post-recovery RNG draw
            # sequences match the legacy path (mobility owners already
            # pin their links at construction; this is the backstop).
            self._vectorized = False

    def disable_batching(self) -> None:
        """Pin this link to the scalar per-packet pipeline.

        Mobility outages (:class:`repro.wireless.mobility.InterfaceOutage`)
        and shared-world residual-capacity coupling
        (:meth:`set_fluid_load` called mid-run) mutate link state while
        packets are in flight.  A precomputed burst cannot follow such
        mutations without replaying RNG draws, so owners of volatile
        links pin them scalar at construction time; batching on all
        other links is byte-identical to the scalar path (the
        determinism guard asserts it).
        """
        self._vectorized = False

    @property
    def is_down(self) -> bool:
        return self._down

    def send(self, packet: Packet) -> None:
        """Offer a packet to the link; it is queued, dropped, or served."""
        self.stats.packets_offered += 1
        if self._down:
            self.stats.drops_down += 1
            if self._metrics.enabled:
                self._metrics.counter("link.drops.down").inc()
            return
        if self.middlebox is not None:
            forwarded = self.middlebox(packet, self.sim.now)
            if not forwarded:
                self.stats.drops_middlebox += 1
                if self._metrics.enabled:
                    self._metrics.counter("link.drops.middlebox").inc()
                return
            for transformed in forwarded:
                self._admit(transformed)
            return
        self._admit(packet)

    def _admit(self, packet: Packet) -> None:
        """Drop-tail admission into the serialization queue."""
        size = packet.wire_size
        occupancy = self._queue_bytes
        starts = self._batch_starts
        if starts is not None:
            # Packets of the active burst whose service starts after
            # now are, in scalar terms, still buffered: count them so
            # drop-tail decisions and the peak-queue statistic stay
            # byte-identical to the per-packet pipeline.
            occupancy += self._batch_suffix[
                bisect.bisect_right(starts, self.sim.now)]
        if occupancy + size > self.config.buffer_bytes:
            self.stats.drops_overflow += 1
            if self._metrics.enabled:
                self._metrics.counter("link.drops.overflow").inc()
            return
        if self._metrics.enabled:
            self._metrics.histogram("link.queue_bytes",
                                    BYTES_EDGES).observe(float(occupancy))
        self._queue.append(packet)
        self._queue_bytes += size
        occupancy += size
        if occupancy > self.stats.peak_queue_bytes:
            self.stats.peak_queue_bytes = occupancy
        if not self._busy:
            self._serve_next()

    @property
    def queue_bytes(self) -> int:
        """Bytes currently buffered (excludes the packet in service)."""
        starts = self._batch_starts
        if starts is None:
            return self._queue_bytes
        return self._queue_bytes + self._batch_suffix[
            bisect.bisect_right(starts, self.sim.now)]

    def set_fluid_load(self, load_bps: float) -> None:
        """Declare bandwidth claimed by fluid-model background flows.

        The shared-world kernel (:mod:`repro.world`) pushes the summed
        max-min share of every background flow crossing this link here;
        packet-level flows then see the *residual* capacity through
        :meth:`current_rate`.  A load of ``0.0`` restores the link to
        its exact stand-alone behaviour -- the subtraction below is
        guarded so single-connection runs stay byte-identical.
        """
        self._fluid_bps = load_bps

    def current_rate(self) -> float:
        """Instantaneous service rate in bits/s after modulation.

        When a shared world has claimed fluid background load (see
        :meth:`set_fluid_load`) the packet-level rate is the residual
        capacity, floored at 2 % of nominal so a saturated bottleneck
        degrades the foreground flow instead of stalling it outright.
        """
        return self._rate_at(self.sim.now)

    def _rate_at(self, now: float) -> float:
        """Service rate with the AR(1) state advanced to ``now``.

        The batched pipeline evaluates this at each packet's *future*
        service-start time, replicating exactly the modulation draws
        the scalar path would make at those event times.  The
        no-modulation check is hoisted into the ``_modulated`` flag so
        unmodulated links never enter :meth:`_step_modulation` at all.
        """
        if self._modulated:
            self._step_modulation(now)
        rate = self.config.rate_bps * self._rate_multiplier
        if self._fluid_bps:
            rate -= self._fluid_bps
            floor = 0.02 * self.config.rate_bps
            if rate < floor:
                rate = floor
        return rate

    def queueing_delay_estimate(self) -> float:
        """Time a packet arriving now would wait before service begins."""
        return self.queue_bytes * 8.0 / self.current_rate()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _step_modulation(self, now: Optional[float] = None) -> None:
        modulation = self.config.modulation
        if modulation is None or modulation.sigma == 0.0:
            return
        if now is None:
            now = self.sim.now
        steps = int((now - self._last_modulation_step) / modulation.interval)
        if steps <= 0:
            return
        # Cap the catch-up work after a very long idle period (beyond
        # ~10k intervals AR(1) memory of the old state is gone anyway).
        # _last_modulation_step must advance only by the iterations
        # actually applied: advancing by the full `steps` would silently
        # skip AR(1) evolution (and its RNG draws) for the excess.
        applied = min(steps, 10_000)
        multiplier = self._rate_multiplier
        for _ in range(applied):
            noise = self.rng.gauss(0.0, modulation.sigma)
            multiplier = 1.0 + modulation.rho * (multiplier - 1.0) + noise
            multiplier = min(max(multiplier, modulation.floor),
                             modulation.ceiling)
        self._rate_multiplier = multiplier
        self._last_modulation_step += applied * modulation.interval

    def _serve_next(self) -> None:
        queue = self._queue
        if not queue:
            self._busy = False
            return
        self._busy = True
        if (self._vectorized and len(queue) >= _BATCH_MIN
                and self.use_fast_scheduling):
            self._serve_burst()
            return
        packet = queue.popleft()
        size = packet.wire_size
        self._queue_bytes -= size
        service_time = size * 8.0 / self.current_rate()
        if self.use_fast_scheduling:
            self.sim.post(service_time, self._service_done, packet)
        else:
            self.sim.schedule(service_time,
                              lambda: self._service_done(packet),
                              name=f"{self.name}.service")

    def _serve_burst(self) -> None:
        """Serve the whole queue as one precomputed burst.

        Replays, at build time, exactly the arithmetic and RNG draw
        sequence the scalar path would perform across the burst --
        modulation steps at each service start, then jitter, loss and
        ARQ draws at each service completion -- and posts every
        surviving delivery as a single batched engine event plus one
        continuation at the burst's end of service.  Packets arriving
        mid-burst queue behind it and are served by the continuation,
        at the same service-start times the scalar path would give
        them.
        """
        queue = self._queue
        packets = list(queue)
        queue.clear()
        self._queue_bytes = 0
        sizes = [packet.wire_size for packet in packets]
        count = len(packets)
        config = self.config
        now = self.sim.now
        prop = config.prop_delay
        arq = config.arq
        rng_free = (not self._modulated and config.loss_rate == 0.0
                    and config.jitter_mean == 0.0
                    and (arq is None or arq.error_rate == 0.0))
        if rng_free and count >= _NUMPY_MIN and _np is not None:
            # Vectorized path.  np.cumsum accumulates sequentially, so
            # seeding element 0 with `now` reproduces the scalar chain
            # ((now + s1) + s2) ... bit-for-bit; the FIFO clamp is a
            # running maximum seeded with the last delivery time.
            rate = self._rate_at(now)
            acc = _np.empty(count + 1, dtype=_np.float64)
            acc[0] = now
            acc[1:] = _np.asarray(sizes, dtype=_np.float64) * 8.0 / rate
            completions = _np.cumsum(acc)
            starts = completions[:count].tolist()
            burst_end = float(completions[count])
            clamp = _np.empty(count + 1, dtype=_np.float64)
            clamp[0] = self._last_delivery_time
            clamp[1:] = completions[1:] + prop
            delivery_times = _np.maximum.accumulate(clamp)[1:].tolist()
            delivery_args = packets
            entry_index = list(range(count))
            outcomes = [0] * count
            self._last_delivery_time = delivery_times[-1]
            stats = self.stats
            stats.packets_delivered += count
            stats.bytes_delivered += sum(sizes)
        else:
            # Sequential replication: the exact scalar per-packet loop,
            # evaluated ahead of time.  Draw order matches the event
            # interleaving of the scalar pipeline: modulation at this
            # packet's service start, then its propagation draws, then
            # the next packet's modulation step.
            rng = self.rng
            stats = self.stats
            jitter_mean = config.jitter_mean
            loss_rate = config.loss_rate
            arq_on = arq is not None and arq.error_rate > 0.0
            starts = [0.0] * count
            delivery_times: list = []
            delivery_args: list = []
            entry_index = [-1] * count
            outcomes = [0] * count
            last = self._last_delivery_time
            t = now
            for j in range(count):
                starts[j] = t
                size = sizes[j]
                t = t + size * 8.0 / self._rate_at(t)
                delay = prop
                if jitter_mean > 0.0:
                    delay += rng.expovariate(1.0 / jitter_mean)
                if loss_rate > 0.0 and rng.random() < loss_rate:
                    stats.drops_loss += 1
                    outcomes[j] = _LOSS
                    continue
                if arq_on:
                    if rng.random() < arq.error_rate:
                        if rng.random() < arq.residual_loss:
                            stats.drops_arq_residual += 1
                            outcomes[j] = _ARQ_LOSS
                            continue
                        stats.arq_recoveries += 1
                        outcomes[j] = _ARQ_RECOVERED
                        delay += rng.uniform(arq.recovery_min,
                                             arq.recovery_max)
                stats.packets_delivered += 1
                stats.bytes_delivered += size
                delivery_time = t + delay
                if delivery_time < last:
                    delivery_time = last
                else:
                    last = delivery_time
                entry_index[j] = len(delivery_times)
                delivery_times.append(delivery_time)
                delivery_args.append(packets[j])
            self._last_delivery_time = last
            burst_end = t
        suffix = [0] * (count + 1)
        total = 0
        for j in range(count - 1, -1, -1):
            total += sizes[j]
            suffix[j] = total
        self._batch_sizes = sizes
        self._batch_starts = starts
        self._batch_suffix = suffix
        self._batch_entry_index = entry_index
        self._batch_outcomes = outcomes
        self._batch_end = burst_end
        sim = self.sim
        if delivery_times:
            self._batch = sim.post_batch(delivery_times, self.deliver,
                                         delivery_args)
        else:
            self._batch = None
        sim.post_at(burst_end, self._burst_done)

    def _burst_done(self) -> None:
        """End of a burst's serialization: resume normal serving."""
        self._batch = None
        self._batch_starts = None
        self._serve_next()

    def _abort_batch(self) -> None:
        """Reconcile an in-flight burst with a link-down event.

        Scalar semantics: packets whose service has not completed by
        now are lost to the outage (queued ones immediately, the one
        in service at its completion); packets already past service are
        in the air and still deliver.  Rewind the burst's precounted
        statistics for the former and revoke their delivery entries.
        The RNG draws made for them at build time are not un-drawn --
        volatile links are pinned scalar by their owners, so this path
        only softens direct ``set_down`` use on a batching link.
        """
        starts = self._batch_starts
        sizes = self._batch_sizes
        outcomes = self._batch_outcomes
        entries = self._batch_entry_index
        end = self._batch_end
        now = self.sim.now
        stats = self.stats
        count = len(starts)
        first_entry = -1
        for j in range(count):
            completion = starts[j + 1] if j + 1 < count else end
            if completion <= now:
                continue
            outcome = outcomes[j]
            if outcome == _DELIVERED:
                stats.packets_delivered -= 1
                stats.bytes_delivered -= sizes[j]
            elif outcome == _LOSS:
                stats.drops_loss -= 1
            elif outcome == _ARQ_LOSS:
                stats.drops_arq_residual -= 1
            else:
                stats.packets_delivered -= 1
                stats.bytes_delivered -= sizes[j]
                stats.arq_recoveries -= 1
            stats.drops_down += 1
            if first_entry < 0 and entries[j] >= 0:
                first_entry = entries[j]
        if first_entry >= 0 and self._batch is not None:
            self._batch.revoke_from(first_entry)
        self._batch = None
        self._batch_starts = None
        # The burst-done continuation still fires at the original end
        # of serialization and resumes (now scalar) service there.

    def _service_done(self, packet: Packet) -> None:
        self._propagate(packet)
        self._serve_next()

    def _propagate(self, packet: Packet) -> None:
        if self._down:
            self.stats.drops_down += 1
            return
        config = self.config
        delay = config.prop_delay
        if config.jitter_mean > 0.0:
            delay += self.rng.expovariate(1.0 / config.jitter_mean)
        if config.loss_rate > 0.0 and self.rng.random() < config.loss_rate:
            self.stats.drops_loss += 1
            return
        arq = config.arq
        if arq is not None and arq.error_rate > 0.0:
            if self.rng.random() < arq.error_rate:
                if self.rng.random() < arq.residual_loss:
                    self.stats.drops_arq_residual += 1
                    return
                self.stats.arq_recoveries += 1
                delay += self.rng.uniform(arq.recovery_min, arq.recovery_max)
        self.stats.packets_delivered += 1
        self.stats.bytes_delivered += packet.wire_size
        # FIFO links (WiFi MAC queues, cellular RLC-AM) deliver in order:
        # a delayed packet holds back the ones behind it.
        delivery_time = self.sim.now + delay
        if delivery_time < self._last_delivery_time:
            delivery_time = self._last_delivery_time
        else:
            self._last_delivery_time = delivery_time
        if self.use_fast_scheduling:
            self.sim.post_at(delivery_time, self.deliver, packet)
        else:
            self.sim.schedule_at(delivery_time,
                                 lambda: self.deliver(packet),
                                 name=f"{self.name}.deliver")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Link {self.name} rate={self.config.rate_bps / 1e6:.1f}Mbps "
                f"queued={self._queue_bytes}B>")

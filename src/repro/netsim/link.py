"""Unidirectional links: serialization, propagation, buffering, loss.

This is where every access-network pathology the paper measures comes
from:

* **Bufferbloat** (Section 5.1): a link has a finite *drop-tail* buffer
  sized in bytes.  Cellular profiles use very deep buffers, so when TCP
  grows its window the queueing delay -- occupancy divided by service
  rate -- inflates the RTT by the 4-20x factors the paper reports.
* **Wireless loss**: a Bernoulli per-packet loss probability models
  WiFi's 1-3 % TCP-visible loss.
* **Link-layer ARQ** (Section 2.1): cellular carriers retransmit
  locally, transparent to TCP, so radio errors surface as *delay*
  rather than loss.  :class:`ArqConfig` models this: with probability
  ``error_rate`` a packet is delayed by a recovery time, and only a
  small residual fraction is actually dropped.
* **Rate variability**: cellular service rate is modulated by a seeded
  AR(1) process (:class:`RateModulation`), producing the RTT spread and
  heavy tails of Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional
import collections
import random

from repro.netsim.packet import Packet
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class ArqConfig:
    """Link-layer local retransmission parameters.

    Attributes:
        error_rate: probability that a packet suffers a radio error.
        recovery_min: minimum local-recovery delay (seconds).
        recovery_max: maximum local-recovery delay (seconds).
        residual_loss: probability, *given* a radio error, that local
            recovery fails and the packet is dropped (TCP-visible loss).
    """

    error_rate: float = 0.0
    recovery_min: float = 0.02
    recovery_max: float = 0.08
    residual_loss: float = 0.01


@dataclass(frozen=True)
class RateModulation:
    """AR(1) multiplicative modulation of the link service rate.

    Every ``interval`` seconds the rate multiplier ``m`` evolves as
    ``m' = 1 + rho * (m - 1) + sigma * N(0, 1)`` and is clamped to
    ``[floor, ceiling]``.  ``sigma = 0`` disables modulation.
    """

    rho: float = 0.9
    sigma: float = 0.0
    interval: float = 0.1
    floor: float = 0.25
    ceiling: float = 1.75


@dataclass(frozen=True)
class LinkConfig:
    """Static description of a unidirectional link."""

    rate_bps: float
    prop_delay: float
    buffer_bytes: int
    loss_rate: float = 0.0
    jitter_mean: float = 0.0
    arq: Optional[ArqConfig] = None
    modulation: Optional[RateModulation] = None


@dataclass
class LinkStats:
    """Counters a link accumulates; read by tests and reports."""

    packets_offered: int = 0
    packets_delivered: int = 0
    drops_overflow: int = 0
    drops_loss: int = 0
    drops_arq_residual: int = 0
    drops_down: int = 0
    drops_middlebox: int = 0
    arq_recoveries: int = 0
    bytes_delivered: int = 0
    peak_queue_bytes: int = 0


class Link:
    """A unidirectional store-and-forward link.

    Packets are serialized one at a time at the (possibly modulated)
    service rate, subject to a drop-tail buffer, then experience
    propagation delay, optional jitter, random loss and optional ARQ
    recovery before being handed to ``deliver``.
    """

    #: Route per-packet events through :meth:`Simulator.post` /
    #: :meth:`Simulator.post_at` (no closure, no Event object) instead
    #: of the legacy ``schedule(..., lambda: ...)`` form.  Both paths
    #: consume one engine sequence number per packet per hop, so flipping
    #: this flag changes allocation behaviour only -- results are
    #: byte-identical (the determinism guard test asserts this).
    use_fast_scheduling = True

    def __init__(self, sim: Simulator, config: LinkConfig,
                 rng: random.Random, name: str = "link") -> None:
        self.sim = sim
        self.config = config
        self.rng = rng
        self.name = name
        self.deliver: Callable[[Packet], None] = lambda packet: None
        #: Optional on-path middlebox hook: called as ``(packet, now)``
        #: for every offered packet, returning the packets to forward
        #: (none = dropped by the box).  See :mod:`repro.middlebox`.
        self.middlebox: Optional[
            Callable[[Packet, float], "list[Packet]"]] = None
        self.stats = LinkStats()
        self._queue: collections.deque[Packet] = collections.deque()
        self._queue_bytes = 0
        self._busy = False
        self._rate_multiplier = 1.0
        self._last_modulation_step = 0.0
        self._last_delivery_time = 0.0
        self._down = False
        self._fluid_bps = 0.0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def set_down(self, down: bool) -> None:
        """Take the link down (all traffic black-holed) or back up.

        Models WiFi disassociation / walking out of AP range: packets
        already queued are flushed (they would be lost with the
        association state), and new offers are dropped until the link
        comes back.
        """
        self._down = down
        if down:
            self.stats.drops_down += len(self._queue)
            self._queue.clear()
            self._queue_bytes = 0

    @property
    def is_down(self) -> bool:
        return self._down

    def send(self, packet: Packet) -> None:
        """Offer a packet to the link; it is queued, dropped, or served."""
        self.stats.packets_offered += 1
        if self._down:
            self.stats.drops_down += 1
            return
        if self.middlebox is not None:
            forwarded = self.middlebox(packet, self.sim.now)
            if not forwarded:
                self.stats.drops_middlebox += 1
                return
            for transformed in forwarded:
                self._admit(transformed)
            return
        self._admit(packet)

    def _admit(self, packet: Packet) -> None:
        """Drop-tail admission into the serialization queue."""
        size = packet.wire_size
        if self._queue_bytes + size > self.config.buffer_bytes:
            self.stats.drops_overflow += 1
            return
        self._queue.append(packet)
        self._queue_bytes += size
        if self._queue_bytes > self.stats.peak_queue_bytes:
            self.stats.peak_queue_bytes = self._queue_bytes
        if not self._busy:
            self._serve_next()

    @property
    def queue_bytes(self) -> int:
        """Bytes currently buffered (excludes the packet in service)."""
        return self._queue_bytes

    def set_fluid_load(self, load_bps: float) -> None:
        """Declare bandwidth claimed by fluid-model background flows.

        The shared-world kernel (:mod:`repro.world`) pushes the summed
        max-min share of every background flow crossing this link here;
        packet-level flows then see the *residual* capacity through
        :meth:`current_rate`.  A load of ``0.0`` restores the link to
        its exact stand-alone behaviour -- the subtraction below is
        guarded so single-connection runs stay byte-identical.
        """
        self._fluid_bps = load_bps

    def current_rate(self) -> float:
        """Instantaneous service rate in bits/s after modulation.

        When a shared world has claimed fluid background load (see
        :meth:`set_fluid_load`) the packet-level rate is the residual
        capacity, floored at 2 % of nominal so a saturated bottleneck
        degrades the foreground flow instead of stalling it outright.
        """
        self._step_modulation()
        rate = self.config.rate_bps * self._rate_multiplier
        if self._fluid_bps:
            rate -= self._fluid_bps
            floor = 0.02 * self.config.rate_bps
            if rate < floor:
                rate = floor
        return rate

    def queueing_delay_estimate(self) -> float:
        """Time a packet arriving now would wait before service begins."""
        return self._queue_bytes * 8.0 / self.current_rate()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _step_modulation(self) -> None:
        modulation = self.config.modulation
        if modulation is None or modulation.sigma == 0.0:
            return
        now = self.sim.now
        steps = int((now - self._last_modulation_step) / modulation.interval)
        if steps <= 0:
            return
        # Cap the catch-up work after a very long idle period (beyond
        # ~10k intervals AR(1) memory of the old state is gone anyway).
        # _last_modulation_step must advance only by the iterations
        # actually applied: advancing by the full `steps` would silently
        # skip AR(1) evolution (and its RNG draws) for the excess.
        applied = min(steps, 10_000)
        multiplier = self._rate_multiplier
        for _ in range(applied):
            noise = self.rng.gauss(0.0, modulation.sigma)
            multiplier = 1.0 + modulation.rho * (multiplier - 1.0) + noise
            multiplier = min(max(multiplier, modulation.floor),
                             modulation.ceiling)
        self._rate_multiplier = multiplier
        self._last_modulation_step += applied * modulation.interval

    def _serve_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        packet = self._queue.popleft()
        size = packet.wire_size
        self._queue_bytes -= size
        service_time = size * 8.0 / self.current_rate()
        if self.use_fast_scheduling:
            self.sim.post(service_time, self._service_done, packet)
        else:
            self.sim.schedule(service_time,
                              lambda: self._service_done(packet),
                              name=f"{self.name}.service")

    def _service_done(self, packet: Packet) -> None:
        self._propagate(packet)
        self._serve_next()

    def _propagate(self, packet: Packet) -> None:
        if self._down:
            self.stats.drops_down += 1
            return
        config = self.config
        delay = config.prop_delay
        if config.jitter_mean > 0.0:
            delay += self.rng.expovariate(1.0 / config.jitter_mean)
        if config.loss_rate > 0.0 and self.rng.random() < config.loss_rate:
            self.stats.drops_loss += 1
            return
        arq = config.arq
        if arq is not None and arq.error_rate > 0.0:
            if self.rng.random() < arq.error_rate:
                if self.rng.random() < arq.residual_loss:
                    self.stats.drops_arq_residual += 1
                    return
                self.stats.arq_recoveries += 1
                delay += self.rng.uniform(arq.recovery_min, arq.recovery_max)
        self.stats.packets_delivered += 1
        self.stats.bytes_delivered += packet.wire_size
        # FIFO links (WiFi MAC queues, cellular RLC-AM) deliver in order:
        # a delayed packet holds back the ones behind it.
        delivery_time = self.sim.now + delay
        if delivery_time < self._last_delivery_time:
            delivery_time = self._last_delivery_time
        else:
            self._last_delivery_time = delivery_time
        if self.use_fast_scheduling:
            self.sim.post_at(delivery_time, self.deliver, packet)
        else:
            self.sim.schedule_at(delivery_time,
                                 lambda: self.deliver(packet),
                                 name=f"{self.name}.deliver")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Link {self.name} rate={self.config.rate_bps / 1e6:.1f}Mbps "
                f"queued={self._queue_bytes}B>")

"""The packet type exchanged between hosts.

A :class:`Packet` is an IP datagram carrying one TCP segment.  We do
not serialize to bytes; the segment object rides along and the wire
size is modeled as payload plus a constant header overhead, which is
what matters for serialization and queueing delay.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tcp.segment import Segment

#: Bytes of IP header charged to every packet; the TCP header is sized
#: per segment (base header + SACK + MPTCP options, see
#: :attr:`repro.tcp.segment.Segment.header_length`).
IP_HEADER = 20

#: Legacy constant: IP header plus a typical MPTCP-era TCP header.
#: Kept for tests and back-of-envelope math; the simulator itself now
#: sizes each packet from its actual segment.
HEADER_OVERHEAD = 52

_packet_ids = itertools.count(1)


class Packet:
    """An addressed datagram in flight.

    Attributes:
        src: source address (e.g. ``"client.wifi"``).
        dst: destination address (e.g. ``"server.eth0"``).
        segment: the TCP segment carried.
        packet_id: unique id, used by traces to correlate send/receive.
        sent_at: simulated time the packet left the sending host; set by
            the host on transmit, used by link-layer models and traces.
    """

    __slots__ = ("src", "dst", "segment", "packet_id", "sent_at",
                 "_sized_segment", "_wire_size")

    def __init__(self, src: str, dst: str, segment: "Segment") -> None:
        self.src = src
        self.dst = dst
        self.segment = segment
        self.packet_id = next(_packet_ids)
        self.sent_at = 0.0
        self._sized_segment: "Segment | None" = None
        self._wire_size = 0

    @property
    def wire_size(self) -> int:
        """Bytes occupied on the wire: payload + TCP header (sized from
        the segment's actual SACK/MPTCP options) + IP header.

        Computed once per carried segment: segments are frozen, but a
        middlebox may swap ``packet.segment`` for a rewritten one, so
        the cache is keyed on the segment's identity.
        """
        segment = self.segment
        if segment is self._sized_segment:
            return self._wire_size
        size = segment.payload_len + segment.header_length + IP_HEADER
        self._sized_segment = segment
        self._wire_size = size
        return size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Packet #{self.packet_id} {self.src}->{self.dst} "
                f"{self.segment!r}>")

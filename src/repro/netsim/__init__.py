"""Packet-level network substrate.

Models the paper's testbed topology (Figure 1): a multi-homed wired
server, a mobile client with a WiFi interface plus one cellular
interface, and the access networks between them.  The components are:

* :class:`~repro.netsim.packet.Packet` -- an IP-level datagram carrying
  a TCP :class:`~repro.tcp.segment.Segment`.
* :class:`~repro.netsim.link.Link` -- a unidirectional link with a
  serialization rate, propagation delay, finite drop-tail buffer
  (bufferbloat lives here), random loss, optional link-layer ARQ and a
  stochastically modulated service rate.
* :class:`~repro.netsim.host.Host` / :class:`~repro.netsim.host.Interface`
  -- endpoints; hosts demultiplex packets to bound protocol endpoints
  and expose capture hooks for the tracing layer.
* :class:`~repro.netsim.network.Network` -- address-based routing
  between interfaces (client access link in series with server LAN).
* :class:`~repro.netsim.nat.Nat` -- client-side NAT that drops
  unsolicited inbound SYNs (why MPTCP subflows are client-initiated).
"""

from repro.netsim.packet import Packet
from repro.netsim.link import ArqConfig, Link, LinkConfig, RateModulation
from repro.netsim.host import Host, Interface
from repro.netsim.network import Network
from repro.netsim.nat import Nat

__all__ = [
    "Packet",
    "Link",
    "LinkConfig",
    "ArqConfig",
    "RateModulation",
    "Host",
    "Interface",
    "Network",
    "Nat",
]

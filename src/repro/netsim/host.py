"""Hosts and interfaces.

A :class:`Host` owns one or more :class:`Interface` objects (the paper's
client has a WiFi interface plus a cellular modem; the server has two
Ethernet NICs).  Hosts demultiplex inbound packets to bound protocol
endpoints (TCP connections and listeners) and expose capture hooks that
the tracing layer (:mod:`repro.trace`) uses the way the paper uses
tcpdump on both machines.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol, Tuple

from repro.netsim.packet import Packet
from repro.sim.engine import Simulator

#: A TCP 4-tuple from the receiving host's point of view:
#: (local_addr, local_port, remote_addr, remote_port).
FourTuple = Tuple[str, int, str, int]

#: Capture hook signature: (direction, time, packet) where direction is
#: ``"send"`` or ``"recv"``.
CaptureHook = Callable[[str, float, Packet], None]


class PacketSink(Protocol):
    """Anything that can consume a packet addressed to it."""

    def handle_packet(self, packet: Packet) -> None:  # pragma: no cover
        ...


class Listener(Protocol):
    """A passive endpoint that accepts new connections on a port."""

    def handle_syn(self, packet: Packet,
                   host: "Host") -> None:  # pragma: no cover
        ...


class Interface:
    """A network attachment point with its own address and access links.

    ``up_link`` carries traffic from this interface toward the network
    core; ``down_link`` carries traffic from the core to this interface.
    An optional ``radio`` (cellular RRC state machine) gates uplink
    transmissions with a promotion delay, and an optional ``nat``
    filters inbound packets.
    """

    def __init__(self, name: str, address: str) -> None:
        self.name = name
        self.address = address
        self.host: Optional["Host"] = None
        self.up_link = None  # set by Network wiring
        self.down_link = None  # set by Network wiring
        self.radio = None  # Optional[RadioStateMachine]
        self.nat = None  # Optional[Nat]

    def transmit(self, packet: Packet) -> None:
        """Send a packet out of this interface, honoring the radio gate."""
        if self.up_link is None:
            raise RuntimeError(f"interface {self.name} is not wired")
        if self.radio is not None:
            # Arg-carrying form: no closure allocated per packet.
            self.radio.request(self.up_link.send, packet)
        else:
            self.up_link.send(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Interface {self.name} addr={self.address}>"


class Host:
    """A multi-homed endpoint: interfaces plus a TCP demultiplexer."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.interfaces: Dict[str, Interface] = {}
        self._endpoints: Dict[FourTuple, PacketSink] = {}
        self._listeners: Dict[int, Listener] = {}
        self._capture_hooks: list[CaptureHook] = []
        self.packets_sent = 0
        self.packets_received = 0
        self.packets_refused = 0
        self._next_ephemeral_port = 40000

    def ephemeral_port(self) -> int:
        """Allocate a fresh local port for an outgoing connection."""
        port = self._next_ephemeral_port
        self._next_ephemeral_port += 1
        return port

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def add_interface(self, interface: Interface) -> Interface:
        """Attach an interface; its address must be unique on this host."""
        if interface.address in self.interfaces:
            raise ValueError(f"duplicate address {interface.address!r}")
        interface.host = self
        self.interfaces[interface.address] = interface
        return interface

    def interface_for(self, address: str) -> Interface:
        return self.interfaces[address]

    # ------------------------------------------------------------------
    # Endpoint binding
    # ------------------------------------------------------------------

    def bind_listener(self, port: int, listener: Listener) -> None:
        """Accept inbound SYNs to ``port`` on any local address."""
        if port in self._listeners:
            raise ValueError(f"port {port} already has a listener")
        self._listeners[port] = listener

    def unbind_listener(self, port: int) -> None:
        self._listeners.pop(port, None)

    def register_endpoint(self, four_tuple: FourTuple,
                          endpoint: PacketSink) -> None:
        """Bind a connected endpoint to its exact 4-tuple."""
        if four_tuple in self._endpoints:
            raise ValueError(f"4-tuple {four_tuple} already bound")
        self._endpoints[four_tuple] = endpoint

    def unregister_endpoint(self, four_tuple: FourTuple) -> None:
        self._endpoints.pop(four_tuple, None)

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------

    def add_capture_hook(self, hook: CaptureHook) -> None:
        """Register a tcpdump-style observer of this host's traffic."""
        self._capture_hooks.append(hook)

    def remove_capture_hook(self, hook: CaptureHook) -> None:
        self._capture_hooks.remove(hook)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Transmit a packet out of the interface owning ``packet.src``."""
        interface = self.interfaces.get(packet.src)
        if interface is None:
            raise ValueError(
                f"{self.name} has no interface with address {packet.src!r}")
        now = self.sim.now
        packet.sent_at = now
        self.packets_sent += 1
        for hook in self._capture_hooks:
            hook("send", now, packet)
        if interface.nat is not None:
            interface.nat.note_outbound(packet)
        interface.transmit(packet)

    def receive(self, packet: Packet, interface: Interface) -> None:
        """Deliver an inbound packet to the bound endpoint or listener."""
        if interface.nat is not None and not interface.nat.allows(packet):
            self.packets_refused += 1
            return
        if interface.radio is not None:
            interface.radio.touch()
        self.packets_received += 1
        if self._capture_hooks:
            now = self.sim.now
            for hook in self._capture_hooks:
                hook("recv", now, packet)
        segment = packet.segment
        key: FourTuple = (packet.dst, segment.dst_port,
                          packet.src, segment.src_port)
        endpoint = self._endpoints.get(key)
        if endpoint is not None:
            endpoint.handle_packet(packet)
            return
        if segment.flags.syn and not segment.flags.ack:
            listener = self._listeners.get(segment.dst_port)
            if listener is not None:
                listener.handle_syn(packet, self)
                return
        self.packets_refused += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.name} interfaces={sorted(self.interfaces)}>"

"""The TCP endpoint state machine.

One class serves both roles the paper's testbed needs:

* a standalone single-path TCP connection (the SP-WiFi / SP-carrier
  baselines), where the application writes a byte count and reads
  in-order delivery callbacks; and
* an MPTCP *subflow*, where a :class:`TcpDelegate` (implemented by
  :class:`repro.core.subflow.Subflow`) injects MPTCP options into the
  handshake, supplies data-sequence mappings to transmit, and consumes
  received data into the connection-level reorder buffer.

The algorithms follow the configuration pinned in Section 3.1 of the
paper: initial window of 10 segments, initial ssthresh of 64 KB (no
metric caching), SACK enabled, New Reno fast recovery, RFC 6298 RTO
with the 200 ms Linux floor.  Congestion-avoidance *increase* is
delegated to a pluggable :class:`repro.core.coupling.CongestionController`
(reno / coupled / olia); the *decrease* on loss is the unmodified TCP
halving for every controller, as the paper specifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol, Tuple

from repro.netsim.host import Host
from repro.netsim.packet import Packet
from repro.sim.arena import FLIGHT, LOST, SACKED, make_scoreboard
from repro.sim.engine import Event, Simulator
from repro.tcp.reassembly import make_reassembly_queue
from repro.tcp.rto import RtoEstimator
from repro.tcp.segment import Flags, Segment

# Import only for typing; the dependency is one-way at runtime.
from typing import TYPE_CHECKING
if TYPE_CHECKING:  # pragma: no cover
    from repro.core.coupling import CongestionController
    from repro.core.options import MptcpOptions

# Flags is a frozen value object, so the two per-segment variants are
# shared instead of constructed per transmission.
_FLAGS_ACK = Flags(ack=True)
_FLAGS_ACK_FIN = Flags(ack=True, fin=True)


@dataclass(frozen=True)
class TcpConfig:
    """Tunables, defaulted to the paper's Section 3.1 settings."""

    mss: int = 1448
    initial_window_segments: int = 10
    initial_ssthresh: int = 64 * 1024
    rcv_buffer: int = 8 * 1024 * 1024
    dupack_threshold: int = 3
    use_sack: bool = True
    syn_timeout: float = 1.0
    syn_retries: int = 6
    min_rto: float = 0.2
    max_rto: float = 60.0
    initial_rto: float = 1.0
    #: Consecutive RTOs with no progress before the connection is
    #: declared failed (MPTCP then stops scheduling onto the subflow).
    max_data_retries: int = 8
    #: RFC 1122 delayed acknowledgements: ACK every second full-sized
    #: segment, or after ``delack_timeout``.  Off by default -- the
    #: Linux stack the paper measures effectively quick-ACKs bulk
    #: transfers, and the calibration assumes per-packet ACKs.
    delayed_ack: bool = False
    delack_timeout: float = 0.04


class TcpDelegate(Protocol):
    """MPTCP hooks a subflow's owner provides.  All optional for tests."""

    def syn_options(self, endpoint: "TcpEndpoint") -> Optional["MptcpOptions"]:
        ...

    def synack_options(self, endpoint: "TcpEndpoint"
                       ) -> Optional["MptcpOptions"]:
        ...

    def on_handshake_options(self, endpoint: "TcpEndpoint",
                             options: Optional["MptcpOptions"]) -> None:
        ...

    def on_established(self, endpoint: "TcpEndpoint") -> None:
        ...

    def pull_data(self, endpoint: "TcpEndpoint",
                  max_bytes: int) -> Optional[Tuple[int, int]]:
        """Allocate up to ``max_bytes`` of new connection data.

        Returns ``(dsn, length)`` or ``None`` when nothing may be sent
        on this subflow right now.
        """
        ...

    def data_options(self, endpoint: "TcpEndpoint", ssn: int, dsn: int,
                     length: int) -> Optional["MptcpOptions"]:
        ...

    def ack_options(self, endpoint: "TcpEndpoint") -> Optional["MptcpOptions"]:
        ...

    def receive_window(self, endpoint: "TcpEndpoint") -> int:
        ...

    def on_data(self, endpoint: "TcpEndpoint", ssn_start: int, ssn_end: int,
                meta: Tuple[float, Optional["MptcpOptions"]]) -> None:
        ...

    def on_segment(self, endpoint: "TcpEndpoint", segment: Segment) -> None:
        ...

    def on_peer_fin(self, endpoint: "TcpEndpoint") -> None:
        ...

    def on_rto(self, endpoint: "TcpEndpoint") -> None:
        """A retransmission timeout fired (MPTCP reinjection trigger)."""
        ...

    def on_failed(self, endpoint: "TcpEndpoint") -> None:
        """The subflow gave up after repeated timeouts."""
        ...

    def has_pending_data(self, endpoint: "TcpEndpoint") -> bool:
        """Might the connection still hand this subflow data?  While
        true, the subflow defers its FIN (half-close correctness)."""
        ...


# Scoreboard states (re-exported from the arena for call sites/tests).
_FLIGHT = FLIGHT  # transmitted, assumed in the network
_SACKED = SACKED  # selectively acknowledged
_LOST = LOST      # deemed lost (retransmitted or RTO-marked)


@dataclass
class EndpointStats:
    """Counters mirroring what tcptrace extracts from real captures."""

    data_packets_sent: int = 0
    retransmitted_packets: int = 0
    payload_bytes_sent: int = 0
    bytes_delivered: int = 0
    acks_sent: int = 0
    fast_retransmits: int = 0
    timeouts: int = 0
    dupacks_received: int = 0
    established_at: Optional[float] = None
    connect_started_at: Optional[float] = None

    @property
    def loss_rate(self) -> float:
        """Retransmitted / sent data packets (the paper's definition)."""
        if self.data_packets_sent == 0:
            return 0.0
        return self.retransmitted_packets / self.data_packets_sent


class TcpEndpoint:
    """One TCP connection endpoint (or MPTCP subflow endpoint)."""

    def __init__(self, sim: Simulator, host: Host, local_addr: str,
                 local_port: int, remote_addr: str, remote_port: int,
                 config: TcpConfig,
                 controller: "CongestionController",
                 delegate: Optional[TcpDelegate] = None,
                 name: str = "tcp") -> None:
        self.sim = sim
        self.host = host
        self.local_addr = local_addr
        self.local_port = local_port
        self.remote_addr = remote_addr
        self.remote_port = remote_port
        self.config = config
        self.controller = controller
        self.delegate = delegate
        self.name = name
        # Trace bus, cached: construct endpoints *after* installing a
        # real bus on the simulator.  ``trace_sf`` is the owning
        # subflow's index (None for plain single-path TCP).
        self._trace = sim.trace
        self.trace_sf: Optional[int] = None
        # Metrics registry, cached under the same contract as the bus.
        self._metrics = sim.metrics

        self.state = "closed"
        self.mss = config.mss
        self.cwnd: float = float(config.initial_window_segments * config.mss)
        self.ssthresh: float = float(config.initial_ssthresh)
        self.rto_estimator = RtoEstimator(
            initial_rto=config.initial_rto, min_rto=config.min_rto,
            max_rto=config.max_rto)

        # Sender state.  Sequence 0 is the SYN; payload starts at 1.
        self.snd_una = 0
        self.snd_nxt = 0
        self.peer_window = 64 * 1024
        # The SACK scoreboard: arena-backed column store by default,
        # the legacy object-per-segment dict under REPRO_SCALAR=1.
        self._sent = make_scoreboard(sim)
        self._pipe = 0
        self._pending_bytes = 0      # app bytes not yet segmented (plain mode)
        self._dupacks = 0
        self._in_recovery = False
        self._recover = 0
        self._recovery_epoch = 0
        self._highest_sacked = 0
        self._lost_count = 0         # scoreboard ranges currently in _LOST
        self._rto_event: Optional[Event] = None
        self._syn_event: Optional[Event] = None
        self._syn_attempts = 0
        self._syn_sent_at = 0.0
        self._close_requested = False
        self._fin_sent = False
        self._consecutive_timeouts = 0

        # Receiver state.
        self.reassembly = make_reassembly_queue(rcv_nxt=1)
        self._peer_fin_seq: Optional[int] = None
        self._peer_fin_delivered = False
        self._unacked_segments = 0
        self._delack_event: Optional[Event] = None

        self.stats = EndpointStats()

        # Application callbacks (plain mode; MPTCP uses the delegate).
        self.on_established: Optional[Callable[[], None]] = None
        self.on_receive: Optional[Callable[[int], None]] = None
        self.on_close: Optional[Callable[[], None]] = None
        self.on_failed: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    @property
    def four_tuple(self) -> Tuple[str, int, str, int]:
        return (self.local_addr, self.local_port,
                self.remote_addr, self.remote_port)

    def smoothed_rtt(self, default: float = 0.5) -> float:
        """SRTT estimate used by controllers and the MPTCP scheduler."""
        return self.rto_estimator.smoothed_rtt(default)

    @property
    def flight_bytes(self) -> int:
        """Bytes believed to be in the network (the SACK 'pipe')."""
        return self._pipe

    # ------------------------------------------------------------------
    # Opening
    # ------------------------------------------------------------------

    def connect(self) -> None:
        """Actively open: send a SYN and register with the host."""
        if self.state != "closed":
            raise RuntimeError(f"connect() in state {self.state}")
        self.host.register_endpoint(self.four_tuple, self)
        self.state = "syn_sent"
        self.stats.connect_started_at = self.sim.now
        self._send_syn()

    def accept(self, syn_packet: Packet) -> None:
        """Passively open in response to a received SYN."""
        if self.state != "closed":
            raise RuntimeError(f"accept() in state {self.state}")
        self.host.register_endpoint(self.four_tuple, self)
        self.state = "syn_rcvd"
        if self.delegate is not None:
            self.delegate.on_handshake_options(
                self, syn_packet.segment.options)
        self._send_synack()

    def _send_syn(self) -> None:
        # This runs as the syn-rto timer callback (or the initial
        # connect): the stored handle is spent, so drop it before any
        # return path -- a stale handle must never be cancelled after
        # the engine has recycled the event.
        self._syn_event = None
        if self._syn_attempts > self.config.syn_retries:
            self.state = "closed"
            return
        options = (self.delegate.syn_options(self)
                   if self.delegate is not None else None)
        segment = Segment(src_port=self.local_port, dst_port=self.remote_port,
                          seq=0, flags=Flags(syn=True),
                          window=self._advertised_window(), options=options)
        self._syn_sent_at = self.sim.now
        self._transmit(segment)
        timeout = self.config.syn_timeout * (2 ** self._syn_attempts)
        self._syn_attempts += 1
        self._syn_event = self.sim.schedule(timeout, self._send_syn,
                                            name=f"{self.name}.syn-rto")

    def _send_synack(self) -> None:
        self._syn_event = None  # spent handle; see _send_syn
        if self._syn_attempts > self.config.syn_retries:
            self.state = "closed"
            return
        options = (self.delegate.synack_options(self)
                   if self.delegate is not None else None)
        segment = Segment(src_port=self.local_port, dst_port=self.remote_port,
                          seq=0, ack=self.reassembly.rcv_nxt,
                          flags=Flags(syn=True, ack=True),
                          window=self._advertised_window(), options=options)
        self._syn_sent_at = self.sim.now
        self._transmit(segment)
        timeout = self.config.syn_timeout * (2 ** self._syn_attempts)
        self._syn_attempts += 1
        self._syn_event = self.sim.schedule(timeout, self._send_synack,
                                            name=f"{self.name}.synack-rto")

    def _establish(self) -> None:
        if self._syn_event is not None:
            self._syn_event.cancel()
            self._syn_event = None
        self.state = "established"
        self.snd_una = 1
        self.snd_nxt = 1
        self.stats.established_at = self.sim.now
        if self._syn_attempts == 1:
            self.rto_estimator.sample(self.sim.now - self._syn_sent_at)
        self.controller.attach(self)
        if self._trace.enabled:
            self._trace.emit(self.sim.now, "tcp.established",
                             subflow=self.trace_sf, name=self.name,
                             attempts=self._syn_attempts)
        if self.delegate is not None:
            self.delegate.on_established(self)
        elif self.on_established is not None:
            self.on_established()
        self._try_send()

    # ------------------------------------------------------------------
    # Application interface (plain mode)
    # ------------------------------------------------------------------

    def send(self, nbytes: int) -> None:
        """Queue ``nbytes`` of application data for transmission."""
        if nbytes < 0:
            raise ValueError("cannot send a negative byte count")
        if self.delegate is not None:
            raise RuntimeError("MPTCP subflows receive data via the scheduler")
        self._pending_bytes += nbytes
        self._try_send()

    def close(self) -> None:
        """Half-close: send FIN once all queued data is delivered."""
        self._close_requested = True
        self._try_send()

    def pump(self) -> None:
        """Attempt transmission now (MPTCP scheduler push hook)."""
        self._try_send()

    def send_ack(self) -> None:
        """Emit a bare acknowledgement now (carries current MPTCP
        options -- used to push DATA_ACK / MP_FAIL signals on an
        otherwise idle subflow)."""
        if self.state in ("established", "close_wait"):
            self._send_ack()

    # ------------------------------------------------------------------
    # Packet reception
    # ------------------------------------------------------------------

    def handle_packet(self, packet: Packet) -> None:
        segment = packet.segment
        if segment.flags.rst:
            self._teardown()
            return
        if self.state == "syn_sent":
            if segment.flags.syn and segment.flags.ack and segment.ack >= 1:
                self._establish()
                if self.delegate is not None:
                    self.delegate.on_handshake_options(self, segment.options)
                if self.state not in ("established", "close_wait"):
                    # The delegate vetoed the connection (e.g. an MPTCP
                    # join answered by a plain SYN-ACK): no third ACK,
                    # or the peer would consider it established.
                    return
                self.peer_window = segment.window
                self._send_ack()
            return
        if self.state == "syn_rcvd":
            if segment.flags.syn and not segment.flags.ack:
                self._send_synack()  # duplicate SYN: retransmit the reply
                return
            if segment.flags.ack and segment.ack >= 1:
                self._establish()
                # fall through: the packet may carry data or options
            else:
                return
        if self.state in ("closed", "failed"):
            return
        if segment.flags.ack:
            self._process_ack(segment)
        if segment.payload_len > 0 or segment.flags.fin:
            self._process_data(packet)
        if self.delegate is not None:
            self.delegate.on_segment(self, segment)
        self._try_send()

    # -- ACK processing --------------------------------------------------

    def _process_ack(self, segment: Segment) -> None:
        self.peer_window = segment.window
        if self.config.use_sack and segment.sack_blocks:
            self._process_sack(segment.sack_blocks)
        if segment.ack > self.snd_una:
            self._advance_una(segment.ack)
        elif (segment.ack == self.snd_una and self.snd_nxt > self.snd_una
              and segment.is_pure_ack):
            self._on_dupack()

    def _process_sack(self, blocks: Tuple[Tuple[int, int], ...]) -> None:
        for start, end in blocks:
            if end > self._highest_sacked:
                self._highest_sacked = end
            self._pipe -= self._sent.sack(start, end)
        if self._in_recovery:
            self._mark_sack_losses()

    def _mark_sack_losses(self) -> None:
        """RFC 6675-style loss inference: a still-unSACKed segment with
        at least DupThresh MSS of SACKed data above it is lost.

        Marking moves the segment out of the pipe; the (pipe < cwnd)
        send loop then paces its retransmission, instead of bursting
        every hole at once into an already-overflowing buffer.
        """
        threshold = self._highest_sacked - \
            self.config.dupack_threshold * self.mss
        count, freed = self._sent.mark_losses(threshold,
                                              self._recovery_epoch)
        self._lost_count += count
        self._pipe -= freed

    def _advance_una(self, ack: int) -> None:
        self._consecutive_timeouts = 0  # forward progress
        newly_acked, rtt_sent_at, flight_freed, lost_retired = \
            self._sent.advance_una(ack)
        self._pipe -= flight_freed
        self._lost_count -= lost_retired
        self.snd_una = ack
        if rtt_sent_at is not None:
            self.rto_estimator.sample(self.sim.now - rtt_sent_at)
        self._restart_rto_timer()

        if self._in_recovery:
            if ack >= self._recover:
                # Full ACK: leave recovery at ssthresh.
                self._in_recovery = False
                self._dupacks = 0
                self.cwnd = max(self.ssthresh, float(self.mss))
                if self._trace.enabled:
                    self._trace.emit(
                        self.sim.now, "cc.cwnd", subflow=self.trace_sf,
                        name=self.name, cwnd=self.cwnd,
                        ssthresh=self.ssthresh, reason="recovery_exit")
            elif self.config.use_sack:
                # Partial ACK with SACK: the scoreboard knows the holes;
                # retransmit the front-most one and let pipe pace the rest.
                self._retransmit_front()
            else:
                # Partial ACK (New Reno): retransmit the next hole,
                # deflate by the amount acked, stay in recovery.
                self.cwnd = max(self.cwnd - newly_acked + self.mss,
                                float(self.mss))
                self._retransmit_front()
        else:
            self._dupacks = 0
            self.controller.on_ack(self, newly_acked)

    def _on_dupack(self) -> None:
        self._dupacks += 1
        self.stats.dupacks_received += 1
        if self._in_recovery:
            if not self.config.use_sack:
                # Classic New Reno window inflation.  With SACK the
                # scoreboard already removes SACKed bytes from the
                # pipe, so inflating as well would double-count.
                self.cwnd += self.mss
        elif self._dupacks >= self.config.dupack_threshold:
            self._enter_recovery()

    def _flight_size(self) -> float:
        """RFC 5681 FlightSize: data outstanding, bounded by cwnd."""
        outstanding = self.snd_nxt - self.snd_una
        return max(min(float(outstanding), self.cwnd), float(self.mss))

    def _enter_recovery(self) -> None:
        self._in_recovery = True
        self._recovery_epoch += 1
        self._recover = self.snd_nxt
        self.ssthresh = max(self._flight_size() / 2.0, 2.0 * self.mss)
        self.controller.on_loss(self)
        self.stats.fast_retransmits += 1
        if self._metrics.enabled:
            self._metrics.counter("tcp.fast_retransmit").inc()
        if self._trace.enabled:
            self._trace.emit(self.sim.now, "tcp.fast_retransmit",
                             subflow=self.trace_sf, name=self.name,
                             dupacks=self._dupacks,
                             recover=self._recover)
        if self.config.use_sack:
            # RFC 6675-style: hold cwnd at ssthresh; transmission is
            # paced by the pipe, which SACK arrivals deflate.
            self.cwnd = self.ssthresh
            self._mark_sack_losses()
        else:
            self.cwnd = self.ssthresh + \
                self.config.dupack_threshold * self.mss
        if self._trace.enabled:
            self._trace.emit(self.sim.now, "cc.cwnd", subflow=self.trace_sf,
                             name=self.name, cwnd=self.cwnd,
                             ssthresh=self.ssthresh,
                             reason="fast_retransmit")
        self._retransmit_front()

    def _retransmit_front(self) -> None:
        """Deem lost and retransmit the first unacknowledged segment."""
        sent = self._sent.front_unsacked()
        if sent is None:
            return
        if sent.rexmit_epoch == self._recovery_epoch:
            return  # already retransmitted this episode
        self._retransmit(sent)

    def _find_lost(self):
        """Next RTO-marked loss not yet resent in this epoch."""
        if not self._lost_count:
            return None  # O(1) common case: nothing marked lost
        return self._sent.find_lost(self._recovery_epoch)

    def _retransmit(self, sent) -> None:
        if sent.state == _FLIGHT:
            self._pipe -= sent.seq_space
        elif sent.state == _LOST:
            self._lost_count -= 1
        sent.mark_retransmitted(self._recovery_epoch)
        self._pipe += sent.seq_space
        self.stats.retransmitted_packets += 1
        self._send_data_segment(sent, retransmission=True)
        self._arm_rto_timer()

    # -- Data reception ---------------------------------------------------

    def _process_data(self, packet: Packet) -> None:
        segment = packet.segment
        if segment.payload_len > 0:
            payload_start = segment.seq
            payload_end = segment.seq + segment.payload_len
            free = self.config.rcv_buffer - self.reassembly.buffered_bytes
            if payload_end - self.reassembly.rcv_nxt <= free:
                meta = (self.sim.now, segment.options)
                self.reassembly.offer(payload_start, payload_end, meta,
                                      on_in_order=self._deliver)
        if segment.flags.fin:
            self._peer_fin_seq = segment.seq + segment.payload_len
        if (self._peer_fin_seq is not None
                and self.reassembly.rcv_nxt == self._peer_fin_seq
                and not self._peer_fin_delivered):
            self._peer_fin_delivered = True
            self.reassembly.rcv_nxt += 1
            if self.state == "established":
                self.state = "close_wait"
            if self.delegate is not None:
                self.delegate.on_peer_fin(self)
            elif self.on_close is not None:
                self.on_close()
        self._ack_received_data(segment)

    def _ack_received_data(self, segment: Segment) -> None:
        """Acknowledge received data, coalescing if delayed ACKs are on.

        Per RFC 5681, an ACK goes out immediately for the second
        unacknowledged segment, for any out-of-order arrival (to feed
        fast retransmit), and for FINs; otherwise a short timer runs.
        """
        if not self.config.delayed_ack:
            self._send_ack()
            return
        out_of_order = (self.reassembly.buffered_bytes > 0
                        or segment.seq + segment.payload_len
                        <= self.reassembly.rcv_nxt - segment.payload_len)
        self._unacked_segments += 1
        if (self._unacked_segments >= 2 or out_of_order
                or segment.flags.fin):
            self._send_ack()
            return
        if self._delack_event is None:
            self._delack_event = self.sim.schedule(
                self.config.delack_timeout, self._on_delack_timer,
                name=f"{self.name}.delack")

    def _on_delack_timer(self) -> None:
        self._delack_event = None
        if self._unacked_segments > 0:
            self._send_ack()

    def _deliver(self, start: int, end: int, meta) -> None:
        self.stats.bytes_delivered += end - start
        if self.delegate is not None:
            self.delegate.on_data(self, start, end, meta)
        elif self.on_receive is not None:
            self.on_receive(end - start)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------

    def _try_send(self) -> None:
        if self.state not in ("established", "close_wait"):
            return
        if getattr(self, "_in_try_send", False):
            return  # re-entered via scheduler pump: outer loop continues
        self._in_try_send = True
        try:
            self._try_send_locked()
        finally:
            self._in_try_send = False

    def _try_send_locked(self) -> None:
        # Retransmit known-lost segments first, paced by the window:
        # SACK-inferred holes during recovery, and the post-timeout
        # go-back-N resend (paced by slow start) after an RTO.
        while self._pipe < int(self.cwnd):
            lost = self._find_lost()
            if lost is None:
                break
            self._retransmit(lost)
        # Then new data while congestion window space remains.  Like the
        # kernel, a full MSS may be sent whenever pipe < cwnd (the last
        # segment may overshoot the window by a fraction of an MSS).
        while self._pipe < int(self.cwnd):
            chunk = self._next_chunk(self.mss)
            if chunk is None:
                break
            payload_len, dsn = chunk
            sent = self._sent.append(self.snd_nxt, payload_len,
                                     payload_len, fin=False, dsn=dsn,
                                     sent_at=self.sim.now)
            self.snd_nxt += payload_len
            self._pipe += payload_len
            self.controller.on_sent(self, payload_len)
            self._send_data_segment(sent, retransmission=False)
            self._arm_rto_timer()
        self._maybe_send_fin()

    def _next_chunk(self, max_bytes: int
                    ) -> Optional[Tuple[int, Optional[int]]]:
        """Pick the next new-data chunk: (payload_len, dsn or None)."""
        if max_bytes <= 0:
            return None
        if self.delegate is not None:
            pulled = self.delegate.pull_data(self, max_bytes)
            if pulled is None:
                return None
            dsn, length = pulled
            return length, dsn
        if self._pending_bytes <= 0:
            return None
        window_limit = self.snd_una + self.peer_window - self.snd_nxt
        if window_limit <= 0:
            return None
        length = min(max_bytes, self._pending_bytes, window_limit)
        self._pending_bytes -= length
        return length, None

    def _maybe_send_fin(self) -> None:
        if (not self._close_requested or self._fin_sent
                or self._pending_bytes > 0):
            return
        if (self.delegate is not None
                and self.delegate.has_pending_data(self)):
            return  # the connection may still schedule data our way
        self._fin_sent = True
        sent = self._sent.append(self.snd_nxt, 1, 0, fin=True, dsn=None,
                                 sent_at=self.sim.now)
        self.snd_nxt += 1
        self._pipe += 1
        self._send_data_segment(sent, retransmission=False)
        self._arm_rto_timer()

    def _send_data_segment(self, sent, retransmission: bool) -> None:
        options = None
        if self.delegate is not None and sent.dsn is not None:
            options = self.delegate.data_options(
                self, sent.seq, sent.dsn, sent.payload_len)
        segment = Segment(
            src_port=self.local_port, dst_port=self.remote_port,
            seq=sent.seq, ack=self.reassembly.rcv_nxt,
            flags=_FLAGS_ACK_FIN if sent.fin else _FLAGS_ACK,
            payload_len=sent.payload_len,
            window=self._advertised_window(),
            options=options)
        if sent.payload_len > 0:
            self.stats.data_packets_sent += 1
            if not retransmission:
                self.stats.payload_bytes_sent += sent.payload_len
        self._transmit(segment)

    def _send_ack(self) -> None:
        self._unacked_segments = 0
        if self._delack_event is not None:
            self._delack_event.cancel()
            self._delack_event = None
        options = (self.delegate.ack_options(self)
                   if self.delegate is not None else None)
        sack_blocks = (self.reassembly.sack_blocks()
                       if self.config.use_sack else ())
        segment = Segment(
            src_port=self.local_port, dst_port=self.remote_port,
            seq=self.snd_nxt, ack=self.reassembly.rcv_nxt,
            flags=_FLAGS_ACK,
            window=self._advertised_window(),
            sack_blocks=sack_blocks, options=options)
        self.stats.acks_sent += 1
        self._transmit(segment)

    def _advertised_window(self) -> int:
        if self.delegate is not None:
            return self.delegate.receive_window(self)
        return max(self.config.rcv_buffer - self.reassembly.buffered_bytes, 0)

    def _transmit(self, segment: Segment) -> None:
        packet = Packet(self.local_addr, self.remote_addr, segment)
        self.host.send(packet)

    # ------------------------------------------------------------------
    # Retransmission timer
    # ------------------------------------------------------------------

    def _arm_rto_timer(self) -> None:
        if self._rto_event is None and self.snd_una < self.snd_nxt:
            timeout = self.rto_estimator.rto
            self._rto_event = self.sim.schedule(
                timeout, self._on_rto,
                name=f"{self.name}.rto")
            if self._trace.enabled:
                self._trace.emit(self.sim.now, "rto.arm",
                                 subflow=self.trace_sf, name=self.name,
                                 timeout=timeout)

    def _restart_rto_timer(self) -> None:
        # Runs on every ACK that advances snd_una, so reuse the pending
        # timer in place instead of cancel+schedule: reschedule()
        # consumes one sequence number exactly like schedule() would, so
        # event ordering (and results) are unchanged, but the heap no
        # longer accumulates a cancelled tombstone per ACK.
        event = self._rto_event
        if self.snd_una < self.snd_nxt:
            if event is not None:
                self.sim.reschedule(event, self.rto_estimator.rto)
            else:
                self._arm_rto_timer()
        elif event is not None:
            event.cancel()
            self._rto_event = None

    def _on_rto(self) -> None:
        self._rto_event = None
        if self.snd_una >= self.snd_nxt:
            return
        self.stats.timeouts += 1
        self._consecutive_timeouts += 1
        if self._consecutive_timeouts > self.config.max_data_retries:
            self._fail()
            return
        self.ssthresh = max(self._flight_size() / 2.0, 2.0 * self.mss)
        self.cwnd = float(self.mss)
        self._in_recovery = False
        self._recovery_epoch += 1
        self._dupacks = 0
        flight_freed, total = self._sent.mark_all_lost()
        self._pipe -= flight_freed
        self._lost_count = total
        self.controller.on_loss(self)
        if self._metrics.enabled:
            metrics = self._metrics
            metrics.counter("tcp.rto.fired").inc()
            # The expired timeout is how long the sender sat stalled
            # waiting for it: the per-run stall distribution.
            metrics.histogram("tcp.rto.stall_s").observe(
                self.rto_estimator.rto)
        self.rto_estimator.backoff()
        if self._trace.enabled:
            self._trace.emit(self.sim.now, "rto.fire",
                             subflow=self.trace_sf, name=self.name,
                             consecutive=self._consecutive_timeouts,
                             backoff=self.rto_estimator.backoff_count,
                             next_rto=self.rto_estimator.rto)
            self._trace.emit(self.sim.now, "cc.cwnd", subflow=self.trace_sf,
                             name=self.name, cwnd=self.cwnd,
                             ssthresh=self.ssthresh, reason="rto")
        self._retransmit_front()
        self._arm_rto_timer()
        if self.delegate is not None:
            # Let the MPTCP connection reinject this subflow's
            # outstanding data on the other paths.
            self.delegate.on_rto(self)

    def fail(self) -> None:
        """Declare the connection dead (link-down signal or repeated
        silent timeouts): stop timers and notify the owner."""
        if self.state in ("failed", "closed"):
            return
        self.state = "failed"
        if self._trace.enabled:
            self._trace.emit(self.sim.now, "tcp.failed",
                             subflow=self.trace_sf, name=self.name,
                             timeouts=self.stats.timeouts)
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None
        if self._syn_event is not None:
            self._syn_event.cancel()
            self._syn_event = None
        self.controller.detach(self)
        if self.delegate is not None:
            self.delegate.on_failed(self)
        elif self.on_failed is not None:
            self.on_failed()

    _fail = fail  # internal alias

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def _teardown(self) -> None:
        self.state = "closed"
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None
        if self._syn_event is not None:
            self._syn_event.cancel()
            self._syn_event = None
        self.controller.detach(self)

    def deregister(self) -> None:
        """Remove this endpoint from its host's demultiplexer."""
        self._teardown()
        self.host.unregister_endpoint(self.four_tuple)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TcpEndpoint {self.name} {self.state} "
                f"cwnd={self.cwnd / self.mss:.1f}p pipe={self._pipe}B>")


class TcpListener:
    """A passive open: accepts SYNs on a port and builds endpoints.

    ``acceptor(packet, host)`` is called for each SYN that does not
    match an existing endpoint; it decides whether (and how) to create
    the server-side endpoint -- plain TCP for the HTTP baseline, or an
    MPTCP connection/subflow for multipath runs.
    """

    def __init__(self, acceptor: Callable[[Packet, Host], None]) -> None:
        self.acceptor = acceptor
        self.syns_received = 0

    def handle_syn(self, packet: Packet, host: Host) -> None:
        self.syns_received += 1
        self.acceptor(packet, host)

"""Single-path TCP: the per-subflow transport the paper builds on.

Section 2.2.2: "each MPTCP subflow behaves as a legacy New Reno TCP
flow except for the congestion control algorithms".  This subpackage
implements that legacy flow:

* :mod:`repro.tcp.segment` -- the TCP segment (header fields, flags,
  SACK blocks, and a slot for MPTCP options).
* :mod:`repro.tcp.rto` -- the RFC 6298 retransmission-timeout
  estimator with Karn's algorithm applied by the endpoint.
* :mod:`repro.tcp.reassembly` -- receiver-side sequence-space
  reassembly (out-of-order queue, SACK block generation).
* :mod:`repro.tcp.endpoint` -- the endpoint state machine: the 3-way
  handshake, slow start (IW = 10, configurable initial ssthresh),
  congestion avoidance via a pluggable congestion controller, fast
  retransmit / New Reno fast recovery with SACK-based hole selection,
  RTO with exponential backoff, and FIN teardown.

The same endpoint class serves standalone single-path connections and
MPTCP subflows; MPTCP behaviour is injected through a small delegate
interface (:class:`repro.tcp.endpoint.TcpDelegate`).
"""

from repro.tcp.segment import Flags, Segment
from repro.tcp.rto import RtoEstimator
from repro.tcp.reassembly import (
    ArrayReassemblyQueue,
    ReassemblyQueue,
    make_reassembly_queue,
)
from repro.tcp.endpoint import TcpConfig, TcpEndpoint, TcpListener

__all__ = [
    "Flags",
    "Segment",
    "RtoEstimator",
    "ArrayReassemblyQueue",
    "ReassemblyQueue",
    "make_reassembly_queue",
    "TcpConfig",
    "TcpEndpoint",
    "TcpListener",
]

"""TCP segments.

Segments are value objects: the sender constructs one per transmission
(retransmissions construct fresh segments with the same sequence
numbers, which lets the trace layer detect them the way tcptrace does).
Sequence numbers are absolute byte offsets starting at 0 per direction;
SYN and FIN each consume one sequence number, as in real TCP.

MPTCP signalling (MP_CAPABLE, MP_JOIN, ADD_ADDR, DSS mappings and
DATA_ACKs) rides in :attr:`Segment.options`, typed in
:mod:`repro.core.options`; plain TCP leaves it ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.options import MptcpOptions


@dataclass(frozen=True, slots=True)
class Flags:
    """TCP header flags (the subset the simulator uses)."""

    syn: bool = False
    ack: bool = False
    fin: bool = False
    rst: bool = False

    def __str__(self) -> str:
        names = [name for name in ("syn", "ack", "fin", "rst")
                 if getattr(self, name)]
        return "|".join(names) or "none"


#: A half-open byte range ``[start, end)`` reported in a SACK option.
SackBlock = Tuple[int, int]


@dataclass(frozen=True, slots=True)
class Segment:
    """One TCP segment.

    Attributes:
        src_port / dst_port: transport ports.
        seq: sequence number of the first payload byte (or of the
            SYN/FIN itself for bare control segments).
        ack: cumulative acknowledgement (valid when ``flags.ack``).
        flags: header flags.
        payload_len: bytes of application payload carried.
        window: advertised receive window in bytes.
        sack_blocks: up to three SACK ranges, most recent first.
        options: MPTCP option block, or ``None`` for plain TCP.
    """

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: Flags = field(default_factory=Flags)
    payload_len: int = 0
    window: int = 65535
    sack_blocks: Tuple[SackBlock, ...] = ()
    options: Optional["MptcpOptions"] = None

    @property
    def seq_space(self) -> int:
        """Sequence space consumed: payload plus one for SYN and FIN."""
        return self.payload_len + int(self.flags.syn) + int(self.flags.fin)

    @property
    def end_seq(self) -> int:
        """Sequence number just past this segment."""
        return self.seq + self.seq_space

    @property
    def header_length(self) -> int:
        """TCP header bytes: base 20, SACK blocks, MPTCP options,
        rounded up to a 4-byte boundary as on the wire."""
        length = 20
        if self.sack_blocks:
            length += 2 + 8 * len(self.sack_blocks)
        if self.options is not None:
            length += self.options.wire_length()
        return (length + 3) // 4 * 4

    @property
    def is_pure_ack(self) -> bool:
        """True for a data-less, control-less acknowledgement."""
        return (self.flags.ack and self.payload_len == 0
                and not self.flags.syn and not self.flags.fin
                and not self.flags.rst)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Segment {self.src_port}->{self.dst_port} "
                f"[{self.flags}] seq={self.seq} ack={self.ack} "
                f"len={self.payload_len}>")

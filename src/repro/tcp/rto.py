"""RFC 6298 retransmission-timeout estimation.

Standard SRTT/RTTVAR smoothing with the Linux lower clamp of 200 ms
(``TCP_RTO_MIN``), which matters on the simulated WiFi path whose RTTs
sit far below the clamp.  Karn's algorithm (never sample a
retransmitted segment) is enforced by the caller, which only feeds
samples for segments sent exactly once.
"""

from __future__ import annotations

from typing import Optional


class RtoEstimator:
    """Smoothed RTT state and the derived retransmission timeout."""

    #: RFC 6298 constants.
    ALPHA = 1.0 / 8.0
    BETA = 1.0 / 4.0
    K = 4.0

    def __init__(self, initial_rto: float = 1.0, min_rto: float = 0.2,
                 max_rto: float = 60.0) -> None:
        self.initial_rto = initial_rto
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self._rto = initial_rto
        self._backoff = 1
        self.samples = 0

    @property
    def rto(self) -> float:
        """Current timeout, including any exponential backoff."""
        return min(self._rto * self._backoff, self.max_rto)

    @property
    def backoff_count(self) -> int:
        """Current exponential-backoff multiplier (1 = no backoff);
        surfaced in ``rto.fire`` trace events."""
        return self._backoff

    def sample(self, rtt: float) -> None:
        """Incorporate one RTT measurement (seconds)."""
        if rtt < 0:
            raise ValueError(f"negative RTT sample {rtt!r}")
        self.samples += 1
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            assert self.rttvar is not None
            self.rttvar = ((1 - self.BETA) * self.rttvar
                           + self.BETA * abs(self.srtt - rtt))
            self.srtt = (1 - self.ALPHA) * self.srtt + self.ALPHA * rtt
        self._rto = max(self.min_rto,
                        min(self.srtt + self.K * self.rttvar, self.max_rto))
        self._backoff = 1

    def backoff(self) -> None:
        """Double the timeout after an expiry (capped at ``max_rto``)."""
        if self._rto * self._backoff < self.max_rto:
            self._backoff *= 2

    def smoothed_rtt(self, default: float = 0.5) -> float:
        """SRTT, or ``default`` before the first sample."""
        return self.srtt if self.srtt is not None else default

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        srtt = f"{self.srtt * 1000:.1f}ms" if self.srtt is not None else "?"
        return f"<RtoEstimator srtt={srtt} rto={self.rto:.3f}s>"

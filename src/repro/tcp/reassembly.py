"""Receiver-side sequence-space reassembly.

A :class:`ReassemblyQueue` tracks which byte ranges past the cumulative
point have arrived, advances the cumulative point when holes fill,
generates SACK blocks, and reports its occupancy (needed to advertise
a receive window).  It stores *ranges with attached payload metadata*,
not actual bytes -- the simulator never materializes file contents.

The same structure serves plain TCP receivers (subflow sequence space)
and, in :mod:`repro.core.receive_buffer`, the MPTCP connection-level
data sequence space where out-of-order delay is measured.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, List, Optional, Tuple

try:  # pragma: no cover - exercised implicitly everywhere
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

from repro.sim.fastpath import scalar_mode


class ReassemblyQueue:
    """Ordered set of disjoint ``[start, end)`` ranges above ``rcv_nxt``.

    ``on_in_order(start, end, meta)`` fires for every stored range the
    moment it becomes contiguous with the cumulative point, in sequence
    order.  ``meta`` is whatever object was attached at insertion (an
    MPTCP DSS mapping, an arrival timestamp, ...).
    """

    def __init__(self, rcv_nxt: int = 0) -> None:
        self.rcv_nxt = rcv_nxt
        # Parallel sorted lists: range starts, range ends, attached metadata.
        self._starts: List[int] = []
        self._ends: List[int] = []
        self._metas: List[Any] = []
        self._buffered = 0  # running sum of stored range lengths
        self.duplicate_bytes = 0

    # ------------------------------------------------------------------
    # Insertion and in-order delivery
    # ------------------------------------------------------------------

    def offer(self, start: int, end: int, meta: Any = None,
              on_in_order: Optional[Callable[[int, int, Any], None]] = None,
              ) -> int:
        """Insert a received range; returns bytes newly accepted.

        Overlap with already-received data is trimmed (and counted in
        :attr:`duplicate_bytes`).  Delivery callbacks fire for every
        range that becomes in-order, including this one.
        """
        if end <= start:
            return 0
        accepted = 0
        if start < self.rcv_nxt:
            self.duplicate_bytes += min(end, self.rcv_nxt) - start
            start = self.rcv_nxt
            if start >= end:
                return 0
        if start == self.rcv_nxt and not self._starts:
            # In-order fast path (the common case on a healthy link):
            # the range would be inserted and immediately popped by
            # _advance, so deliver it directly.
            self.rcv_nxt = end
            if on_in_order is not None:
                on_in_order(start, end, meta)
            return end - start
        # Trim against stored ranges; split into the uncovered pieces.
        pieces = self._uncovered(start, end)
        self.duplicate_bytes += (end - start) - sum(e - s for s, e in pieces)
        for piece_start, piece_end in pieces:
            index = bisect.bisect_left(self._starts, piece_start)
            self._starts.insert(index, piece_start)
            self._ends.insert(index, piece_end)
            self._metas.insert(index, meta)
            accepted += piece_end - piece_start
            self._buffered += piece_end - piece_start
        if accepted:
            self._advance(on_in_order)
        return accepted

    def _uncovered(self, start: int, end: int) -> List[Tuple[int, int]]:
        """Sub-ranges of [start, end) not already stored."""
        pieces: List[Tuple[int, int]] = []
        cursor = start
        index = bisect.bisect_right(self._ends, start)
        while cursor < end and index < len(self._starts):
            range_start = self._starts[index]
            range_end = self._ends[index]
            if range_start >= end:
                break
            if range_start > cursor:
                pieces.append((cursor, min(range_start, end)))
            cursor = max(cursor, range_end)
            index += 1
        if cursor < end:
            pieces.append((cursor, end))
        return pieces

    def _advance(self,
                 on_in_order: Optional[Callable[[int, int, Any], None]],
                 ) -> None:
        while self._starts and self._starts[0] <= self.rcv_nxt:
            start = self._starts.pop(0)
            end = self._ends.pop(0)
            meta = self._metas.pop(0)
            self._buffered -= end - start
            if end <= self.rcv_nxt:
                continue  # fully duplicate range (possible after trims)
            delivered_start = max(start, self.rcv_nxt)
            self.rcv_nxt = end
            if on_in_order is not None:
                on_in_order(delivered_start, end, meta)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def buffered_bytes(self) -> int:
        """Bytes held above the cumulative point (out-of-order data).

        O(1): stored ranges are disjoint, so a running sum maintained
        on insert/pop equals the sum of stored lengths.  This is read
        on every received data packet (window advertisement).
        """
        return self._buffered

    @property
    def pending_ranges(self) -> List[Tuple[int, int]]:
        """The stored out-of-order ranges, ascending (for tests)."""
        return list(zip(self._starts, self._ends))

    def sack_blocks(self, limit: int = 3) -> Tuple[Tuple[int, int], ...]:
        """Coalesced SACK blocks, highest ranges first, at most ``limit``."""
        if not self._starts:
            return ()
        merged: List[Tuple[int, int]] = []
        for start, end in zip(self._starts, self._ends):
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        merged.reverse()  # most recently useful (highest) first
        return tuple(merged[:limit])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ReassemblyQueue rcv_nxt={self.rcv_nxt} "
                f"ooo={self.buffered_bytes}B>")


class ArrayReassemblyQueue(ReassemblyQueue):
    """Array-backed reassembly: the vectorized-core receive path.

    Same contract as :class:`ReassemblyQueue`, different storage: the
    range starts/ends live in preallocated numpy int64 columns with a
    contiguous ``[head, tail)`` live region (metadata stays in a
    parallel Python list -- it holds arbitrary objects).  The win is in
    ``_advance``: when an in-order burst lands, the length of the
    contiguous run is found with *one* vectorized comparison (stored
    ranges are disjoint, so a range joins the run exactly when its
    start equals its predecessor's end) and the whole run retires by a
    head-cursor move instead of ``list.pop(0)`` per range.

    Delivery callbacks still fire per range with the cumulative point,
    occupancy and SACK state updated *before* each call -- callbacks
    may send packets that read the advertised window mid-drain, and
    those reads must match the scalar implementation byte for byte.
    """

    _INITIAL_CAPACITY = 64

    def __init__(self, rcv_nxt: int = 0) -> None:
        self.rcv_nxt = rcv_nxt
        self._capacity = self._INITIAL_CAPACITY
        self._astarts = _np.zeros(self._capacity, dtype=_np.int64)
        self._aends = _np.zeros(self._capacity, dtype=_np.int64)
        self._metas: List[Any] = []  # parallel to columns [0, tail)
        self._head = 0
        self._tail = 0
        self._buffered = 0
        self.duplicate_bytes = 0

    # -- storage management ---------------------------------------------

    def _make_room(self) -> None:
        """Recycle retired head slots; double only when truly full."""
        head, tail = self._head, self._tail
        live = tail - head
        if head > 0 and live <= self._capacity // 2:
            self._astarts[:live] = self._astarts[head:tail]
            self._aends[:live] = self._aends[head:tail]
        else:
            self._capacity = max(self._capacity * 2,
                                 self._INITIAL_CAPACITY)
            for name in ("_astarts", "_aends"):
                old = getattr(self, name)
                column = _np.zeros(self._capacity, dtype=_np.int64)
                column[:live] = old[head:tail]
                setattr(self, name, column)
        if head:
            del self._metas[:head]
        self._head = 0
        self._tail = live

    def _insert(self, piece_start: int, piece_end: int,
                meta: Any) -> None:
        if self._tail == self._capacity:
            self._make_room()
        head, tail = self._head, self._tail
        index = head + int(_np.searchsorted(
            self._astarts[head:tail], piece_start, side="left"))
        if index < tail:
            self._astarts[index + 1:tail + 1] = self._astarts[index:tail]
            self._aends[index + 1:tail + 1] = self._aends[index:tail]
        self._astarts[index] = piece_start
        self._aends[index] = piece_end
        self._metas.insert(index, meta)
        self._tail = tail + 1

    # -- insertion and in-order delivery --------------------------------

    def offer(self, start: int, end: int, meta: Any = None,
              on_in_order: Optional[Callable[[int, int, Any], None]] = None,
              ) -> int:
        if end <= start:
            return 0
        accepted = 0
        if start < self.rcv_nxt:
            self.duplicate_bytes += min(end, self.rcv_nxt) - start
            start = self.rcv_nxt
            if start >= end:
                return 0
        if start == self.rcv_nxt and self._head == self._tail:
            # In-order fast path, identical to the scalar queue.
            self.rcv_nxt = end
            if on_in_order is not None:
                on_in_order(start, end, meta)
            return end - start
        pieces = self._uncovered(start, end)
        self.duplicate_bytes += (end - start) - sum(e - s
                                                    for s, e in pieces)
        for piece_start, piece_end in pieces:
            self._insert(piece_start, piece_end, meta)
            accepted += piece_end - piece_start
            self._buffered += piece_end - piece_start
        if accepted:
            self._advance(on_in_order)
        return accepted

    def _uncovered(self, start: int, end: int) -> List[Tuple[int, int]]:
        pieces: List[Tuple[int, int]] = []
        cursor = start
        head, tail = self._head, self._tail
        starts, ends = self._astarts, self._aends
        index = head + int(_np.searchsorted(ends[head:tail], start,
                                            side="right"))
        while cursor < end and index < tail:
            range_start = int(starts[index])
            range_end = int(ends[index])
            if range_start >= end:
                break
            if range_start > cursor:
                pieces.append((cursor, min(range_start, end)))
            cursor = max(cursor, range_end)
            index += 1
        if cursor < end:
            pieces.append((cursor, end))
        return pieces

    def _advance(self,
                 on_in_order: Optional[Callable[[int, int, Any], None]],
                 ) -> None:
        head, tail = self._head, self._tail
        if head == tail or self._astarts[head] > self.rcv_nxt:
            return
        starts, ends = self._astarts, self._aends
        # One array scan finds the whole contiguous run: ranges are
        # disjoint, so each joins iff its start meets the previous end.
        chain = starts[head + 1:tail] == ends[head:tail - 1]
        broken = _np.nonzero(~chain)[0]
        run = (int(broken[0]) + 1) if broken.size else (tail - head)
        run_starts = starts[head:head + run].tolist()
        run_ends = ends[head:head + run].tolist()
        for offset in range(run):
            if self._head != head + offset or self._astarts is not starts:
                # A delivery callback re-entered offer() and drained /
                # reshaped the queue under us: resume from live state.
                self._advance_slow(on_in_order)
                return
            start = run_starts[offset]
            end = run_ends[offset]
            meta = self._metas[head + offset]
            self._head = head + offset + 1
            self._buffered -= end - start
            if end <= self.rcv_nxt:
                continue  # fully duplicate range (possible after trims)
            delivered_start = max(start, self.rcv_nxt)
            self.rcv_nxt = end
            if on_in_order is not None:
                on_in_order(delivered_start, end, meta)
        if self._head == self._tail:
            if self._head:
                del self._metas[:]
                self._head = self._tail = 0
        elif self._astarts[self._head] <= self.rcv_nxt:
            # Re-entrant offers (or exotic trims) left more in-order
            # data at the head: keep draining.
            self._advance(on_in_order)

    def _advance_slow(self,
                      on_in_order: Optional[Callable[[int, int, Any],
                                                     None]],
                      ) -> None:
        """Per-range drain re-reading live state: the re-entrancy path."""
        while (self._head < self._tail
               and self._astarts[self._head] <= self.rcv_nxt):
            head = self._head
            start = int(self._astarts[head])
            end = int(self._aends[head])
            meta = self._metas[head]
            self._head = head + 1
            self._buffered -= end - start
            if end <= self.rcv_nxt:
                continue
            delivered_start = max(start, self.rcv_nxt)
            self.rcv_nxt = end
            if on_in_order is not None:
                on_in_order(delivered_start, end, meta)
        if self._head == self._tail and self._head:
            del self._metas[:]
            self._head = self._tail = 0

    # -- introspection ---------------------------------------------------

    @property
    def pending_ranges(self) -> List[Tuple[int, int]]:
        head, tail = self._head, self._tail
        return list(zip(self._astarts[head:tail].tolist(),
                        self._aends[head:tail].tolist()))

    def sack_blocks(self, limit: int = 3) -> Tuple[Tuple[int, int], ...]:
        head, tail = self._head, self._tail
        if head == tail:
            return ()
        merged: List[Tuple[int, int]] = []
        for start, end in zip(self._astarts[head:tail].tolist(),
                              self._aends[head:tail].tolist()):
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        merged.reverse()  # most recently useful (highest) first
        return tuple(merged[:limit])


def make_reassembly_queue(rcv_nxt: int = 0) -> ReassemblyQueue:
    """Hot-path factory honouring the ``REPRO_SCALAR`` escape hatch."""
    if _np is None or scalar_mode():
        return ReassemblyQueue(rcv_nxt)
    return ArrayReassemblyQueue(rcv_nxt)

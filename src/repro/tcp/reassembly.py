"""Receiver-side sequence-space reassembly.

A :class:`ReassemblyQueue` tracks which byte ranges past the cumulative
point have arrived, advances the cumulative point when holes fill,
generates SACK blocks, and reports its occupancy (needed to advertise
a receive window).  It stores *ranges with attached payload metadata*,
not actual bytes -- the simulator never materializes file contents.

The same structure serves plain TCP receivers (subflow sequence space)
and, in :mod:`repro.core.receive_buffer`, the MPTCP connection-level
data sequence space where out-of-order delay is measured.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, List, Optional, Tuple


class ReassemblyQueue:
    """Ordered set of disjoint ``[start, end)`` ranges above ``rcv_nxt``.

    ``on_in_order(start, end, meta)`` fires for every stored range the
    moment it becomes contiguous with the cumulative point, in sequence
    order.  ``meta`` is whatever object was attached at insertion (an
    MPTCP DSS mapping, an arrival timestamp, ...).
    """

    def __init__(self, rcv_nxt: int = 0) -> None:
        self.rcv_nxt = rcv_nxt
        # Parallel sorted lists: range starts, range ends, attached metadata.
        self._starts: List[int] = []
        self._ends: List[int] = []
        self._metas: List[Any] = []
        self._buffered = 0  # running sum of stored range lengths
        self.duplicate_bytes = 0

    # ------------------------------------------------------------------
    # Insertion and in-order delivery
    # ------------------------------------------------------------------

    def offer(self, start: int, end: int, meta: Any = None,
              on_in_order: Optional[Callable[[int, int, Any], None]] = None,
              ) -> int:
        """Insert a received range; returns bytes newly accepted.

        Overlap with already-received data is trimmed (and counted in
        :attr:`duplicate_bytes`).  Delivery callbacks fire for every
        range that becomes in-order, including this one.
        """
        if end <= start:
            return 0
        accepted = 0
        if start < self.rcv_nxt:
            self.duplicate_bytes += min(end, self.rcv_nxt) - start
            start = self.rcv_nxt
            if start >= end:
                return 0
        if start == self.rcv_nxt and not self._starts:
            # In-order fast path (the common case on a healthy link):
            # the range would be inserted and immediately popped by
            # _advance, so deliver it directly.
            self.rcv_nxt = end
            if on_in_order is not None:
                on_in_order(start, end, meta)
            return end - start
        # Trim against stored ranges; split into the uncovered pieces.
        pieces = self._uncovered(start, end)
        self.duplicate_bytes += (end - start) - sum(e - s for s, e in pieces)
        for piece_start, piece_end in pieces:
            index = bisect.bisect_left(self._starts, piece_start)
            self._starts.insert(index, piece_start)
            self._ends.insert(index, piece_end)
            self._metas.insert(index, meta)
            accepted += piece_end - piece_start
            self._buffered += piece_end - piece_start
        if accepted:
            self._advance(on_in_order)
        return accepted

    def _uncovered(self, start: int, end: int) -> List[Tuple[int, int]]:
        """Sub-ranges of [start, end) not already stored."""
        pieces: List[Tuple[int, int]] = []
        cursor = start
        index = bisect.bisect_right(self._ends, start)
        while cursor < end and index < len(self._starts):
            range_start = self._starts[index]
            range_end = self._ends[index]
            if range_start >= end:
                break
            if range_start > cursor:
                pieces.append((cursor, min(range_start, end)))
            cursor = max(cursor, range_end)
            index += 1
        if cursor < end:
            pieces.append((cursor, end))
        return pieces

    def _advance(self,
                 on_in_order: Optional[Callable[[int, int, Any], None]],
                 ) -> None:
        while self._starts and self._starts[0] <= self.rcv_nxt:
            start = self._starts.pop(0)
            end = self._ends.pop(0)
            meta = self._metas.pop(0)
            self._buffered -= end - start
            if end <= self.rcv_nxt:
                continue  # fully duplicate range (possible after trims)
            delivered_start = max(start, self.rcv_nxt)
            self.rcv_nxt = end
            if on_in_order is not None:
                on_in_order(delivered_start, end, meta)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def buffered_bytes(self) -> int:
        """Bytes held above the cumulative point (out-of-order data).

        O(1): stored ranges are disjoint, so a running sum maintained
        on insert/pop equals the sum of stored lengths.  This is read
        on every received data packet (window advertisement).
        """
        return self._buffered

    @property
    def pending_ranges(self) -> List[Tuple[int, int]]:
        """The stored out-of-order ranges, ascending (for tests)."""
        return list(zip(self._starts, self._ends))

    def sack_blocks(self, limit: int = 3) -> Tuple[Tuple[int, int], ...]:
        """Coalesced SACK blocks, highest ranges first, at most ``limit``."""
        if not self._starts:
            return ()
        merged: List[Tuple[int, int]] = []
        for start, end in zip(self._starts, self._ends):
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        merged.reverse()  # most recently useful (highest) first
        return tuple(merged[:limit])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ReassemblyQueue rcv_nxt={self.rcv_nxt} "
                f"ooo={self.buffered_bytes}B>")

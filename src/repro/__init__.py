"""repro: a reproduction of "A Measurement-based Study of MultiPath TCP
Performance over Wireless Networks" (Chen et al., IMC 2013).

The package is a packet-level discrete-event simulator of the paper's
testbed -- a multi-homed server, a mobile client with WiFi plus one of
three cellular carriers -- with a full MPTCP implementation (subflow
establishment, DSS mapping, minRTT scheduling, shared reorder buffer,
and the reno / coupled / olia congestion controllers), a tcptrace-style
measurement layer, and an experiment harness that regenerates every
table and figure in the paper's evaluation.

Quick start::

    from repro.experiments import FlowSpec, Measurement

    spec = FlowSpec.mptcp(carrier="att", controller="coupled")
    result = Measurement(spec, size=512 * 1024, seed=1).run()
    print(result.download_time)

See README.md for the full tour and EXPERIMENTS.md for the
paper-vs-reproduction comparison.
"""

from repro.testbed import Testbed, TestbedConfig

__version__ = "1.0.0"

__all__ = ["Testbed", "TestbedConfig", "__version__"]

"""Closed-form TCP performance models.

These are the standard results the measurement literature uses to
reason about what a TCP flow *should* achieve given path parameters;
the test suite holds the simulator against them.

All rates are bits per second, times seconds, sizes bytes.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence


def sqrt_throughput(mss: int, rtt: float, loss_rate: float) -> float:
    """The square-root law: ``B = (MSS/RTT) * sqrt(3/2) / sqrt(p)``.

    Valid for small loss rates where timeouts are rare.  Returns
    ``inf`` for a loss-free path (the law does not bound it).
    """
    if mss <= 0 or rtt <= 0:
        raise ValueError("mss and rtt must be positive")
    if loss_rate <= 0:
        return math.inf
    return (mss * 8.0 / rtt) * math.sqrt(1.5 / loss_rate)


def pftk_throughput(mss: int, rtt: float, loss_rate: float,
                    rto: Optional[float] = None,
                    b: int = 1) -> float:
    """The full PFTK formula [Padhye et al. 1998], timeouts included.

    ``b`` is the number of segments acknowledged per ACK (1 without
    delayed ACKs, 2 with).  ``rto`` defaults to ``max(4 * rtt, 0.2)``
    (the Linux floor used throughout this package).
    """
    if mss <= 0 or rtt <= 0:
        raise ValueError("mss and rtt must be positive")
    if loss_rate <= 0:
        return math.inf
    if not 0 < loss_rate < 1:
        raise ValueError("loss_rate must be in (0, 1)")
    if rto is None:
        rto = max(4.0 * rtt, 0.2)
    p = loss_rate
    congestion_term = rtt * math.sqrt(2.0 * b * p / 3.0)
    timeout_term = (min(1.0, 3.0 * math.sqrt(3.0 * b * p / 8.0))
                    * rto * p * (1.0 + 32.0 * p * p))
    return mss * 8.0 / (congestion_term + timeout_term)


def slow_start_rounds(size: int, mss: int,
                      initial_window_segments: int = 10) -> int:
    """RTT rounds to deliver ``size`` bytes in pure slow start.

    The window doubles each round starting at the initial window, so
    the bytes delivered after ``r`` rounds are
    ``iw * mss * (2^r - 1)``.
    """
    if size <= 0:
        return 0
    segments = math.ceil(size / mss)
    rounds = 0
    delivered = 0
    window = initial_window_segments
    while delivered < segments:
        delivered += window
        window *= 2
        rounds += 1
    return rounds


def slow_start_latency(size: int, mss: int, rtt: float,
                       initial_window_segments: int = 10,
                       handshake_rtts: float = 2.0) -> float:
    """Expected download time of a short flow that never leaves slow
    start: handshake plus request plus one RTT per doubling round.

    ``handshake_rtts`` counts the SYN exchange plus the HTTP request
    round (2 RTTs total for TCP+request before first data arrives).
    """
    rounds = slow_start_rounds(size, mss, initial_window_segments)
    return (handshake_rtts + max(rounds - 1, 0)) * rtt + rtt / 2.0


def download_time_estimate(size: int, mss: int, rtt: float,
                           loss_rate: float, bottleneck_bps: float,
                           initial_window_segments: int = 10) -> float:
    """Back-of-envelope download time: slow-start phase followed by a
    steady phase at min(loss-limited rate, bottleneck)."""
    steady = min(pftk_throughput(mss, rtt, loss_rate)
                 if loss_rate > 0 else math.inf, bottleneck_bps)
    if math.isinf(steady):
        steady = bottleneck_bps
    slow_start_bytes = min(size, initial_window_segments * mss * 4)
    startup = slow_start_latency(slow_start_bytes, mss, rtt,
                                 initial_window_segments)
    remaining = max(size - slow_start_bytes, 0)
    return startup + remaining * 8.0 / steady


def mptcp_aggregate_bound(path_rates: Sequence[float]) -> float:
    """Upper bound on MPTCP throughput: the sum of path capacities.

    Any controller (coupled or not) is bounded by full utilization of
    every path; the coupled controllers intentionally achieve *less*
    than this on shared bottlenecks.
    """
    if any(rate < 0 for rate in path_rates):
        raise ValueError("path rates must be non-negative")
    return float(sum(path_rates))

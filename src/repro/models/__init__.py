"""Analytical transport models used to validate the simulator.

The reproduction is only trustworthy if its TCP behaves like TCP; this
subpackage provides the standard closed-form models the networking
literature validates against:

* the square-root law and the PFTK steady-state throughput formula
  [Padhye et al., SIGCOMM'98] for loss-limited bulk transfers;
* a slow-start latency model in the spirit of Cardwell et al. for
  short flows (the regime that dominates the paper's small-file
  measurements);
* the aggregate bound for a multipath connection (sum of per-path
  capacities under its controller).

`tests/models/` cross-checks simulated transfers against these curves.
"""

from repro.models.tcp_model import (
    download_time_estimate,
    mptcp_aggregate_bound,
    pftk_throughput,
    slow_start_latency,
    slow_start_rounds,
    sqrt_throughput,
)

__all__ = [
    "sqrt_throughput",
    "pftk_throughput",
    "slow_start_rounds",
    "slow_start_latency",
    "download_time_estimate",
    "mptcp_aggregate_bound",
]

"""MPTCP packet schedulers: a pluggable strategy registry.

The scheduler decides which established subflow receives the next run
of connection-level data when more than one has congestion-window
space.  Linux MPTCP v0.86 (the kernel the paper measures) uses the
lowest-SRTT scheduler: fill the fastest path's window first, then the
next, and so on.  That policy is what produces the paper's traffic-
share curves (Figures 3/5/10): WiFi carries everything for tiny flows,
while large flows spill progressively more onto the loss-free cellular
path as WiFi's window stays loss-limited.

Beyond the kernel default, the registry carries the policies the
scheduler literature (and the Dual-LTE measurement study in PAPERS.md)
treats as the interesting design space:

=============  ========================================================
``minrtt``     Linux default: lowest SRTT first (Figure 3/5/10 curves).
``roundrobin`` Rotate across paths regardless of quality (ablation).
``redundant``  Every range on every path; receiver dedups by DSN.
``weighted``   Configurable per-path byte shares (deficit round-robin),
               e.g. ``weighted:wifi=3,att=1``.
``blest``      BLEST/ECF-style blocking estimate: refuse a slow path
               when the remaining send window would drain through the
               fast path within one slow-path RTT (SRTT x cwnd).
``cheapest``   Prefer a designated cheap path until a per-flow data-cap
               budget is spent, then spill to the metered paths, e.g.
               ``cheapest:budget=4194304``.
``qoe``        Adaptive: consumes live per-path SRTT/loss/throughput
               EWMAs from the :mod:`repro.obs` trace bus and switches
               policy (balanced / protect / latency) at runtime.
=============  ========================================================

Scheduler *specs* are strings: a bare registry name (``"blest"``) or a
name followed by ``:key=value,...`` parameters
(``"weighted:wifi=2,att=1"``), so a spec travels through
:class:`~repro.experiments.config.FlowSpec`, journals and run-cache
keys as plain hashable text.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Sequence, Tuple, Type


class SchedulableSubflow(Protocol):
    """What the scheduler needs to see of a subflow."""

    @property
    def established(self) -> bool:  # pragma: no cover - protocol
        ...

    #: True for MP_JOIN backup-mode subflows (carry data only while no
    #: regular subflow is operational -- mirrored in
    #: ``Connection.allocate``).
    backup: bool
    #: Persistent position in the connection's (append-only) subflow
    #: list; stable across subflow churn, unlike list positions.
    index: Optional[int]
    #: Short path label, e.g. ``"wifi"`` / ``"att"``.
    path_name: str

    def srtt(self) -> float:  # pragma: no cover - protocol
        ...

    def can_send(self) -> bool:  # pragma: no cover - protocol
        """True when the subflow has congestion-window budget."""
        ...

    def cwnd_bytes(self) -> int:  # pragma: no cover - protocol
        """Current congestion window in bytes."""
        ...


def eligible_for_data(subflows: Sequence[SchedulableSubflow],
                      subflow: SchedulableSubflow) -> bool:
    """Would ``Connection.allocate`` actually hand this subflow data?

    Mirrors the connection's backup gate: a backup-mode subflow is
    refused while any regular subflow is operational.  Schedulers must
    apply this before counting a subflow as a *preferred* competitor --
    otherwise a fast backup path vetoes the only eligible regular path
    and the transfer stalls until a timer fires.
    """
    if not subflow.backup:
        return True
    return not any(other.established and not other.backup
                   for other in subflows if other is not subflow)


class Scheduler:
    """Base class: transmit preference among established subflows.

    Hooks, called by :class:`~repro.core.connection.MptcpConnection`:

    * :meth:`order` -- the sequence in which the connection offers a
      transmission opportunity to every subflow (used on push events:
      new data queued, window opened).
    * :meth:`admits` -- whether ``candidate`` may take the next run of
      data *right now*; this is where minRTT bites, by refusing a slow
      subflow while a faster one still has window budget.  ``window``
      is the connection-level send window remaining (bytes), for
      blocking-estimate policies; it may be ``None`` in unit tests.
    * :attr:`duplicates` -- when true, every freshly scheduled range is
      also queued for transmission on the *other* subflows (the
      redundant scheduler trades bytes for latency).
    * :meth:`attach` -- called once when the owning connection is
      built; stateful policies grab their metric feeds here.
    * :meth:`on_allocated` -- called after every run of bytes (fresh,
      reinjected or duplicated) is handed to a subflow; budget/share
      policies account here.
    * :attr:`needs_path_metrics` -- when true, the connection installs
      a :class:`repro.obs.pathmetrics.PathMetricsTap` on the trace bus
      *before* building the protocol stack.
    """

    name = "base"
    duplicates = False
    needs_path_metrics = False

    def order(self, subflows: Sequence[SchedulableSubflow]
              ) -> List[SchedulableSubflow]:
        raise NotImplementedError

    def admits(self, subflows: Sequence[SchedulableSubflow],
               candidate: SchedulableSubflow,
               window: Optional[int] = None) -> bool:
        return True

    def attach(self, connection) -> None:
        """Bind to the owning connection (default: nothing to do)."""

    def on_allocated(self, subflow: SchedulableSubflow,
                     nbytes: int) -> None:
        """A run of ``nbytes`` was handed to ``subflow``."""


class LowestRttScheduler(Scheduler):
    """The Linux default: prefer the subflow with the lowest SRTT.

    A subflow is only given data when no *eligible* established subflow
    with a strictly lower SRTT has congestion-window space -- the
    kernel's per-segment "best available subflow" selection.  Backup
    subflows the connection would refuse anyway are not counted as
    competitors (see :func:`eligible_for_data`).
    """

    name = "minrtt"

    def order(self, subflows: Sequence[SchedulableSubflow]
              ) -> List[SchedulableSubflow]:
        ready = [subflow for subflow in subflows if subflow.established]
        ready.sort(key=lambda subflow: subflow.srtt())
        return ready

    def admits(self, subflows: Sequence[SchedulableSubflow],
               candidate: SchedulableSubflow,
               window: Optional[int] = None) -> bool:
        candidate_rtt = candidate.srtt()
        for subflow in subflows:
            if subflow is candidate or not subflow.established:
                continue
            if (subflow.srtt() < candidate_rtt and subflow.can_send()
                    and eligible_for_data(subflows, subflow)):
                return False
        return True


class RoundRobinScheduler(Scheduler):
    """Rotate through subflows regardless of path quality (ablation).

    Purely opportunistic admission: any subflow with window space may
    take data, so traffic spreads onto slow paths immediately.

    Rotation is tracked by persistent subflow identity
    (:attr:`SchedulableSubflow.index`), not by position in the filtered
    ready list: when a subflow establishes or dies mid-transfer, a
    positional cursor skips or double-serves paths, while the identity
    cursor simply continues from the last path actually served.
    """

    name = "roundrobin"

    def __init__(self) -> None:
        #: Index of the subflow most recently placed at the head of the
        #: rotation; the next call starts strictly after it.
        self._last_index = -1

    def order(self, subflows: Sequence[SchedulableSubflow]
              ) -> List[SchedulableSubflow]:
        ready = [subflow for subflow in subflows if subflow.established]
        if not ready:
            return ready
        ready.sort(key=lambda subflow: subflow.index)
        start = 0
        for position, subflow in enumerate(ready):
            if subflow.index > self._last_index:
                start = position
                break
        rotated = ready[start:] + ready[:start]
        self._last_index = rotated[0].index
        return rotated


class RedundantScheduler(Scheduler):
    """Send every range on every path; the receiver dedups by DSN.

    The latency play for the paper's Section 5.2 problem: a packet's
    delivery time becomes the *minimum* over paths, eliminating the
    reorder wait behind a slow path, at the price of transmitting each
    byte once per subflow.  (Equivalent to the 'redundant' scheduler
    later shipped with Linux MPTCP.)
    """

    name = "redundant"
    duplicates = True

    def order(self, subflows: Sequence[SchedulableSubflow]
              ) -> List[SchedulableSubflow]:
        ready = [subflow for subflow in subflows if subflow.established]
        ready.sort(key=lambda subflow: subflow.srtt())
        return ready


class WeightedScheduler(Scheduler):
    """Deficit-weighted shares: steer bytes toward configured paths.

    ``weighted:wifi=3,att=1`` targets a 3:1 byte split.  Each path's
    *deficit* is served bytes divided by its weight; the path with the
    smallest deficit is the most underweight and goes first.  A subflow
    is refused while a more-underweight eligible sibling still has
    window space, so the realized split tracks the target even when the
    underweight path is the slower one.  Unlisted paths get weight 1.
    """

    name = "weighted"

    def __init__(self, weights: Optional[Dict[str, float]] = None) -> None:
        self.weights = {name: float(value)
                        for name, value in (weights or {}).items()}
        if any(value <= 0 for value in self.weights.values()):
            raise ValueError("weighted scheduler weights must be positive")
        self._served: Dict[str, int] = {}

    def _deficit(self, subflow: SchedulableSubflow) -> float:
        served = self._served.get(subflow.path_name, 0)
        return served / self.weights.get(subflow.path_name, 1.0)

    def order(self, subflows: Sequence[SchedulableSubflow]
              ) -> List[SchedulableSubflow]:
        ready = [subflow for subflow in subflows if subflow.established]
        ready.sort(key=lambda subflow: (self._deficit(subflow),
                                        subflow.srtt()))
        return ready

    def admits(self, subflows: Sequence[SchedulableSubflow],
               candidate: SchedulableSubflow,
               window: Optional[int] = None) -> bool:
        deficit = self._deficit(candidate)
        for subflow in subflows:
            if subflow is candidate or not subflow.established:
                continue
            if (self._deficit(subflow) < deficit and subflow.can_send()
                    and eligible_for_data(subflows, subflow)):
                return False
        return True

    def on_allocated(self, subflow: SchedulableSubflow,
                     nbytes: int) -> None:
        self._served[subflow.path_name] = (
            self._served.get(subflow.path_name, 0) + nbytes)


def _blocking_refusal(subflows: Sequence[SchedulableSubflow],
                      candidate: SchedulableSubflow,
                      window: Optional[int], bias: float) -> bool:
    """The BLEST/ECF blocking estimate: should ``candidate`` wait?

    ``candidate`` is slower than the best eligible path, which is
    currently cwnd-limited.  Sending on the slow path occupies the
    connection-level window for one slow-path RTT; in that time the
    fast path will drain roughly ``cwnd_f * srtt_s / srtt_f`` bytes.
    If the *remaining* send window fits inside that estimate, putting
    it on the slow path would starve (block) the fast path when its
    window reopens -- better to wait.
    """
    ready = [subflow for subflow in subflows
             if subflow.established and eligible_for_data(subflows, subflow)]
    if not ready:
        return False
    fast = min(ready, key=lambda subflow: subflow.srtt())
    if candidate is fast or candidate.srtt() <= fast.srtt():
        return False
    if fast.can_send():
        return True  # the minRTT rule: the fast path is open right now
    if window is None:
        return False
    fast_rtt = max(fast.srtt(), 1e-6)
    drained = fast.cwnd_bytes() * (candidate.srtt() / fast_rtt)
    return window <= drained * bias


class BlestScheduler(Scheduler):
    """BLEST/ECF-style blocking-estimate scheduler.

    Orders by SRTT like minRTT, but its admission test also refuses a
    slow path when the fast path is only *momentarily* cwnd-limited and
    the remaining send window would drain through it within one
    slow-path RTT (``srtt x cwnd`` estimate).  ``blest:bias=1.25``
    scales the estimate (larger = more conservative about slow paths).
    """

    name = "blest"

    def __init__(self, bias: float = 1.0) -> None:
        if bias <= 0:
            raise ValueError("blest bias must be positive")
        self.bias = float(bias)

    def order(self, subflows: Sequence[SchedulableSubflow]
              ) -> List[SchedulableSubflow]:
        ready = [subflow for subflow in subflows if subflow.established]
        ready.sort(key=lambda subflow: subflow.srtt())
        return ready

    def admits(self, subflows: Sequence[SchedulableSubflow],
               candidate: SchedulableSubflow,
               window: Optional[int] = None) -> bool:
        return not _blocking_refusal(subflows, candidate, window, self.bias)


class CheapestFirstScheduler(Scheduler):
    """Prefer a designated cheap path until its data budget is spent.

    Models a metered deployment (the Dual-LTE study's cost concern):
    one path is flat-rate or cheap up to a cap, the rest are expensive.
    While the per-flow budget lasts, the cheap path is preferred and
    the expensive paths only take spill-over the cheap window cannot
    absorb; once the budget is spent the roles flip and the cheap path
    becomes the last resort.

    ``cheapest:path=att,budget=4194304``; ``path`` defaults to the
    connection's default path (subflow index 0), ``budget`` to 4 MiB.
    """

    name = "cheapest"

    DEFAULT_BUDGET = 4 * 1024 * 1024

    def __init__(self, path: Optional[str] = None,
                 budget: int = DEFAULT_BUDGET) -> None:
        if budget <= 0:
            raise ValueError("cheapest budget must be positive")
        self.cheap_path = path
        self.budget = int(budget)
        self.cheap_used = 0

    def _is_cheap(self, subflow: SchedulableSubflow) -> bool:
        if self.cheap_path is not None:
            return subflow.path_name == self.cheap_path
        return subflow.index == 0

    @property
    def budget_left(self) -> bool:
        return self.cheap_used < self.budget

    def order(self, subflows: Sequence[SchedulableSubflow]
              ) -> List[SchedulableSubflow]:
        ready = [subflow for subflow in subflows if subflow.established]
        cheap_rank = 0 if self.budget_left else 1
        ready.sort(key=lambda subflow: (
            cheap_rank if self._is_cheap(subflow) else 1 - cheap_rank,
            subflow.srtt()))
        return ready

    def admits(self, subflows: Sequence[SchedulableSubflow],
               candidate: SchedulableSubflow,
               window: Optional[int] = None) -> bool:
        preferred_is_cheap = self.budget_left
        if self._is_cheap(candidate) == preferred_is_cheap:
            return True
        # The dispreferred tier only takes what the preferred tier
        # cannot absorb right now.
        return not any(
            subflow.established and subflow.can_send()
            and self._is_cheap(subflow) == preferred_is_cheap
            and eligible_for_data(subflows, subflow)
            for subflow in subflows if subflow is not candidate)

    def on_allocated(self, subflow: SchedulableSubflow,
                     nbytes: int) -> None:
        if self._is_cheap(subflow):
            self.cheap_used += nbytes


class QoeAdaptiveScheduler(Scheduler):
    """Adaptive policy switching on live per-path QoE metrics.

    Consumes the per-path SRTT / loss / throughput EWMAs that a
    :class:`repro.obs.pathmetrics.PathMetricsTap` aggregates from the
    trace-bus probes (``sched.select``, ``tcp.fast_retransmit``,
    ``rto.fire``), re-evaluating at most once per ``interval`` of
    simulated time, and switches between three policies:

    * ``balanced`` -- minRTT behaviour (the default);
    * ``protect`` -- a path whose loss EWMA exceeds ``loss_cutoff`` is
      demoted: it only takes data when no healthy path can;
    * ``latency`` -- the paths' SRTTs have diverged past ``rtt_ratio``:
      apply the BLEST blocking estimate so the slow path cannot stall
      the interactive stream.

    Policy switches are themselves traced (``sched.policy``).  Without
    a tap (e.g. bare unit tests) it degrades to plain minRTT.
    """

    name = "qoe"
    needs_path_metrics = True

    def __init__(self, loss_cutoff: float = 0.02, rtt_ratio: float = 4.0,
                 interval: float = 0.25, bias: float = 1.0) -> None:
        self.loss_cutoff = float(loss_cutoff)
        self.rtt_ratio = float(rtt_ratio)
        self.interval = float(interval)
        self.bias = float(bias)
        self.policy = "balanced"
        self._demoted: frozenset = frozenset()
        self._connection = None
        self._tap = None
        self._next_eval = float("-inf")

    def attach(self, connection) -> None:
        from repro.obs.pathmetrics import metrics_tap
        self._connection = connection
        self._tap = metrics_tap(connection.sim.trace)

    # ------------------------------------------------------------------

    def _evaluate(self, subflows: Sequence[SchedulableSubflow]) -> None:
        connection = self._connection
        if connection is None:
            return
        now = connection.sim.now
        if now < self._next_eval:
            return
        self._next_eval = now + self.interval
        demoted = set()
        if self._tap is not None:
            for subflow in subflows:
                if not subflow.established:
                    continue
                health = self._tap.path(subflow.path_name)
                if (health is not None
                        and health.loss_rate() > self.loss_cutoff):
                    demoted.add(subflow.path_name)
        policy = "balanced"
        ready = [subflow for subflow in subflows if subflow.established]
        if demoted and len(demoted) < len({s.path_name for s in ready}):
            policy = "protect"
        else:
            demoted = set()
            rtts = [subflow.srtt() for subflow in ready]
            if len(rtts) >= 2 and max(rtts) > self.rtt_ratio * min(rtts):
                policy = "latency"
        if policy != self.policy:
            trace = connection.sim.trace
            if trace.enabled:
                trace.emit(now, "sched.policy", policy=policy,
                           previous=self.policy,
                           demoted=sorted(demoted))
        self.policy = policy
        self._demoted = frozenset(demoted)

    def order(self, subflows: Sequence[SchedulableSubflow]
              ) -> List[SchedulableSubflow]:
        self._evaluate(subflows)
        demoted = self._demoted
        ready = [subflow for subflow in subflows if subflow.established]
        ready.sort(key=lambda subflow: (
            1 if subflow.path_name in demoted else 0, subflow.srtt()))
        return ready

    def admits(self, subflows: Sequence[SchedulableSubflow],
               candidate: SchedulableSubflow,
               window: Optional[int] = None) -> bool:
        self._evaluate(subflows)
        demoted = self._demoted
        if candidate.path_name in demoted:
            # A lossy path takes data only when no healthy path can.
            if any(subflow.established and subflow.can_send()
                   and subflow.path_name not in demoted
                   and eligible_for_data(subflows, subflow)
                   for subflow in subflows if subflow is not candidate):
                return False
        if self.policy == "latency":
            return not _blocking_refusal(subflows, candidate, window,
                                         self.bias)
        candidate_rtt = candidate.srtt()
        for subflow in subflows:
            if subflow is candidate or not subflow.established:
                continue
            if (subflow.path_name in demoted
                    and candidate.path_name not in demoted):
                continue  # a demoted path never vetoes a healthy one
            if (subflow.srtt() < candidate_rtt and subflow.can_send()
                    and eligible_for_data(subflows, subflow)):
                return False
        return True


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------

_SCHEDULERS: Dict[str, Type[Scheduler]] = {}


def register_scheduler(cls: Type[Scheduler]) -> Type[Scheduler]:
    """Add a scheduler class to the registry under ``cls.name``."""
    if not cls.name or cls.name == "base":
        raise ValueError("scheduler classes need a distinct 'name'")
    _SCHEDULERS[cls.name] = cls
    return cls


for _cls in (LowestRttScheduler, RoundRobinScheduler, RedundantScheduler,
             WeightedScheduler, BlestScheduler, CheapestFirstScheduler,
             QoeAdaptiveScheduler):
    register_scheduler(_cls)


def scheduler_names() -> List[str]:
    """The registered scheduler names, sorted."""
    return sorted(_SCHEDULERS)


def parse_strategy(spec: str) -> Tuple[str, Dict[str, str]]:
    """Split a strategy spec into (name, params).

    ``"blest"`` -> ``("blest", {})``;
    ``"weighted:wifi=2,att=1"`` -> ``("weighted", {"wifi": "2", ...})``.
    Shared with the path-manager registry, which uses the same syntax.
    """
    name, _, raw = spec.partition(":")
    params: Dict[str, str] = {}
    if raw:
        for item in raw.split(","):
            key, sep, value = item.partition("=")
            if not sep or not key:
                raise ValueError(
                    f"bad strategy parameter {item!r} in {spec!r}; "
                    "expected key=value")
            params[key.strip()] = value.strip()
    return name.strip(), params


def _build(cls: Type[Scheduler], spec: str,
           params: Dict[str, str]) -> Scheduler:
    if cls is WeightedScheduler:
        return WeightedScheduler(
            {path: float(value) for path, value in params.items()})
    if cls is BlestScheduler:
        return BlestScheduler(bias=float(params.pop("bias", 1.0)))
    if cls is CheapestFirstScheduler:
        return CheapestFirstScheduler(
            path=params.pop("path", None),
            budget=int(params.pop("budget",
                                  CheapestFirstScheduler.DEFAULT_BUDGET)))
    if cls is QoeAdaptiveScheduler:
        return QoeAdaptiveScheduler(
            loss_cutoff=float(params.pop("loss_cutoff", 0.02)),
            rtt_ratio=float(params.pop("rtt_ratio", 4.0)),
            interval=float(params.pop("interval", 0.25)),
            bias=float(params.pop("bias", 1.0)))
    if params:
        raise ValueError(
            f"scheduler {cls.name!r} takes no parameters, got {spec!r}")
    return cls()


def make_scheduler(spec: str) -> Scheduler:
    """Instantiate a scheduler from a spec string.

    A spec is a registry name -- one of :func:`scheduler_names`
    (``minrtt``, the default, plus ``roundrobin``, ``redundant``,
    ``weighted``, ``blest``, ``cheapest``, ``qoe``) -- optionally
    followed by ``:key=value,...`` parameters.
    """
    name, params = parse_strategy(spec)
    try:
        cls = _SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; expected one of "
            f"{scheduler_names()}") from None
    try:
        return _build(cls, spec, dict(params))
    except (TypeError, ValueError) as error:
        raise ValueError(
            f"bad scheduler spec {spec!r}: {error}") from None


def scheduler_needs_path_metrics(spec: str) -> bool:
    """Does this spec's scheduler consume the path-metrics tap?"""
    name, _ = parse_strategy(spec)
    cls = _SCHEDULERS.get(name)
    return bool(cls is not None and cls.needs_path_metrics)

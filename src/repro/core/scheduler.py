"""MPTCP packet schedulers.

The scheduler decides which established subflow receives the next run
of connection-level data when more than one has congestion-window
space.  Linux MPTCP v0.86 (the kernel the paper measures) uses the
lowest-SRTT scheduler: fill the fastest path's window first, then the
next, and so on.  That policy is what produces the paper's traffic-
share curves (Figures 3/5/10): WiFi carries everything for tiny flows,
while large flows spill progressively more onto the loss-free cellular
path as WiFi's window stays loss-limited.

A round-robin scheduler is included for the ablation benchmark.
"""

from __future__ import annotations

from typing import List, Protocol, Sequence


class SchedulableSubflow(Protocol):
    """What the scheduler needs to see of a subflow."""

    @property
    def established(self) -> bool:  # pragma: no cover - protocol
        ...

    def srtt(self) -> float:  # pragma: no cover - protocol
        ...

    def can_send(self) -> bool:  # pragma: no cover - protocol
        """True when the subflow has congestion-window budget."""
        ...


class Scheduler:
    """Base class: transmit preference among established subflows.

    Three hooks:

    * :meth:`order` -- the sequence in which the connection offers a
      transmission opportunity to every subflow (used on push events:
      new data queued, window opened).
    * :meth:`admits` -- whether ``candidate`` may take the next run of
      data *right now*; this is where minRTT bites, by refusing a slow
      subflow while a faster one still has window budget.
    * :attr:`duplicates` -- when true, every freshly scheduled range is
      also queued for transmission on the *other* subflows (the
      redundant scheduler trades bytes for latency).
    """

    name = "base"
    duplicates = False

    def order(self, subflows: Sequence[SchedulableSubflow]
              ) -> List[SchedulableSubflow]:
        raise NotImplementedError

    def admits(self, subflows: Sequence[SchedulableSubflow],
               candidate: SchedulableSubflow) -> bool:
        return True


class LowestRttScheduler(Scheduler):
    """The Linux default: prefer the subflow with the lowest SRTT.

    A subflow is only given data when no established subflow with a
    strictly lower SRTT has congestion-window space -- the kernel's
    per-segment "best available subflow" selection.
    """

    name = "minrtt"

    def order(self, subflows: Sequence[SchedulableSubflow]
              ) -> List[SchedulableSubflow]:
        ready = [subflow for subflow in subflows if subflow.established]
        ready.sort(key=lambda subflow: subflow.srtt())
        return ready

    def admits(self, subflows: Sequence[SchedulableSubflow],
               candidate: SchedulableSubflow) -> bool:
        candidate_rtt = candidate.srtt()
        for subflow in subflows:
            if subflow is candidate or not subflow.established:
                continue
            if subflow.srtt() < candidate_rtt and subflow.can_send():
                return False
        return True


class RoundRobinScheduler(Scheduler):
    """Rotate through subflows regardless of path quality (ablation).

    Purely opportunistic admission: any subflow with window space may
    take data, so traffic spreads onto slow paths immediately.
    """

    name = "roundrobin"

    def __init__(self) -> None:
        self._next_index = 0

    def order(self, subflows: Sequence[SchedulableSubflow]
              ) -> List[SchedulableSubflow]:
        ready = [subflow for subflow in subflows if subflow.established]
        if not ready:
            return ready
        start = self._next_index % len(ready)
        self._next_index += 1
        return ready[start:] + ready[:start]


class RedundantScheduler(Scheduler):
    """Send every range on every path; the receiver dedups by DSN.

    The latency play for the paper's Section 5.2 problem: a packet's
    delivery time becomes the *minimum* over paths, eliminating the
    reorder wait behind a slow path, at the price of transmitting each
    byte once per subflow.  (Equivalent to the 'redundant' scheduler
    later shipped with Linux MPTCP.)
    """

    name = "redundant"
    duplicates = True

    def order(self, subflows: Sequence[SchedulableSubflow]
              ) -> List[SchedulableSubflow]:
        ready = [subflow for subflow in subflows if subflow.established]
        ready.sort(key=lambda subflow: subflow.srtt())
        return ready


_SCHEDULERS = {
    "minrtt": LowestRttScheduler,
    "roundrobin": RoundRobinScheduler,
    "redundant": RedundantScheduler,
}


def make_scheduler(name: str) -> Scheduler:
    """Instantiate a scheduler by name: minrtt (default) or roundrobin."""
    try:
        return _SCHEDULERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; expected one of "
            f"{sorted(_SCHEDULERS)}") from None

"""The shared MPTCP receive buffer with out-of-order delay accounting.

Section 3.3 of the paper defines the metric this module exists for:

    "Out-of-order delay is defined to be the time difference between
    when a packet arrives at the receive buffer to when its data
    sequence number is in-order."

In-order segments from one subflow may still wait here because their
*data* sequence numbers trail packets still in flight on the other
(slower) path.  The paper's testbed sizes this buffer (8 MB) so that it
never limits the transfer, making the measured delay purely a
reordering effect; we default to the same size and expose occupancy so
the advertised connection-level window is honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.bus import NULL_TRACE_BUS
from repro.tcp.reassembly import make_reassembly_queue


@dataclass
class OfoSample:
    """One delivered range: its reorder delay and provenance."""

    delay: float
    nbytes: int
    path: str


@dataclass
class ReceiveBufferMetrics:
    """Aggregates read by the measurement layer.

    Samples are stored column-wise (three parallel lists) instead of
    one object per delivered range: at millions of delivered ranges per
    campaign the per-sample dataclass allocation dominated the receive
    path, and the analysis layer only ever consumes whole columns
    (:meth:`delays`) anyway.  :attr:`samples` materializes the old
    object view for tests and ad-hoc inspection.
    """

    delay_col: List[float] = field(default_factory=list)
    nbytes_col: List[int] = field(default_factory=list)
    path_col: List[str] = field(default_factory=list)
    bytes_by_path: Dict[str, int] = field(default_factory=dict)
    delivered_bytes: int = 0
    peak_occupancy: int = 0

    def record(self, delay: float, nbytes: int, path: str) -> None:
        """Append one delivered range to the sample columns."""
        self.delay_col.append(delay)
        self.nbytes_col.append(nbytes)
        self.path_col.append(path)

    @property
    def samples(self) -> List[OfoSample]:
        """Row view over the sample columns (compatibility helper)."""
        return [OfoSample(delay, nbytes, path)
                for delay, nbytes, path
                in zip(self.delay_col, self.nbytes_col, self.path_col)]

    def delays(self) -> List[float]:
        """Per-range reorder delays in seconds (0.0 = arrived in order)."""
        return list(self.delay_col)

    def in_order_fraction(self) -> float:
        """Fraction of ranges delivered with no reorder wait."""
        if not self.delay_col:
            return 1.0
        in_order = sum(1 for delay in self.delay_col if delay <= 1e-9)
        return in_order / len(self.delay_col)


class ConnectionReceiveBuffer:
    """Data-sequence-space reordering for one MPTCP connection side."""

    def __init__(self, capacity: int = 8 * 1024 * 1024,
                 clock: Optional[Callable[[], float]] = None,
                 trace=NULL_TRACE_BUS) -> None:
        self.capacity = capacity
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._queue = make_reassembly_queue(rcv_nxt=0)
        self.metrics = ReceiveBufferMetrics()
        self.on_deliver: Optional[Callable[[int], None]] = None
        # Blocked-interval tracking (rbuf.blocked / rbuf.unblocked
        # trace events); only maintained while tracing is enabled.
        self._trace = trace
        self._blocked_since: Optional[float] = None

    @property
    def rcv_nxt(self) -> int:
        """The connection-level cumulative point (the DATA_ACK value)."""
        return self._queue.rcv_nxt

    @property
    def buffered_bytes(self) -> int:
        """Out-of-order bytes currently parked in the buffer."""
        return self._queue.buffered_bytes

    def free_space(self) -> int:
        """Bytes of capacity left (drives the advertised window)."""
        return max(self.capacity - self._queue.buffered_bytes, 0)

    def offer(self, dsn_start: int, dsn_end: int, arrival_time: float,
              path: str) -> int:
        """Insert a received DSN range; returns newly accepted bytes.

        Reorder delay for each range is measured from ``arrival_time``
        (when the packet reached the host) to the moment the range's
        data sequence numbers become in-order.
        """
        accepted = self._queue.offer(
            dsn_start, dsn_end, meta=(arrival_time, path),
            on_in_order=self._in_order)
        if accepted:
            self.metrics.bytes_by_path[path] = (
                self.metrics.bytes_by_path.get(path, 0) + accepted)
            occupancy = self._queue.buffered_bytes
            if occupancy > self.metrics.peak_occupancy:
                self.metrics.peak_occupancy = occupancy
            if (self._trace.enabled and self._blocked_since is None
                    and occupancy >= self.capacity):
                self._blocked_since = self._clock()
                self._trace.emit(self._blocked_since, "rbuf.blocked",
                                 occupancy=occupancy, path=path)
        return accepted

    def _in_order(self, start: int, end: int,
                  meta: Tuple[float, str]) -> None:
        arrival_time, path = meta
        delay = max(self._clock() - arrival_time, 0.0)
        nbytes = end - start
        self.metrics.record(delay, nbytes, path)
        self.metrics.delivered_bytes += nbytes
        if (self._blocked_since is not None
                and self._queue.buffered_bytes < self.capacity):
            now = self._clock()
            self._trace.emit(now, "rbuf.unblocked",
                             blocked_for=now - self._blocked_since)
            self._blocked_since = None
        if self.on_deliver is not None:
            self.on_deliver(nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ConnectionReceiveBuffer rcv_nxt={self.rcv_nxt} "
                f"ooo={self.buffered_bytes}B/{self.capacity}B>")

"""MPTCP TCP-option payloads (RFC 6824 subset).

The simulator does not serialize options to bytes; a segment carries at
most one :class:`MptcpOptions` value object.  The fields mirror the
options the paper's Section 2.2.1 walks through:

* ``MP_CAPABLE`` on the first subflow's SYN/SYN-ACK, carrying the
  connection key.
* ``ADD_ADDR`` sent by the multi-homed server on an established subflow
  to advertise its second interface (the client is behind a NAT, so
  the server can never connect inward).
* ``MP_JOIN`` on additional subflows' SYNs, carrying the token that
  associates them with the existing connection.
* ``DSS`` -- the data-sequence mapping (DSN <-> subflow SSN) on data
  segments, and the cumulative ``DATA_ACK`` on acknowledgements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True, slots=True)
class DssMapping:
    """Maps a run of subflow payload onto connection sequence space.

    ``dsn`` is the data (connection-level) sequence number of the first
    byte; ``ssn`` the subflow sequence number of the same byte;
    ``length`` the run length in bytes.
    """

    dsn: int
    ssn: int
    length: int

    def dsn_for(self, ssn: int) -> int:
        """Translate a subflow sequence number inside this mapping.

        The acceptable range is inclusive at *both* ends:
        ``ssn == self.ssn + self.length`` maps to one past the last
        covered DSN.  Receivers rely on that boundary to translate the
        *end* of a delivered run (``[start, end)`` half-open ranges put
        ``end`` exactly one past the final mapped byte); anything
        further out raises ``ValueError``.
        """
        offset = ssn - self.ssn
        if not 0 <= offset <= self.length:
            raise ValueError(f"ssn {ssn} outside mapping {self!r}")
        return self.dsn + offset

    @property
    def dsn_end(self) -> int:
        return self.dsn + self.length

    @property
    def ssn_end(self) -> int:
        return self.ssn + self.length


@dataclass(frozen=True, slots=True)
class MptcpOptions:
    """The MPTCP option block carried by one segment."""

    #: MP_CAPABLE: this SYN (or SYN-ACK) opens a new MPTCP connection.
    mp_capable: bool = False
    #: MP_JOIN: this SYN joins an existing connection via its token.
    mp_join: bool = False
    #: The B (backup) bit of MP_JOIN / MP_PRIO: this subflow should
    #: only carry data when no regular subflow is operational.
    backup: bool = False
    #: Key/token identifying the MPTCP connection (exchanged in the
    #: MP_CAPABLE handshake, echoed by MP_JOIN).
    token: Optional[int] = None
    #: ADD_ADDR: extra addresses the sender is reachable at.
    add_addr: Tuple[str, ...] = ()
    #: MP_FAIL/MP_PRIO-style signal: the sender's addresses currently
    #: unreachable (its OS saw the interfaces go down); the peer should
    #: stop using subflows toward them immediately.
    dead_addrs: Tuple[str, ...] = ()
    #: Data-sequence mapping for the payload of this segment.
    dss: Optional[DssMapping] = None
    #: Connection-level cumulative acknowledgement.
    data_ack: Optional[int] = None
    #: DATA_FIN: the connection-level stream ends at this DSN.
    data_fin_dsn: Optional[int] = None
    #: MP_FAIL (RFC 6824 Section 3.6): the sender received data it
    #: could not map into the DSN space; with a single subflow the
    #: connection falls back to the infinite mapping, otherwise the
    #: offending subflow must be torn down.
    mp_fail: bool = False

    def wire_length(self) -> int:
        """Bytes this option block occupies in the TCP header.

        Lengths follow RFC 6824: MP_CAPABLE 12, MP_JOIN SYN 12, a DSS
        carrying DATA_ACK + mapping 20 (8 with only the DATA_ACK),
        ADD_ADDR 8 per address, MP_FAIL 12 per dead address, DATA_FIN
        folds into the DSS.
        """
        length = 0
        if self.mp_capable:
            length += 12
        if self.mp_join:
            length += 12
        if self.dss is not None:
            length += 20
        elif self.data_ack is not None or self.data_fin_dsn is not None:
            length += 8
        length += 8 * len(self.add_addr)
        length += 12 * len(self.dead_addrs)
        if self.mp_fail:
            length += 12
        return length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        if self.mp_capable:
            parts.append("MP_CAPABLE")
        if self.mp_join:
            parts.append("MP_JOIN")
        if self.add_addr:
            parts.append(f"ADD_ADDR{self.add_addr}")
        if self.dss is not None:
            parts.append(f"DSS(dsn={self.dss.dsn},len={self.dss.length})")
        if self.data_ack is not None:
            parts.append(f"DATA_ACK={self.data_ack}")
        if self.data_fin_dsn is not None:
            parts.append(f"DATA_FIN@{self.data_fin_dsn}")
        if self.mp_fail:
            parts.append("MP_FAIL")
        return f"<MptcpOptions {' '.join(parts) or 'empty'}>"

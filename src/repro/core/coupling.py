"""The three MPTCP congestion controllers the paper compares.

Section 2.2.2, verbatim in window units (``w_i`` = window of subflow
``i``, ``rtt_i`` its round-trip time, ``w`` the total window):

* **reno** (uncoupled New Reno, the baseline): per ACK on flow *i*,
  ``w_i += 1 / w_i``; per loss, ``w_i /= 2``.
* **coupled** (LIA, RFC 6356, the Linux MPTCP default): per ACK,
  ``w_i += min(a / w, 1 / w_i)`` where
  ``a = w * max_i(w_i / rtt_i^2) / (sum_i w_i / rtt_i)^2``;
  per loss, unmodified TCP halving.
* **olia** (Khalili et al., CoNEXT'12): per ACK,
  ``w_i += (w_i / rtt_i^2) / (sum_p w_p / rtt_p)^2 + alpha_i / w_i``
  where ``alpha_i`` shifts window between the *best* paths (largest
  inter-loss transfer ``l_i^2 / rtt_i``) and the largest-window paths;
  per loss, unmodified TCP halving.

All three use standard slow start below ``ssthresh`` and identical
halving on loss -- the endpoint performs the decrease; controllers only
own the congestion-avoidance *increase* (plus OLIA's inter-loss-bytes
bookkeeping).  Windows are maintained in bytes by the endpoints; the
formulas are evaluated in packet (MSS) units as in the kernel.
"""

from __future__ import annotations

from typing import Dict, List, Protocol


class WindowedFlow(Protocol):
    """What a controller needs to see of a TCP endpoint."""

    cwnd: float          # congestion window, bytes
    ssthresh: float      # slow-start threshold, bytes
    mss: int             # maximum segment size, bytes

    def smoothed_rtt(self) -> float:  # pragma: no cover - protocol
        """Current SRTT estimate in seconds."""
        ...


class CongestionController:
    """Base class: slow start plus per-flow registration.

    Subclasses implement :meth:`_increase`, the congestion-avoidance
    additive increase applied per ACK.
    """

    name = "base"

    def __init__(self) -> None:
        self.flows: List[WindowedFlow] = []

    # -- membership ----------------------------------------------------

    def attach(self, flow: WindowedFlow) -> None:
        """Register a flow (subflow establishment)."""
        if flow not in self.flows:
            self.flows.append(flow)

    def detach(self, flow: WindowedFlow) -> None:
        """Unregister a flow (subflow close)."""
        if flow in self.flows:
            self.flows.remove(flow)

    # -- events from the endpoint ---------------------------------------

    def on_ack(self, flow: WindowedFlow, acked_bytes: int) -> None:
        """Grow the window for ``acked_bytes`` newly acknowledged."""
        if flow.cwnd < flow.ssthresh:
            # Slow start, byte-counted (at most one MSS per ACK).
            flow.cwnd += min(acked_bytes, flow.mss)
        else:
            self._increase(flow, acked_bytes)

    def on_loss(self, flow: WindowedFlow) -> None:
        """Bookkeeping hook; the *decrease* itself is done by the flow."""

    def on_sent(self, flow: WindowedFlow, nbytes: int) -> None:
        """Bookkeeping hook for transmitted bytes (OLIA uses this)."""

    def _increase(self, flow: WindowedFlow, acked_bytes: int) -> None:
        raise NotImplementedError

    # -- helpers ---------------------------------------------------------

    @staticmethod
    def _window_packets(flow: WindowedFlow) -> float:
        return max(flow.cwnd / flow.mss, 1.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} flows={len(self.flows)}>"


class RenoController(CongestionController):
    """Uncoupled New Reno on every subflow (the paper's baseline).

    Also serves as the controller for plain single-path TCP.
    """

    name = "reno"

    def _increase(self, flow: WindowedFlow, acked_bytes: int) -> None:
        # w += 1/w per ACK, byte-counted: MSS^2/w per MSS acked.
        flow.cwnd += flow.mss * flow.mss * (acked_bytes / flow.mss) / flow.cwnd


class CoupledController(CongestionController):
    """The LIA 'coupled' controller (RFC 6356), Linux MPTCP's default."""

    name = "coupled"

    def _alpha(self) -> float:
        """RFC 6356 aggressiveness factor, in packet units."""
        total = 0.0
        best = 0.0
        denominator = 0.0
        for flow in self.flows:
            window = self._window_packets(flow)
            rtt = max(flow.smoothed_rtt(), 1e-4)
            total += window
            best = max(best, window / (rtt * rtt))
            denominator += window / rtt
        if denominator <= 0.0:
            return 1.0
        return total * best / (denominator * denominator)

    def _increase(self, flow: WindowedFlow, acked_bytes: int) -> None:
        window = self._window_packets(flow)
        total = sum(self._window_packets(peer) for peer in self.flows)
        if total <= 0.0:
            total = window
        alpha = self._alpha()
        acked_packets = acked_bytes / flow.mss
        increase_packets = min(alpha / total, 1.0 / window) * acked_packets
        flow.cwnd += increase_packets * flow.mss


class _OliaPathState:
    """Per-flow inter-loss byte counters for OLIA's alpha computation."""

    __slots__ = ("bytes_current_interval", "bytes_previous_interval")

    def __init__(self) -> None:
        self.bytes_current_interval = 0.0
        self.bytes_previous_interval = 0.0

    @property
    def smoothed(self) -> float:
        """l-hat: max of the current and previous inter-loss intervals."""
        return max(self.bytes_current_interval,
                   self.bytes_previous_interval)


class OliaController(CongestionController):
    """The opportunistic linked-increases algorithm (OLIA)."""

    name = "olia"

    def __init__(self) -> None:
        super().__init__()
        self._paths: Dict[int, _OliaPathState] = {}

    def attach(self, flow: WindowedFlow) -> None:
        super().attach(flow)
        self._paths.setdefault(id(flow), _OliaPathState())

    def detach(self, flow: WindowedFlow) -> None:
        super().detach(flow)
        self._paths.pop(id(flow), None)

    def on_sent(self, flow: WindowedFlow, nbytes: int) -> None:
        state = self._paths.get(id(flow))
        if state is not None:
            state.bytes_current_interval += nbytes

    def on_loss(self, flow: WindowedFlow) -> None:
        state = self._paths.get(id(flow))
        if state is not None:
            state.bytes_previous_interval = state.bytes_current_interval
            state.bytes_current_interval = 0.0

    def _alphas(self) -> Dict[int, float]:
        """Compute alpha_i for every registered flow."""
        flow_count = len(self.flows)
        alphas = {id(flow): 0.0 for flow in self.flows}
        if flow_count < 2:
            return alphas
        # Best paths: largest l-hat^2 / rtt (proxy for available quality).
        quality: Dict[int, float] = {}
        for flow in self.flows:
            state = self._paths[id(flow)]
            rtt = max(flow.smoothed_rtt(), 1e-4)
            quality[id(flow)] = (state.smoothed ** 2) / rtt
        best_quality = max(quality.values())
        best = {key for key, value in quality.items()
                if value >= best_quality * (1 - 1e-9)}
        # Largest-window paths.
        max_window = max(self._window_packets(flow) for flow in self.flows)
        largest = {id(flow) for flow in self.flows
                   if self._window_packets(flow) >= max_window * (1 - 1e-9)}
        collected = best - largest
        if not collected:
            return alphas
        for key in collected:
            alphas[key] = 1.0 / (flow_count * len(collected))
        for key in largest:
            alphas[key] = -1.0 / (flow_count * len(largest))
        return alphas

    def _increase(self, flow: WindowedFlow, acked_bytes: int) -> None:
        window = self._window_packets(flow)
        rtt = max(flow.smoothed_rtt(), 1e-4)
        denominator = sum(
            self._window_packets(peer) / max(peer.smoothed_rtt(), 1e-4)
            for peer in self.flows)
        if denominator <= 0.0:
            denominator = window / rtt
        alpha = self._alphas().get(id(flow), 0.0)
        acked_packets = acked_bytes / flow.mss
        increase_packets = ((window / (rtt * rtt)) / (denominator ** 2)
                            + alpha / window) * acked_packets
        # OLIA's negative alpha term may shrink the increase below zero;
        # the kernel clamps so a path never decreases without a loss.
        flow.cwnd += max(increase_packets, 0.0) * flow.mss


_CONTROLLERS = {
    "reno": RenoController,
    "coupled": CoupledController,
    "olia": OliaController,
}


def make_controller(name: str) -> CongestionController:
    """Instantiate a controller by its paper name: reno/coupled/olia."""
    try:
        return _CONTROLLERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown congestion controller {name!r}; "
            f"expected one of {sorted(_CONTROLLERS)}") from None

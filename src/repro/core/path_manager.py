"""Subflow establishment policy (client side).

Section 2.2.1: the client opens the first subflow over its default
path (WiFi); once that subflow completes the MP_CAPABLE handshake, the
client opens an MP_JOIN subflow from each additional local interface
to the server address it already knows, and -- when the multi-homed
server advertises a second address with ADD_ADDR -- from every local
interface to the new address as well.  (The server never connects
inward: the client is behind a NAT.)

Section 4.1.2 evaluates a modification: *simultaneous SYNs*, where the
client, knowing a priori that the server is MPTCP-capable and holding
a pre-authorized key, fires the JOIN SYNs at connect time instead of
waiting one default-path RTT.  ``simultaneous_syn=True`` enables it.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.connection import MptcpConnection


class PathManager:
    """Decides which (local, remote) address pairs become subflows."""

    def __init__(self, connection: "MptcpConnection",
                 local_addrs: List[str], remote_addr: str,
                 simultaneous_syn: bool = False,
                 max_subflows: Optional[int] = None) -> None:
        if not local_addrs:
            raise ValueError("at least one local address is required")
        self.connection = connection
        self.local_addrs = list(local_addrs)
        self.primary_remote = remote_addr
        self.simultaneous_syn = simultaneous_syn
        self.max_subflows = max_subflows
        self._known_remotes: List[str] = [remote_addr]
        self._pairs_opened: Set[Tuple[str, str]] = set()
        self._subflow_by_pair: dict = {}
        #: Local addresses the OS currently reports as down; advertised
        #: to the peer (MP_FAIL-style) so it stops using them at once.
        self.down_locals: Set[str] = set()

    def start(self) -> None:
        """Open the initial subflow (and, if simultaneous, the joins)."""
        self._open(self.local_addrs[0], self.primary_remote)
        if self.simultaneous_syn:
            for local in self.local_addrs[1:]:
                self._open(local, self.primary_remote)

    def on_initial_established(self) -> None:
        """Default policy: join from the other interfaces now."""
        for local in self.local_addrs[1:]:
            self._open(local, self.primary_remote)

    def on_add_addr(self, addrs: tuple) -> None:
        """The server advertised more addresses: join toward each."""
        for remote in addrs:
            if remote not in self._known_remotes:
                self._known_remotes.append(remote)
            for local in self.local_addrs:
                self._open(local, remote)

    def _open(self, local: str, remote: str) -> None:
        if getattr(self.connection, "is_fallback", False):
            return  # no new subflows after fallback (RFC 6824 S3.6)
        pair = (local, remote)
        if pair in self._pairs_opened:
            return
        if (self.max_subflows is not None
                and len(self._pairs_opened) >= self.max_subflows):
            return
        self._pairs_opened.add(pair)
        subflow = self.connection.open_subflow(local, remote)
        self._subflow_by_pair[pair] = subflow
        sim = getattr(self.connection, "sim", None)  # None in test fakes
        if sim is not None and sim.trace.enabled:
            sim.trace.emit(sim.now, "path.open",
                           subflow=getattr(subflow, "index", None),
                           local=local, remote=remote,
                           initial=getattr(subflow, "is_initial", None))

    # ------------------------------------------------------------------
    # Failure and recovery (mobility support)
    # ------------------------------------------------------------------

    def on_subflow_failed(self, subflow) -> None:
        """Note a dead subflow so its pair may be reopened later."""
        for pair, existing in list(self._subflow_by_pair.items()):
            if existing is subflow:
                self._pairs_opened.discard(pair)
                del self._subflow_by_pair[pair]

    def on_interface_down(self, local: str) -> None:
        """The OS reported the interface lost connectivity: fail its
        subflows now so the connection reinjects their data at once
        instead of waiting out retransmission timeouts, and advertise
        the dead address to the peer on the surviving subflows."""
        self.down_locals.add(local)
        sim = getattr(self.connection, "sim", None)  # None in test fakes
        if sim is not None and sim.trace.enabled:
            sim.trace.emit(sim.now, "path.down", local=local)
        for pair, subflow in list(self._subflow_by_pair.items()):
            if pair[0] == local:
                self.connection.kill_subflow(subflow)
        self.connection.push()  # surviving subflows carry the signal

    def on_interface_up(self, local: str) -> None:
        """An interface recovered (e.g. WiFi re-associated): reopen its
        subflows toward every known server address.

        A pair is reclaimed when its subflow failed outright, and also
        when its endpoint silently gave up mid-handshake (SYN retries
        exhausted leave the endpoint "closed" without ever having
        established) — otherwise the dead pair blocks reopening and an
        unestablished connection can never recover.
        """
        self.down_locals.discard(local)
        sim = getattr(self.connection, "sim", None)  # None in test fakes
        if sim is not None and sim.trace.enabled:
            sim.trace.emit(sim.now, "path.up", local=local)
        for remote in self._known_remotes:
            pair = (local, remote)
            existing = self._subflow_by_pair.get(pair)
            if existing is not None and existing.endpoint is not None:
                endpoint = existing.endpoint
                dead = (endpoint.state == "failed"
                        or (endpoint.state == "closed"
                            and endpoint.stats.established_at is None))
                if dead:
                    self._pairs_opened.discard(pair)
                    del self._subflow_by_pair[pair]
            self._open(local, remote)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<PathManager {len(self._pairs_opened)} pairs, "
                f"simultaneous={self.simultaneous_syn}>")

"""Subflow establishment policy (client side).

Section 2.2.1: the client opens the first subflow over its default
path (WiFi); once that subflow completes the MP_CAPABLE handshake, the
client opens an MP_JOIN subflow from each additional local interface
to the server address it already knows, and -- when the multi-homed
server advertises a second address with ADD_ADDR -- from every local
interface to the new address as well.  (The server never connects
inward: the client is behind a NAT.)

Section 4.1.2 evaluates a modification: *simultaneous SYNs*, where the
client, knowing a priori that the server is MPTCP-capable and holding
a pre-authorized key, fires the JOIN SYNs at connect time instead of
waiting one default-path RTT.  ``simultaneous_syn=True`` enables it.

Like the scheduler, the establishment policy is a pluggable strategy
(:func:`make_path_manager`), mirroring the path managers Linux MPTCP
ships:

=================  ===================================================
``fullmesh``       The default above: every local x remote pair.
``primary-backup`` Same pair coverage, but every join is opened in
                   backup mode -- the extra paths are established and
                   kept warm yet only carry data once the primary
                   fails (Paasch et al.'s handover configuration,
                   without having to enumerate path names in
                   ``backup_paths``).
``ndiffports``     N parallel subflows over the *single* default
                   address pair, distinguished only by source port
                   (``ndiffports:ports=2``) -- the ECMP-exploiting
                   manager from the datacenter MPTCP work; ADD_ADDR
                   advertisements are ignored.
=================  ===================================================
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Type, TYPE_CHECKING

from repro.core.scheduler import parse_strategy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.connection import MptcpConnection


class PathManager:
    """Decides which (local, remote) address pairs become subflows.

    This base class *is* the full-mesh strategy; subclasses adjust
    which pairs open (:meth:`start` / :meth:`on_add_addr` /
    :meth:`on_initial_established`) or how
    (:meth:`_open_subflow`).
    """

    name = "fullmesh"

    def __init__(self, connection: "MptcpConnection",
                 local_addrs: List[str], remote_addr: str,
                 simultaneous_syn: bool = False,
                 max_subflows: Optional[int] = None) -> None:
        if not local_addrs:
            raise ValueError("at least one local address is required")
        self.connection = connection
        self.local_addrs = list(local_addrs)
        self.primary_remote = remote_addr
        self.simultaneous_syn = simultaneous_syn
        self.max_subflows = max_subflows
        self._known_remotes: List[str] = [remote_addr]
        #: Keys of the open attempts made so far.  A key is normally
        #: the (local, remote) pair; ndiffports appends a port ordinal
        #: so several subflows may share one address pair.
        self._pairs_opened: Set[tuple] = set()
        self._subflow_by_pair: dict = {}
        #: Local addresses the OS currently reports as down; advertised
        #: to the peer (MP_FAIL-style) so it stops using them at once.
        self.down_locals: Set[str] = set()

    def start(self) -> None:
        """Open the initial subflow (and, if simultaneous, the joins)."""
        self._open(self.local_addrs[0], self.primary_remote)
        if self.simultaneous_syn:
            for local in self.local_addrs[1:]:
                self._open(local, self.primary_remote)

    def on_initial_established(self) -> None:
        """Default policy: join from the other interfaces now."""
        for local in self.local_addrs[1:]:
            self._open(local, self.primary_remote)

    def on_add_addr(self, addrs: tuple) -> None:
        """The server advertised more addresses: join toward each."""
        for remote in addrs:
            if remote not in self._known_remotes:
                self._known_remotes.append(remote)
            for local in self.local_addrs:
                self._open(local, remote)

    def _open_subflow(self, local: str, remote: str):
        """Actually open one subflow; strategies override the *how*."""
        return self.connection.open_subflow(local, remote)

    def _open(self, local: str, remote: str,
              key: Optional[tuple] = None) -> None:
        if getattr(self.connection, "is_fallback", False):
            return  # no new subflows after fallback (RFC 6824 S3.6)
        if key is None:
            key = (local, remote)
        if key in self._pairs_opened:
            return
        if (self.max_subflows is not None
                and len(self._pairs_opened) >= self.max_subflows):
            return
        self._pairs_opened.add(key)
        subflow = self._open_subflow(local, remote)
        self._subflow_by_pair[key] = subflow
        sim = getattr(self.connection, "sim", None)  # None in test fakes
        if sim is not None and sim.trace.enabled:
            sim.trace.emit(sim.now, "path.open",
                           subflow=getattr(subflow, "index", None),
                           local=local, remote=remote,
                           initial=getattr(subflow, "is_initial", None))

    # ------------------------------------------------------------------
    # Failure and recovery (mobility support)
    # ------------------------------------------------------------------

    def on_subflow_failed(self, subflow) -> None:
        """Note a dead subflow so its pair may be reopened later."""
        for pair, existing in list(self._subflow_by_pair.items()):
            if existing is subflow:
                self._pairs_opened.discard(pair)
                del self._subflow_by_pair[pair]

    def on_interface_down(self, local: str) -> None:
        """The OS reported the interface lost connectivity: fail its
        subflows now so the connection reinjects their data at once
        instead of waiting out retransmission timeouts, and advertise
        the dead address to the peer on the surviving subflows."""
        self.down_locals.add(local)
        sim = getattr(self.connection, "sim", None)  # None in test fakes
        if sim is not None and sim.trace.enabled:
            sim.trace.emit(sim.now, "path.down", local=local)
        for pair, subflow in list(self._subflow_by_pair.items()):
            if pair[0] == local:
                self.connection.kill_subflow(subflow)
        self.connection.push()  # surviving subflows carry the signal

    def _reclaim_if_dead(self, key: tuple) -> None:
        """Forget a key whose subflow died (failed outright, or gave up
        mid-handshake: SYN retries exhausted leave the endpoint
        "closed" without ever having established) so it can reopen."""
        existing = self._subflow_by_pair.get(key)
        if existing is not None and existing.endpoint is not None:
            endpoint = existing.endpoint
            dead = (endpoint.state == "failed"
                    or (endpoint.state == "closed"
                        and endpoint.stats.established_at is None))
            if dead:
                self._pairs_opened.discard(key)
                del self._subflow_by_pair[key]

    def on_interface_up(self, local: str) -> None:
        """An interface recovered (e.g. WiFi re-associated): reopen its
        subflows toward every known server address.

        A pair is reclaimed when its subflow failed outright, and also
        when its endpoint silently gave up mid-handshake — otherwise
        the dead pair blocks reopening and an unestablished connection
        can never recover.
        """
        self.down_locals.discard(local)
        sim = getattr(self.connection, "sim", None)  # None in test fakes
        if sim is not None and sim.trace.enabled:
            sim.trace.emit(sim.now, "path.up", local=local)
        for remote in self._known_remotes:
            self._reclaim_if_dead((local, remote))
            self._open(local, remote)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} {len(self._pairs_opened)} pairs, "
                f"simultaneous={self.simultaneous_syn}>")


class PrimaryBackupPathManager(PathManager):
    """Full-mesh pair coverage with every join in backup mode.

    The joins complete their handshakes (so failover needs no new
    three-way handshake) but advertise the B-bit, and the connection's
    allocator keeps them idle while any regular subflow is
    operational.
    """

    name = "primary-backup"

    def _open_subflow(self, local: str, remote: str):
        return self.connection.open_subflow(local, remote, backup=True)


class NDiffPortsPathManager(PathManager):
    """N subflows over the default address pair, split by source port.

    Exploits ECMP-style load balancing rather than genuine multi-homing
    (the datacenter path manager); extra local interfaces and ADD_ADDR
    advertisements are deliberately ignored.  Each open draws a fresh
    ephemeral source port, which is what distinguishes the subflows.
    """

    name = "ndiffports"

    def __init__(self, connection: "MptcpConnection",
                 local_addrs: List[str], remote_addr: str,
                 simultaneous_syn: bool = False,
                 max_subflows: Optional[int] = None,
                 ports: int = 2) -> None:
        super().__init__(connection, local_addrs, remote_addr,
                         simultaneous_syn=simultaneous_syn,
                         max_subflows=max_subflows)
        if ports < 1:
            raise ValueError("ndiffports needs at least one port")
        self.ports = int(ports)

    def _key(self, ordinal: int) -> tuple:
        return (self.local_addrs[0], self.primary_remote, ordinal)

    def start(self) -> None:
        self._open(self.local_addrs[0], self.primary_remote,
                   key=self._key(0))
        if self.simultaneous_syn:
            self._open_extra_ports()

    def on_initial_established(self) -> None:
        self._open_extra_ports()

    def _open_extra_ports(self) -> None:
        for ordinal in range(1, self.ports):
            self._open(self.local_addrs[0], self.primary_remote,
                       key=self._key(ordinal))

    def on_add_addr(self, addrs: tuple) -> None:
        """Single address pair by design: advertisements are ignored."""

    def on_interface_up(self, local: str) -> None:
        self.down_locals.discard(local)
        sim = getattr(self.connection, "sim", None)  # None in test fakes
        if sim is not None and sim.trace.enabled:
            sim.trace.emit(sim.now, "path.up", local=local)
        if local != self.local_addrs[0]:
            return
        for ordinal in range(self.ports):
            self._reclaim_if_dead(self._key(ordinal))
            self._open(local, self.primary_remote, key=self._key(ordinal))


_PATH_MANAGERS: Dict[str, Type[PathManager]] = {
    cls.name: cls for cls in (PathManager, PrimaryBackupPathManager,
                              NDiffPortsPathManager)}


def path_manager_names() -> List[str]:
    """The registered path-manager strategy names, sorted."""
    return sorted(_PATH_MANAGERS)


def make_path_manager(spec: str, connection: "MptcpConnection",
                      local_addrs: List[str], remote_addr: str,
                      simultaneous_syn: bool = False,
                      max_subflows: Optional[int] = None) -> PathManager:
    """Build a path manager from a strategy spec.

    Specs use the scheduler syntax: ``fullmesh`` (the default),
    ``primary-backup``, or ``ndiffports:ports=3``.
    """
    name, params = parse_strategy(spec)
    cls = _PATH_MANAGERS.get(name)
    if cls is None:
        raise ValueError(
            f"unknown path manager {name!r}; expected one of "
            f"{path_manager_names()}")
    kwargs = {}
    if cls is NDiffPortsPathManager:
        if "ports" in params:
            kwargs["ports"] = int(params.pop("ports"))
    if params:
        raise ValueError(
            f"bad path-manager spec {spec!r}: unknown parameters "
            f"{sorted(params)}")
    return cls(connection, local_addrs, remote_addr,
               simultaneous_syn=simultaneous_syn,
               max_subflows=max_subflows, **kwargs)

"""One MPTCP subflow: a TCP endpoint bound into a connection.

The :class:`Subflow` implements the :class:`repro.tcp.endpoint.TcpDelegate`
protocol, wiring the generic TCP machinery to the MPTCP layer:

* handshakes carry MP_CAPABLE (initial subflow) or MP_JOIN (additional
  subflows) options, plus the server's ADD_ADDR advertisement;
* outgoing data is pulled from the connection's scheduler and stamped
  with a DSS mapping;
* incoming in-subflow-order data is pushed, mapping applied, into the
  connection-level reorder buffer where out-of-order delay is measured;
* every received segment's DATA_ACK and window update the connection's
  send-side flow control.
"""

from __future__ import annotations

from typing import Optional, Tuple, TYPE_CHECKING

from repro.core.options import DssMapping, MptcpOptions
from repro.obs.metrics import BYTES_EDGES
from repro.tcp.endpoint import TcpEndpoint
from repro.tcp.segment import Segment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.connection import MptcpConnection


class Subflow:
    """Delegate tying one :class:`TcpEndpoint` to an MPTCP connection."""

    def __init__(self, connection: "MptcpConnection", path_name: str,
                 is_initial: bool, backup: bool = False) -> None:
        self.connection = connection
        self.path_name = path_name
        self.is_initial = is_initial
        self.backup = backup
        #: Position in the connection's subflow list (set on append);
        #: the ``subflow=`` tag on trace events.
        self.index: Optional[int] = None
        self.endpoint: Optional[TcpEndpoint] = None
        #: Set when unmappable data arrived and the subflow must tell
        #: the peer (MP_FAIL) before being torn down.
        self.mp_fail_pending = False

    # ------------------------------------------------------------------
    # Scheduler-facing view
    # ------------------------------------------------------------------

    @property
    def established(self) -> bool:
        return (self.endpoint is not None
                and self.endpoint.state in ("established", "close_wait"))

    def srtt(self) -> float:
        assert self.endpoint is not None
        return self.endpoint.smoothed_rtt()

    def can_send(self) -> bool:
        """True when established with congestion-window budget left."""
        return (self.established
                and self.endpoint.flight_bytes < int(self.endpoint.cwnd))

    def cwnd_bytes(self) -> int:
        """Current congestion window in bytes (0 when unbound)."""
        return 0 if self.endpoint is None else int(self.endpoint.cwnd)

    def pump(self) -> None:
        """Give the subflow a chance to transmit (scheduler push)."""
        if self.endpoint is not None:
            self.endpoint.pump()

    # ------------------------------------------------------------------
    # TcpDelegate: handshake options
    # ------------------------------------------------------------------

    def syn_options(self, endpoint: TcpEndpoint) -> Optional[MptcpOptions]:
        if self.connection.is_fallback:
            return None  # plain fallback: no MPTCP signalling at all
        if self.is_initial:
            return MptcpOptions(mp_capable=True, token=self.connection.token)
        return MptcpOptions(mp_join=True, token=self.connection.token,
                            backup=self.backup)

    def synack_options(self, endpoint: TcpEndpoint) -> Optional[MptcpOptions]:
        if self.connection.is_fallback:
            return None
        # The multi-homed server advertises its additional addresses on
        # the initial subflow (the client is NATed, so joins must be
        # client-initiated; see Section 2.2.1).
        add_addr: Tuple[str, ...] = ()
        if self.is_initial:
            add_addr = self.connection.addresses_to_advertise()
        if self.is_initial:
            return MptcpOptions(mp_capable=True, token=self.connection.token,
                                add_addr=add_addr)
        return MptcpOptions(mp_join=True, token=self.connection.token)

    def on_handshake_options(self, endpoint: TcpEndpoint,
                             options: Optional[MptcpOptions]) -> None:
        connection = self.connection
        if connection.is_fallback:
            return
        mptcp = (options is not None
                 and (options.mp_capable or options.mp_join))
        trace = connection.sim.trace
        if trace.enabled and mptcp:
            trace.emit(connection.sim.now,
                       "mptcp.capable" if options.mp_capable
                       else "mptcp.join",
                       subflow=self.index, path=self.path_name,
                       status="options-received", role=connection.role,
                       token=options.token, backup=options.backup)
        if not mptcp and connection.role == "client":
            # Our SYN carried MPTCP options; the answer has none: a
            # middlebox stripped them (or the peer is plain TCP).
            if self.is_initial:
                connection.fall_back("plain", "mp-capable-missing",
                                     survivor=self)
            else:
                connection.on_join_rejected(self)
            return
        if options is None:
            return
        if options.mp_join and options.backup:
            self.backup = True  # the peer flagged this path as backup
        if options.add_addr:
            connection.on_add_addr(options.add_addr)

    def on_established(self, endpoint: TcpEndpoint) -> None:
        self.connection.on_subflow_established(self)

    # ------------------------------------------------------------------
    # TcpDelegate: transmit path
    # ------------------------------------------------------------------

    def pull_data(self, endpoint: TcpEndpoint,
                  max_bytes: int) -> Optional[Tuple[int, int]]:
        allocation = self.connection.allocate(self, max_bytes)
        metrics = self.connection._metrics
        if allocation is not None and metrics.enabled:
            # Per-path contribution and path-state samples, taken at
            # each scheduler grant (passive: observation only).
            path = self.path_name
            metrics.counter(f"path.{path}.bytes").inc(allocation[1])
            metrics.histogram(f"path.{path}.srtt_s").observe(
                endpoint.smoothed_rtt())
            metrics.histogram(f"path.{path}.cwnd_bytes",
                              BYTES_EDGES).observe(float(endpoint.cwnd))
        return allocation

    def data_options(self, endpoint: TcpEndpoint, ssn: int, dsn: int,
                     length: int) -> Optional[MptcpOptions]:
        if self.connection.is_fallback:
            # Plain fallback sends no options; the infinite mapping
            # makes an explicit per-segment mapping redundant.
            return None
        mapping = DssMapping(dsn=dsn, ssn=ssn, length=length)
        return MptcpOptions(
            dss=mapping,
            data_ack=self.connection.data_ack_value(),
            data_fin_dsn=self.connection.data_fin_to_signal(),
            dead_addrs=self.connection.dead_addrs_to_signal(),
            mp_fail=self.mp_fail_pending)

    def ack_options(self, endpoint: TcpEndpoint) -> Optional[MptcpOptions]:
        connection = self.connection
        if connection.is_fallback:
            if (connection.fallback_mode == "infinite"
                    and self is connection._fallback_subflow):
                # Keep signalling MP_FAIL so the peer (which may still
                # believe in the DSS) converges onto the same fallback.
                return MptcpOptions(
                    mp_fail=True, data_ack=connection.data_ack_value())
            return None
        return MptcpOptions(
            data_ack=connection.data_ack_value(),
            data_fin_dsn=connection.data_fin_to_signal(),
            dead_addrs=connection.dead_addrs_to_signal(),
            mp_fail=self.mp_fail_pending)

    def receive_window(self, endpoint: TcpEndpoint) -> int:
        return self.connection.receive_window()

    # ------------------------------------------------------------------
    # TcpDelegate: receive path
    # ------------------------------------------------------------------

    def on_data(self, endpoint: TcpEndpoint, ssn_start: int, ssn_end: int,
                meta: Tuple[float, Optional[MptcpOptions]]) -> None:
        arrival_time, options = meta
        connection = self.connection
        if connection.is_fallback:
            # Identity mapping: payload starts at subflow seq 1, the
            # DSN space at 0, so dsn = ssn - 1 on the sole subflow.
            if self is connection._fallback_subflow:
                connection.on_subflow_data(self, ssn_start - 1, ssn_end - 1,
                                           arrival_time)
            return
        if options is None or options.dss is None:
            # Mapped data lost its mapping in flight (stripped DSS,
            # or a re-segmenting proxy): Section 3.6 fallback.
            if connection.on_dss_violation(self, "missing-dss"):
                connection.on_subflow_data(self, ssn_start - 1, ssn_end - 1,
                                           arrival_time)
            return
        mapping = options.dss
        if not (mapping.ssn <= ssn_start and ssn_end <= mapping.ssn_end):
            # The mapping no longer describes this payload (sequence-
            # rewriting middlebox): the SSN anchor cannot be trusted.
            if connection.on_dss_violation(self, "mapping-mismatch"):
                connection.on_subflow_data(self, ssn_start - 1, ssn_end - 1,
                                           arrival_time)
            return
        dsn_start = mapping.dsn + (ssn_start - mapping.ssn)
        dsn_end = dsn_start + (ssn_end - ssn_start)
        connection.on_subflow_data(self, dsn_start, dsn_end, arrival_time)

    def on_segment(self, endpoint: TcpEndpoint, segment: Segment) -> None:
        self.connection.on_segment(self, segment)

    def on_peer_fin(self, endpoint: TcpEndpoint) -> None:
        self.connection.on_subflow_peer_fin(self)

    def on_rto(self, endpoint: TcpEndpoint) -> None:
        self.connection.on_subflow_rto(self)

    def has_pending_data(self, endpoint: TcpEndpoint) -> bool:
        return self.connection.has_pending_data()

    def on_failed(self, endpoint: TcpEndpoint) -> None:
        self.connection.on_subflow_failed(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "initial" if self.is_initial else "join"
        state = self.endpoint.state if self.endpoint is not None else "unbound"
        return f"<Subflow {self.path_name} {kind} {state}>"

"""One MPTCP subflow: a TCP endpoint bound into a connection.

The :class:`Subflow` implements the :class:`repro.tcp.endpoint.TcpDelegate`
protocol, wiring the generic TCP machinery to the MPTCP layer:

* handshakes carry MP_CAPABLE (initial subflow) or MP_JOIN (additional
  subflows) options, plus the server's ADD_ADDR advertisement;
* outgoing data is pulled from the connection's scheduler and stamped
  with a DSS mapping;
* incoming in-subflow-order data is pushed, mapping applied, into the
  connection-level reorder buffer where out-of-order delay is measured;
* every received segment's DATA_ACK and window update the connection's
  send-side flow control.
"""

from __future__ import annotations

from typing import Optional, Tuple, TYPE_CHECKING

from repro.core.options import DssMapping, MptcpOptions
from repro.tcp.endpoint import TcpEndpoint
from repro.tcp.segment import Segment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.connection import MptcpConnection


class Subflow:
    """Delegate tying one :class:`TcpEndpoint` to an MPTCP connection."""

    def __init__(self, connection: "MptcpConnection", path_name: str,
                 is_initial: bool, backup: bool = False) -> None:
        self.connection = connection
        self.path_name = path_name
        self.is_initial = is_initial
        self.backup = backup
        self.endpoint: Optional[TcpEndpoint] = None

    # ------------------------------------------------------------------
    # Scheduler-facing view
    # ------------------------------------------------------------------

    @property
    def established(self) -> bool:
        return (self.endpoint is not None
                and self.endpoint.state in ("established", "close_wait"))

    def srtt(self) -> float:
        assert self.endpoint is not None
        return self.endpoint.smoothed_rtt()

    def can_send(self) -> bool:
        """True when established with congestion-window budget left."""
        return (self.established
                and self.endpoint.flight_bytes < int(self.endpoint.cwnd))

    def pump(self) -> None:
        """Give the subflow a chance to transmit (scheduler push)."""
        if self.endpoint is not None:
            self.endpoint.pump()

    # ------------------------------------------------------------------
    # TcpDelegate: handshake options
    # ------------------------------------------------------------------

    def syn_options(self, endpoint: TcpEndpoint) -> MptcpOptions:
        if self.is_initial:
            return MptcpOptions(mp_capable=True, token=self.connection.token)
        return MptcpOptions(mp_join=True, token=self.connection.token,
                            backup=self.backup)

    def synack_options(self, endpoint: TcpEndpoint) -> MptcpOptions:
        # The multi-homed server advertises its additional addresses on
        # the initial subflow (the client is NATed, so joins must be
        # client-initiated; see Section 2.2.1).
        add_addr: Tuple[str, ...] = ()
        if self.is_initial:
            add_addr = self.connection.addresses_to_advertise()
        if self.is_initial:
            return MptcpOptions(mp_capable=True, token=self.connection.token,
                                add_addr=add_addr)
        return MptcpOptions(mp_join=True, token=self.connection.token)

    def on_handshake_options(self, endpoint: TcpEndpoint,
                             options: Optional[MptcpOptions]) -> None:
        if options is None:
            return
        if options.mp_join and options.backup:
            self.backup = True  # the peer flagged this path as backup
        if options.add_addr:
            self.connection.on_add_addr(options.add_addr)

    def on_established(self, endpoint: TcpEndpoint) -> None:
        self.connection.on_subflow_established(self)

    # ------------------------------------------------------------------
    # TcpDelegate: transmit path
    # ------------------------------------------------------------------

    def pull_data(self, endpoint: TcpEndpoint,
                  max_bytes: int) -> Optional[Tuple[int, int]]:
        return self.connection.allocate(self, max_bytes)

    def data_options(self, endpoint: TcpEndpoint, ssn: int, dsn: int,
                     length: int) -> MptcpOptions:
        mapping = DssMapping(dsn=dsn, ssn=ssn, length=length)
        return MptcpOptions(
            dss=mapping,
            data_ack=self.connection.data_ack_value(),
            data_fin_dsn=self.connection.data_fin_to_signal(),
            dead_addrs=self.connection.dead_addrs_to_signal())

    def ack_options(self, endpoint: TcpEndpoint) -> MptcpOptions:
        return MptcpOptions(
            data_ack=self.connection.data_ack_value(),
            data_fin_dsn=self.connection.data_fin_to_signal(),
            dead_addrs=self.connection.dead_addrs_to_signal())

    def receive_window(self, endpoint: TcpEndpoint) -> int:
        return self.connection.receive_window()

    # ------------------------------------------------------------------
    # TcpDelegate: receive path
    # ------------------------------------------------------------------

    def on_data(self, endpoint: TcpEndpoint, ssn_start: int, ssn_end: int,
                meta: Tuple[float, Optional[MptcpOptions]]) -> None:
        arrival_time, options = meta
        if options is None or options.dss is None:
            return  # data without a mapping cannot be placed; drop it
        mapping = options.dss
        dsn_start = mapping.dsn + (ssn_start - mapping.ssn)
        dsn_end = dsn_start + (ssn_end - ssn_start)
        self.connection.on_subflow_data(self, dsn_start, dsn_end,
                                        arrival_time)

    def on_segment(self, endpoint: TcpEndpoint, segment: Segment) -> None:
        self.connection.on_segment(self, segment)

    def on_peer_fin(self, endpoint: TcpEndpoint) -> None:
        self.connection.on_subflow_peer_fin(self)

    def on_rto(self, endpoint: TcpEndpoint) -> None:
        self.connection.on_subflow_rto(self)

    def has_pending_data(self, endpoint: TcpEndpoint) -> bool:
        return self.connection.has_pending_data()

    def on_failed(self, endpoint: TcpEndpoint) -> None:
        self.connection.on_subflow_failed(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "initial" if self.is_initial else "join"
        state = self.endpoint.state if self.endpoint is not None else "unbound"
        return f"<Subflow {self.path_name} {kind} {state}>"

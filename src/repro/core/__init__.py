"""MPTCP: the paper's object of study.

This package implements the Multipath TCP layer on top of
:mod:`repro.tcp` subflows, mirroring the Linux MPTCP v0.86 release the
paper measures:

* :mod:`repro.core.options` -- MP_CAPABLE / MP_JOIN / ADD_ADDR / DSS
  option payloads carried in TCP segments.
* :mod:`repro.core.coupling` -- the three congestion controllers the
  paper compares: uncoupled New Reno (``reno``), the default coupled
  controller (``coupled``, RFC 6356 LIA) and ``olia``.
* :mod:`repro.core.scheduler` -- packet schedulers; the default is the
  Linux lowest-SRTT scheduler.
* :mod:`repro.core.receive_buffer` -- the shared connection-level
  receive buffer with data-sequence reordering and exact out-of-order
  delay accounting (the Section 5.2 metric).
* :mod:`repro.core.subflow` -- one TCP subflow bound into a connection.
* :mod:`repro.core.connection` -- the MPTCP connection: DSN space,
  DATA_ACK flow control, subflow management, optional penalization.
* :mod:`repro.core.path_manager` -- subflow establishment policy:
  the default delayed MP_JOIN handshake and the paper's
  simultaneous-SYN modification (Section 4.1.2).
"""

from repro.core.options import DssMapping, MptcpOptions
from repro.core.coupling import (
    CongestionController,
    CoupledController,
    OliaController,
    RenoController,
    make_controller,
)
from repro.core.scheduler import (
    LowestRttScheduler,
    RoundRobinScheduler,
    Scheduler,
    make_scheduler,
)
from repro.core.receive_buffer import ConnectionReceiveBuffer
from repro.core.connection import MptcpConfig, MptcpConnection
from repro.core.path_manager import PathManager

__all__ = [
    "DssMapping",
    "MptcpOptions",
    "CongestionController",
    "RenoController",
    "CoupledController",
    "OliaController",
    "make_controller",
    "Scheduler",
    "LowestRttScheduler",
    "RoundRobinScheduler",
    "make_scheduler",
    "ConnectionReceiveBuffer",
    "MptcpConfig",
    "MptcpConnection",
    "PathManager",
]

"""The MPTCP connection: DSN space, subflows, flow control.

One :class:`MptcpConnection` object lives at each end of a multipath
connection (the roles are symmetric; "client" additionally runs the
path manager, because the NATed mobile host must initiate every
subflow).  Responsibilities:

* allocating connection-level (data) sequence numbers to subflows as
  the scheduler admits them;
* connection-level flow control against the peer's shared receive
  buffer (DATA_ACK plus the window advertised on subflow ACKs);
* reordering received data by DSN in the shared receive buffer, where
  out-of-order delay is measured;
* DATA_FIN stream termination;
* the RFC 6824 Section 3.6 *fallback* state machine: when a middlebox
  strips MP_CAPABLE from the handshake the connection continues as
  plain TCP; when the DSS mapping disappears (or stops matching) after
  establishment, a single-subflow connection falls back to the
  infinite mapping, while a multi-subflow connection signals MP_FAIL
  and tears down the offending subflow only;
* the optional *penalization* mechanism of Linux MPTCP v0.86 -- halving
  the window of the subflow responsible for receive-buffer blockage --
  which the paper explicitly removes (Section 3.1, "No subflow
  penalty"); it is therefore **off by default** here, and available for
  the ablation benchmark.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.coupling import make_controller
from repro.core.options import MptcpOptions
from repro.core.receive_buffer import ConnectionReceiveBuffer
from repro.core.scheduler import make_scheduler
from repro.core.subflow import Subflow
from repro.netsim.host import Host
from repro.netsim.packet import Packet
from repro.sim.engine import Simulator
from repro.tcp.endpoint import TcpConfig, TcpEndpoint, TcpListener
from repro.tcp.segment import Flags, Segment

_tokens = itertools.count(1)


def path_name_of(address: str) -> str:
    """Short path label from an interface address, e.g. client.att -> att."""
    return address.split(".", 1)[1] if "." in address else address


@dataclass(frozen=True)
class MptcpConfig:
    """Connection-level knobs, defaulted to the paper's setup."""

    controller: str = "coupled"
    scheduler: str = "minrtt"
    #: Path-manager strategy spec (see
    #: :func:`repro.core.path_manager.make_path_manager`): ``fullmesh``
    #: (the Linux default), ``primary-backup``, or ``ndiffports[:ports=N]``.
    path_manager: str = "fullmesh"
    rcv_buffer: int = 8 * 1024 * 1024
    penalization: bool = False
    simultaneous_syn: bool = False
    max_subflows: Optional[int] = None
    #: Path names (e.g. ``("att",)``) to open in backup mode: they
    #: carry data only while no regular subflow is operational
    #: (Paasch et al.'s "backup mode" handover configuration).
    backup_paths: tuple = ()
    tcp: TcpConfig = field(default_factory=TcpConfig)


class MptcpConnection:
    """One side of a Multipath TCP connection."""

    def __init__(self, sim: Simulator, host: Host, role: str,
                 remote_port: int, config: MptcpConfig, token: int,
                 server_addrs: Optional[List[str]] = None,
                 name: str = "mptcp") -> None:
        if role not in ("client", "server"):
            raise ValueError(f"bad role {role!r}")
        self.sim = sim
        self.host = host
        self.role = role
        self.remote_port = remote_port
        self.config = config
        self.token = token
        self.name = name
        self.controller = make_controller(config.controller)
        self.scheduler = make_scheduler(config.scheduler)
        if self.scheduler.needs_path_metrics:
            # Metric-driven schedulers feed off the trace bus; install
            # the aggregating tap before anything caches ``sim.trace``.
            from repro.obs.pathmetrics import ensure_path_metrics
            ensure_path_metrics(sim)
        # Trace bus, cached at construction (hot-path probe sites);
        # install a real bus on the simulator before building
        # connections.
        self._trace = sim.trace
        # Metrics registry, cached under the same contract as the bus.
        self._metrics = sim.metrics
        #: Addresses this (server) side may advertise via ADD_ADDR.
        self.server_addrs = list(server_addrs or [])

        self.subflows: List[Subflow] = []
        self.path_manager = None  # set by client-side factory

        # Send-side state (connection level).
        self.total_queued = 0
        self.next_dsn = 0
        self.data_acked = 0
        self.peer_window = 64 * 1024
        self.bytes_allocated: Dict[str, int] = {}
        self.bytes_reinjected: Dict[str, int] = {}
        self._close_requested = False
        self._send_complete_handled = False
        #: Un-DATA_ACKed DSN ranges in flight per subflow:
        #: subflow.index -> list of [dsn_start, dsn_end, reinjected].
        #: Keyed by the persistent index, never ``id()`` -- ids are
        #: recycled by the allocator, so an id key can silently alias a
        #: dead subflow's state onto a later one.
        self._outstanding: Dict[int, List[List]] = {}
        #: DSN ranges reclaimed from a timed-out/failed subflow,
        #: awaiting retransmission on a healthy one:
        #: [start, end, origin_subflow_index].
        self._reinjection_queue: List[List[int]] = []
        #: Redundant-scheduler copies: [start, end, target_subflow_index].
        self._duplication_queue: List[List[int]] = []

        # Receive-side state.
        self.receive_buffer = ConnectionReceiveBuffer(
            capacity=config.rcv_buffer, clock=lambda: self.sim.now,
            trace=sim.trace)
        self.receive_buffer.on_deliver = self._deliver_to_app
        self._peer_data_fin: Optional[int] = None
        self._peer_fin_delivered = False

        # RFC 6824 Section 3.6 fallback state.  ``None`` means full
        # MPTCP; "plain" is the handshake fallback (the peer, or a
        # middlebox, removed MP_CAPABLE); "infinite" is the
        # infinite-mapping fallback after establishment (DSS lost or
        # inconsistent with a single subflow ever carrying data).
        self.fallback_mode: Optional[str] = None
        self.fallback_reason: Optional[str] = None
        self.fallback_at: Optional[float] = None
        #: The one subflow that carries the connection after fallback.
        self._fallback_subflow: Optional[Subflow] = None

        # Penalization bookkeeping (subflow.index -> last penalty time).
        self._last_penalty: Dict[int, float] = {}

        # Application callbacks.
        self.on_receive: Optional[Callable[[int], None]] = None
        self.on_established: Optional[Callable[[], None]] = None
        self.on_close: Optional[Callable[[], None]] = None

        self.established_at: Optional[float] = None

        # Stateful schedulers bind to their connection (and, for
        # metric-driven ones, to the path-metrics tap) last, once the
        # trace plumbing above is settled.
        self.scheduler.attach(self)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def client(cls, sim: Simulator, host: Host, local_addrs: List[str],
               remote_addr: str, remote_port: int, config: MptcpConfig,
               name: str = "mptcp-client") -> "MptcpConnection":
        """Build a client-side connection with its path manager.

        ``local_addrs[0]`` is the default path (WiFi in the paper's
        testbed); the remaining addresses join once permitted by the
        subflow-establishment policy.
        """
        from repro.core.path_manager import make_path_manager  # cycle guard
        connection = cls(sim, host, "client", remote_port, config,
                         token=next(_tokens), name=name)
        connection.path_manager = make_path_manager(
            config.path_manager, connection, local_addrs, remote_addr,
            simultaneous_syn=config.simultaneous_syn,
            max_subflows=config.max_subflows)
        return connection

    def connect(self) -> None:
        """Start the connection (client role): open the initial subflow."""
        if self.role != "client":
            raise RuntimeError("connect() is for the client role")
        assert self.path_manager is not None
        self.path_manager.start()

    def open_subflow(self, local_addr: str, remote_addr: str,
                     backup: Optional[bool] = None) -> Subflow:
        """Create and actively open one subflow (client side).

        A subflow carries MP_CAPABLE (initial) rather than MP_JOIN as
        long as the server cannot know this connection yet — nothing
        has ever established — and no other initial subflow is still
        mid-handshake.  Merely having *tried* before must not demote a
        reopened subflow to a join: if the first SYN died (interface
        outage during the handshake), a join would sit in the server's
        pending queue forever and the connection would never establish.

        ``backup`` overrides the config's ``backup_paths`` rule (used
        by the primary-backup path manager, which opens *every* join in
        backup mode regardless of path name); ``None`` keeps the
        default behaviour.  The initial subflow is never backup.
        """
        live_initial = any(
            subflow.is_initial and subflow.endpoint is not None
            and subflow.endpoint.state not in ("closed", "failed")
            for subflow in self.subflows)
        is_initial = self.established_at is None and not live_initial
        path_name = path_name_of(local_addr)
        if backup is None:
            backup = path_name in self.config.backup_paths
        subflow = Subflow(self, path_name, is_initial,
                          backup=(not is_initial and backup))
        endpoint = TcpEndpoint(
            self.sim, self.host, local_addr, self.host.ephemeral_port(),
            remote_addr, self.remote_port, self.config.tcp,
            self.controller, delegate=subflow,
            name=f"{self.name}.{subflow.path_name}")
        subflow.endpoint = endpoint
        self.subflows.append(subflow)
        subflow.index = len(self.subflows) - 1
        endpoint.trace_sf = subflow.index
        if (self.fallback_mode is not None and is_initial
                and self._fallback_subflow is None):
            self._fallback_subflow = subflow
        endpoint.connect()
        return subflow

    def accept_subflow(self, packet: Packet, is_initial: bool) -> Subflow:
        """Create one subflow in response to a received SYN (server)."""
        segment = packet.segment
        subflow = Subflow(self, path_name_of(packet.src), is_initial)
        endpoint = TcpEndpoint(
            self.sim, self.host, packet.dst, segment.dst_port,
            packet.src, segment.src_port, self.config.tcp,
            self.controller, delegate=subflow,
            name=f"{self.name}.{subflow.path_name}")
        subflow.endpoint = endpoint
        self.subflows.append(subflow)
        subflow.index = len(self.subflows) - 1
        endpoint.trace_sf = subflow.index
        if (self.fallback_mode is not None and is_initial
                and self._fallback_subflow is None):
            self._fallback_subflow = subflow
        endpoint.accept(packet)
        return subflow

    def addresses_to_advertise(self) -> tuple:
        """Extra server addresses for the initial subflow's ADD_ADDR."""
        if self.role != "server" or not self.subflows:
            return ()
        initial = self.subflows[0]
        assert initial.endpoint is not None
        in_use = initial.endpoint.local_addr
        return tuple(addr for addr in self.server_addrs if addr != in_use)

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------

    def send(self, nbytes: int) -> None:
        """Queue ``nbytes`` of connection-level data for transmission."""
        if nbytes < 0:
            raise ValueError("cannot send a negative byte count")
        self.total_queued += nbytes
        self.push()

    def close(self) -> None:
        """No more data: signal DATA_FIN once everything is delivered."""
        self._close_requested = True
        self.push()
        self._check_send_complete()

    @property
    def established(self) -> bool:
        return any(subflow.established for subflow in self.subflows)

    def established_subflows(self) -> List[Subflow]:
        return [subflow for subflow in self.subflows if subflow.established]

    # ------------------------------------------------------------------
    # Fallback (RFC 6824 Section 3.6)
    # ------------------------------------------------------------------

    @property
    def is_fallback(self) -> bool:
        return self.fallback_mode is not None

    def fall_back(self, mode: str, reason: str,
                  survivor: Optional[Subflow] = None) -> None:
        """Drop to single-path operation on ``survivor``.

        ``mode`` is "plain" (handshake fallback: no MPTCP options at
        all from here on) or "infinite" (established, then lost the
        DSS: data continues under the implicit identity mapping).
        Idempotent -- the first fallback wins.  Every other live
        subflow is deregistered: an MPTCP host that has fallen back
        must not keep half-open joins around (RFC 6824 forbids new
        subflows after fallback).
        """
        if mode not in ("plain", "infinite"):
            raise ValueError(f"bad fallback mode {mode!r}")
        if self.fallback_mode is not None:
            return
        if survivor is None:
            survivor = next(
                (subflow for subflow in self.subflows
                 if subflow.is_initial and subflow.endpoint is not None
                 and subflow.endpoint.state not in ("closed", "failed")),
                None)
        self.fallback_mode = mode
        self.fallback_reason = reason
        self.fallback_at = self.sim.now
        self._fallback_subflow = survivor
        # Single-path from here on: pending redundant copies for the
        # deregistered siblings are unservable.
        self._duplication_queue.clear()
        if self._trace.enabled:
            self._trace.emit(
                self.sim.now, "mptcp.fallback",
                subflow=None if survivor is None else survivor.index,
                mode=mode, reason=reason, role=self.role,
                path=None if survivor is None else survivor.path_name)
        for subflow in self.subflows:
            if subflow is survivor or subflow.endpoint is None:
                continue
            if subflow.endpoint.state not in ("closed", "failed"):
                subflow.endpoint.deregister()
        self.push()

    def _identity_consistent(self, subflow: Subflow) -> bool:
        """May this subflow fall back to the infinite mapping?

        Only when the implicit ``dsn = ssn - 1`` identity provably
        holds: it is the initial subflow, no other subflow ever
        established, every byte sent or received travelled on it, and
        nothing was ever reinjected or duplicated (which would have
        reordered DSNs relative to subflow sequence numbers).
        """
        if not subflow.is_initial:
            return False
        endpoint = subflow.endpoint
        if endpoint is None or endpoint.state in ("closed", "failed"):
            return False
        for other in self.subflows:
            if other is subflow or other.endpoint is None:
                continue
            if other.endpoint.stats.established_at is not None:
                return False
        received_paths = self.receive_buffer.metrics.bytes_by_path
        if any(path != subflow.path_name for path in received_paths):
            return False
        if any(path != subflow.path_name for path in self.bytes_allocated):
            return False
        if (self.bytes_reinjected or self._reinjection_queue
                or self._duplication_queue):
            return False
        return True

    def on_dss_violation(self, subflow: Subflow, kind: str) -> bool:
        """Data arrived that the DSS machinery cannot place.

        Returns True when the caller should deliver the data under the
        identity mapping (the connection is, or just fell back to, the
        infinite mapping on this subflow); False when the data must be
        discarded because the subflow is being torn down via MP_FAIL.
        """
        if self.fallback_mode is not None:
            return subflow is self._fallback_subflow
        if self._identity_consistent(subflow):
            self.fall_back("infinite", f"dss-{kind}", survivor=subflow)
            return True
        if not subflow.mp_fail_pending:
            subflow.mp_fail_pending = True
            if self._trace.enabled:
                self._trace.emit(self.sim.now, "mptcp.fail",
                                 subflow=subflow.index,
                                 path=subflow.path_name,
                                 direction="sent", cause=kind)
            endpoint = subflow.endpoint
            if endpoint is not None:
                endpoint.send_ack()  # carries MP_FAIL to the peer
                # Tear down outside the receive path: the endpoint is
                # mid-delivery and must finish processing this packet.
                self.sim.schedule(0.0, endpoint.fail,
                                  name=f"{self.name}.mp-fail")
        return False

    def on_mp_fail(self, subflow: Subflow) -> None:
        """The peer signalled MP_FAIL on this subflow."""
        if self.fallback_mode is not None:
            return
        if self._trace.enabled:
            self._trace.emit(self.sim.now, "mptcp.fail",
                             subflow=subflow.index, path=subflow.path_name,
                             direction="received")
        if self._identity_consistent(subflow):
            self.fall_back("infinite", "peer-mp-fail", survivor=subflow)
        elif (subflow.endpoint is not None
                and subflow.endpoint.state not in ("closed", "failed")):
            subflow.endpoint.fail()

    def on_join_rejected(self, subflow: Subflow) -> None:
        """A join was answered without MP_JOIN (stripped or plain peer).

        The subflow is unusable for MPTCP; fail it and reclaim its DSN
        ranges even if no sibling is healthy right now -- the ranges
        wait in the reinjection queue for whatever establishes next,
        instead of wedging the connection forever.
        """
        if self._trace.enabled:
            self._trace.emit(self.sim.now, "mptcp.join",
                             subflow=subflow.index, path=subflow.path_name,
                             status="rejected", role=self.role)
        if subflow.endpoint is not None:
            subflow.endpoint.fail()
        self._reclaim_outstanding(subflow, force=True)

    # ------------------------------------------------------------------
    # Scheduler interaction
    # ------------------------------------------------------------------

    def push(self) -> None:
        """Offer transmission opportunities in scheduler preference order."""
        for subflow in self.scheduler.order(self.subflows):
            subflow.pump()

    def allocate(self, subflow: Subflow, max_bytes: int
                 ) -> Optional[tuple]:
        """Hand the next run of DSNs to ``subflow`` (or None).

        Enforces connection-level flow control: no data beyond the
        peer's DATA_ACK plus its advertised (shared-buffer) window.
        """
        if max_bytes <= 0:
            return None
        if subflow.backup and self._regular_path_available(subflow):
            return None  # backup paths carry data only as a last resort
        reinjection = self._serve_reinjection(subflow, max_bytes)
        if reinjection is not None:
            if self._trace.enabled:
                self._trace.emit(self.sim.now, "sched.select",
                                 subflow=subflow.index,
                                 path=subflow.path_name,
                                 dsn=reinjection[0], length=reinjection[1],
                                 reason="reinjection")
            self.scheduler.on_allocated(subflow, reinjection[1])
            return reinjection
        duplication = self._serve_duplication(subflow, max_bytes)
        if duplication is not None:
            if self._trace.enabled:
                self._trace.emit(self.sim.now, "sched.select",
                                 subflow=subflow.index,
                                 path=subflow.path_name,
                                 dsn=duplication[0], length=duplication[1],
                                 reason="duplicate")
            self.scheduler.on_allocated(subflow, duplication[1])
            return duplication
        if self.next_dsn >= self.total_queued:
            return None
        window_limit = self.data_acked + self.peer_window
        if self.next_dsn >= window_limit:
            if self._trace.enabled:
                self._trace.emit(self.sim.now, "sched.refuse",
                                 subflow=subflow.index,
                                 path=subflow.path_name,
                                 reason="rwnd-limited",
                                 next_dsn=self.next_dsn,
                                 window_limit=window_limit)
            self._maybe_penalize()
            return None
        if not self.scheduler.admits(self.subflows, subflow,
                                     window_limit - self.next_dsn):
            # A preferred (strictly faster) subflow still has window
            # budget: give it the data first; this subflow will be
            # offered the remainder on the next push or ACK event.
            # Pumping only strictly-faster subflows keeps the recursion
            # well-founded (each hop decreases SRTT).  Backups this
            # very method would refuse (a regular path is operational)
            # are skipped: pumping them goes nowhere, and counting them
            # preferred would stall the only eligible regular path.
            if self._trace.enabled:
                self._trace.emit(self.sim.now, "sched.refuse",
                                 subflow=subflow.index,
                                 path=subflow.path_name,
                                 reason="preferred-path-open",
                                 candidates=self._trace_candidates())
            for preferred in self.scheduler.order(self.subflows):
                if (preferred is not subflow
                        and preferred.srtt() < subflow.srtt()
                        and preferred.can_send()
                        and not (preferred.backup
                                 and self._regular_path_available(
                                     preferred))):
                    preferred.pump()
            return None
        length = min(max_bytes, self.total_queued - self.next_dsn,
                     window_limit - self.next_dsn)
        dsn = self.next_dsn
        self.next_dsn += length
        self.bytes_allocated[subflow.path_name] = (
            self.bytes_allocated.get(subflow.path_name, 0) + length)
        self._outstanding.setdefault(subflow.index, []).append(
            [dsn, dsn + length, False])
        if self._trace.enabled:
            self._trace.emit(self.sim.now, "sched.select",
                             subflow=subflow.index, path=subflow.path_name,
                             dsn=dsn, length=length, reason="fresh",
                             candidates=self._trace_candidates())
        self.scheduler.on_allocated(subflow, length)
        if self.scheduler.duplicates:
            self._queue_duplicates(subflow, dsn, dsn + length)
        return dsn, length

    def _trace_candidates(self) -> list:
        """Scheduler's-eye view of every established subflow; the
        considered-candidates payload of ``sched.*`` trace events."""
        return [{"subflow": sub.index, "path": sub.path_name,
                 "srtt": round(sub.srtt(), 6), "can_send": sub.can_send(),
                 "backup": sub.backup}
                for sub in self.subflows if sub.established]

    def _queue_duplicates(self, origin: Subflow, start: int,
                          end: int) -> None:
        """Redundant mode: copy the fresh range onto every other path."""
        queued = False
        for other in self.subflows:
            if other is origin or not other.established:
                continue
            self._duplication_queue.append([start, end, other.index])
            queued = True
        if queued:
            self.push()

    def _serve_duplication(self, subflow: Subflow, max_bytes: int
                           ) -> Optional[tuple]:
        """Hand this subflow its pending redundant copies, if any."""
        index = 0
        while index < len(self._duplication_queue):
            entry = self._duplication_queue[index]
            start = max(entry[0], self.data_acked)
            if start >= entry[1]:
                self._duplication_queue.pop(index)  # already delivered
                continue
            if entry[2] != subflow.index:
                index += 1
                continue
            length = min(max_bytes, entry[1] - start)
            if start + length >= entry[1]:
                self._duplication_queue.pop(index)
            else:
                entry[0] = start + length
            self.bytes_reinjected[subflow.path_name] = (
                self.bytes_reinjected.get(subflow.path_name, 0) + length)
            return start, length
        return None

    def _serve_reinjection(self, subflow: Subflow, max_bytes: int
                           ) -> Optional[tuple]:
        """Hand a reclaimed DSN range to a healthy subflow, if any."""
        index = 0
        while index < len(self._reinjection_queue):
            entry = self._reinjection_queue[index]
            start = max(entry[0], self.data_acked)
            if start >= entry[1]:
                self._reinjection_queue.pop(index)  # already acked
                continue
            if entry[2] == subflow.index:
                index += 1  # never back onto the path that timed out
                continue
            length = min(max_bytes, entry[1] - start)
            if start + length >= entry[1]:
                self._reinjection_queue.pop(index)
            else:
                entry[0] = start + length
            self.bytes_reinjected[subflow.path_name] = (
                self.bytes_reinjected.get(subflow.path_name, 0) + length)
            self._outstanding.setdefault(subflow.index, []).append(
                [start, start + length, True])
            return start, length
        return None

    def _reclaim_outstanding(self, subflow: Subflow,
                             force: bool = False) -> None:
        """Queue the subflow's un-acknowledged DSN ranges for
        retransmission on the other paths (MPTCP reinjection).

        ``force`` queues even with no healthy sibling (used when the
        subflow is dead for good, so its own RTO cannot carry on)."""
        ranges = self._outstanding.get(subflow.index, [])
        healthy = [other for other in self.established_subflows()
                   if other is not subflow]
        if not healthy and not force:
            return  # nowhere to reinject; subflow-level RTO carries on
        for entry in ranges:
            start = max(entry[0], self.data_acked)
            if start >= entry[1] or entry[2]:
                continue
            entry[2] = True
            self._reinjection_queue.append([start, entry[1], subflow.index])
            if self._metrics.enabled:
                self._metrics.counter("mptcp.reinject.spans").inc()
                self._metrics.counter("mptcp.reinject.bytes").inc(
                    entry[1] - start)
            if self._trace.enabled:
                self._trace.emit(self.sim.now, "mptcp.reinject",
                                 subflow=subflow.index,
                                 path=subflow.path_name,
                                 dsn_start=start, dsn_end=entry[1],
                                 forced=force)
        if self._reinjection_queue:
            self.push()

    def _fail_subflows_toward(self, dead_addrs: tuple) -> None:
        """The peer advertised unreachable addresses: fail our subflows
        pointed at them right away (the MP_FAIL fast path).

        Freshly established subflows are spared: a stale advertisement
        sent just before the interface recovered may arrive on a slow
        path after the re-join completed.
        """
        for subflow in self.subflows:
            endpoint = subflow.endpoint
            if (endpoint is not None
                    and endpoint.remote_addr in dead_addrs
                    and endpoint.state not in ("failed", "closed")):
                established_at = endpoint.stats.established_at
                if (established_at is not None
                        and self.sim.now - established_at < 1.0):
                    continue  # younger than any plausible stale signal
                endpoint.fail()

    def _regular_path_available(self, candidate: Subflow) -> bool:
        """Is any non-backup subflow still operational?"""
        return any(subflow.established and not subflow.backup
                   for subflow in self.subflows
                   if subflow is not candidate)

    def _prune_outstanding(self) -> None:
        for ranges in self._outstanding.values():
            while ranges and ranges[0][1] <= self.data_acked:
                ranges.pop(0)

    # ------------------------------------------------------------------
    # Options plumbing (called by subflows)
    # ------------------------------------------------------------------

    def data_ack_value(self) -> int:
        return self.receive_buffer.rcv_nxt

    def data_fin_to_signal(self) -> Optional[int]:
        if self._close_requested:
            return self.total_queued
        return None

    def has_pending_data(self) -> bool:
        """True while this side's stream could still produce data for
        a subflow: unallocated bytes, queued reinjections/duplicates,
        or an application that has not closed yet."""
        if not self._close_requested:
            return True
        return (self.next_dsn < self.total_queued
                or bool(self._reinjection_queue)
                or bool(self._duplication_queue))

    def dead_addrs_to_signal(self) -> tuple:
        """Local addresses to advertise as unreachable (MP_FAIL-style)."""
        if self.path_manager is None or not self.path_manager.down_locals:
            return ()  # fast path: nothing down (the per-segment case)
        return tuple(sorted(self.path_manager.down_locals))

    def receive_window(self) -> int:
        """Shared receive buffer space, minus subflow-level stashes."""
        free = self.receive_buffer.free_space()
        for subflow in self.subflows:  # plain loop: per-segment path
            endpoint = subflow.endpoint
            if endpoint is not None:
                free -= endpoint.reassembly.buffered_bytes
        return free if free > 0 else 0

    def on_segment(self, subflow: Subflow, segment: Segment) -> None:
        """Process connection-level signalling on any received segment."""
        if self.fallback_mode is not None:
            self._on_segment_fallback(subflow, segment)
            return
        advanced = False
        if segment.flags.ack:
            if segment.window != self.peer_window:
                self.peer_window = segment.window
                advanced = True
        options = segment.options
        if options is not None:
            if (options.data_ack is not None
                    and options.data_ack > self.data_acked):
                self.data_acked = options.data_ack
                self._prune_outstanding()
                advanced = True
            if options.data_fin_dsn is not None:
                self._peer_data_fin = options.data_fin_dsn
            if options.add_addr:
                self.on_add_addr(options.add_addr)
            if options.dead_addrs:
                self._fail_subflows_toward(options.dead_addrs)
            if options.mp_fail:
                self.on_mp_fail(subflow)
                if self.fallback_mode is not None:
                    self._on_segment_fallback(subflow, segment)
                    return
        elif (segment.is_pure_ack and subflow.endpoint is not None
                and subflow.endpoint.stats.payload_bytes_sent > 0
                and subflow.endpoint.snd_una > 1):
            # A genuine MPTCP peer stamps every bare ACK with at least
            # a DATA_ACK.  An optionless pure ACK covering DSS-mapped
            # payload means the path (or the peer) dropped out of
            # MPTCP: the sender-side half of the Section 3.6 fallback.
            self.on_dss_violation(subflow, "ack-without-data-ack")
            if self.fallback_mode is not None:
                self._on_segment_fallback(subflow, segment)
                return
        self._check_peer_fin()
        self._check_send_complete()
        if advanced:
            self.push()

    def _on_segment_fallback(self, subflow: Subflow,
                             segment: Segment) -> None:
        """Connection-level accounting after fallback: the surviving
        subflow's cumulative ACK doubles as the DATA_ACK (the identity
        mapping makes ``dsn = seq - 1``), MPTCP options are ignored."""
        if subflow is not self._fallback_subflow:
            return
        advanced = False
        if segment.flags.ack:
            if segment.window != self.peer_window:
                self.peer_window = segment.window
                advanced = True
            endpoint = subflow.endpoint
            if endpoint is not None:
                acked = min(endpoint.snd_una - 1, self.next_dsn)
                if acked > self.data_acked:
                    self.data_acked = acked
                    self._prune_outstanding()
                    advanced = True
        self._check_peer_fin()
        self._check_send_complete()
        if advanced:
            self.push()

    # ------------------------------------------------------------------
    # Events from subflows
    # ------------------------------------------------------------------

    def on_subflow_established(self, subflow: Subflow) -> None:
        if self._trace.enabled:
            self._trace.emit(
                self.sim.now,
                "mptcp.capable" if subflow.is_initial else "mptcp.join",
                subflow=subflow.index, path=subflow.path_name,
                status="established", role=self.role, token=self.token)
        if self.established_at is None:
            self.established_at = self.sim.now
            if self.on_established is not None:
                self.on_established()
        if (subflow.is_initial and self.role == "client"
                and self.path_manager is not None
                and self.fallback_mode is None):
            self.path_manager.on_initial_established()
        self.push()

    def on_add_addr(self, addrs: tuple) -> None:
        if self._trace.enabled:
            self._trace.emit(self.sim.now, "mptcp.add_addr",
                             role=self.role, addrs=list(addrs))
        if self.fallback_mode is not None:
            return  # no new subflows after fallback (RFC 6824 S3.6)
        if self.role == "client" and self.path_manager is not None:
            self.path_manager.on_add_addr(addrs)

    def on_subflow_data(self, subflow: Subflow, dsn_start: int,
                        dsn_end: int, arrival_time: float) -> None:
        self.receive_buffer.offer(dsn_start, dsn_end, arrival_time,
                                  subflow.path_name)
        self._check_peer_fin()

    def on_subflow_peer_fin(self, subflow: Subflow) -> None:
        if (self.fallback_mode is not None
                and subflow is self._fallback_subflow):
            # No DATA_FIN will come: the subflow FIN *is* the end of
            # the stream (it only delivers once all payload has).
            if self._peer_data_fin is None:
                self._peer_data_fin = self.receive_buffer.rcv_nxt
            self._check_peer_fin()
        # The peer is done with this subflow; finish our half too.
        if subflow.endpoint is not None:
            subflow.endpoint.close()

    def on_subflow_rto(self, subflow: Subflow) -> None:
        """A subflow timed out: reinject its data on the other paths."""
        self._reclaim_outstanding(subflow)

    def on_subflow_failed(self, subflow: Subflow) -> None:
        """A subflow gave up entirely: reclaim and stop scheduling it."""
        self._reclaim_outstanding(subflow)
        # Redundant copies aimed at the dead subflow can never be
        # served; left queued they keep ``has_pending_data`` true
        # forever (and, pre-index-keying, could mis-target a later
        # subflow reusing the id).
        self._duplication_queue = [
            entry for entry in self._duplication_queue
            if entry[2] != subflow.index]
        if (self.role == "client" and self.path_manager is not None):
            self.path_manager.on_subflow_failed(subflow)
        # Tell the peer on the surviving subflows (dead-address option
        # rides on a bare ACK -- the only traffic an idle backup path
        # would otherwise see).
        if self.dead_addrs_to_signal():
            for survivor in self.established_subflows():
                if survivor.endpoint is not None:
                    survivor.endpoint.send_ack()

    def kill_subflow(self, subflow: Subflow) -> None:
        """Forcefully fail a subflow (OS link-down notification)."""
        if subflow.endpoint is not None:
            subflow.endpoint.fail()

    def _deliver_to_app(self, nbytes: int) -> None:
        if self.on_receive is not None:
            self.on_receive(nbytes)

    def _check_peer_fin(self) -> None:
        if (self._peer_data_fin is not None and not self._peer_fin_delivered
                and self.receive_buffer.rcv_nxt >= self._peer_data_fin):
            self._peer_fin_delivered = True
            if self.on_close is not None:
                self.on_close()

    def _check_send_complete(self) -> None:
        """Once our DATA_FIN is acknowledged, close the subflows."""
        if (self._close_requested and not self._send_complete_handled
                and self.next_dsn >= self.total_queued
                and self.data_acked >= self.total_queued):
            self._send_complete_handled = True
            for subflow in self.subflows:
                if subflow.endpoint is not None:
                    subflow.endpoint.close()

    # ------------------------------------------------------------------
    # Penalization (Linux v0.86 behaviour; off by default, see module doc)
    # ------------------------------------------------------------------

    def _maybe_penalize(self) -> None:
        if not self.config.penalization:
            return
        candidates = [subflow for subflow in self.established_subflows()
                      if subflow.endpoint is not None
                      and subflow.endpoint.flight_bytes > 0]
        if len(candidates) < 2:
            return
        # The subflow blocking the shared buffer is the slowest one
        # with data outstanding.
        slowest = max(candidates, key=lambda subflow: subflow.srtt())
        endpoint = slowest.endpoint
        assert endpoint is not None
        last = self._last_penalty.get(slowest.index, -1.0)
        if self.sim.now - last < slowest.srtt():
            return  # at most once per RTT
        self._last_penalty[slowest.index] = self.sim.now
        endpoint.ssthresh = max(endpoint.cwnd / 2.0, 2.0 * endpoint.mss)
        endpoint.cwnd = endpoint.ssthresh

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<MptcpConnection {self.name} {self.role} "
                f"subflows={len(self.subflows)} "
                f"dsn={self.next_dsn}/{self.total_queued}>")


class MptcpListener:
    """Server-side acceptor: MP_CAPABLE opens, MP_JOIN associates.

    A SYN carrying no MPTCP signalling at all (a plain client, or a
    middlebox stripped MP_CAPABLE in flight) is accepted as a
    *fallback* connection that behaves as plain TCP end to end.

    Joins whose token is not (yet) known are parked briefly rather than
    dropped -- with the paper's simultaneous-SYN modification the
    cellular JOIN can overtake the WiFi MP_CAPABLE in flight.  Parked
    entries expire after ``join_wait`` and are answered with a RST, so
    a join orphaned by a stripped MP_CAPABLE can never sit in the
    pending queue forever.
    """

    def __init__(self, sim: Simulator, host: Host, port: int,
                 config: MptcpConfig,
                 server_addrs: Optional[List[str]] = None,
                 on_connection: Optional[
                     Callable[[MptcpConnection], None]] = None) -> None:
        self.sim = sim
        self.host = host
        self.port = port
        self.config = config
        self.server_addrs = list(server_addrs or [])
        self.on_connection = on_connection
        self.connections: Dict[int, MptcpConnection] = {}
        #: Connections accepted without MP_CAPABLE (plain fallback).
        self.fallback_connections: List[MptcpConnection] = []
        self._pending_joins: Dict[int, List[Packet]] = {}
        self._pending_first_at: Dict[int, float] = {}
        #: How long an orphan join may wait for its MP_CAPABLE before
        #: being refused with a RST.
        self.join_wait = 5.0
        self.joins_rejected = 0
        host.bind_listener(port, TcpListener(self._accept))

    def _accept(self, packet: Packet, host: Host) -> None:
        options = packet.segment.options
        if options is None or options.token is None:
            self._accept_plain(packet)
        elif options.mp_capable:
            self._accept_capable(packet, options)
        elif options.mp_join:
            self._accept_join(packet, options)
        else:
            self._accept_plain(packet)

    def _accept_plain(self, packet: Packet) -> None:
        """No MP_CAPABLE on the SYN: serve the client as plain TCP."""
        token = next(_tokens)
        connection = MptcpConnection(
            self.sim, self.host, "server", packet.segment.src_port,
            self.config, token=token, server_addrs=self.server_addrs,
            name=f"mptcp-server-plain-{token}")
        self.fallback_connections.append(connection)
        if self.on_connection is not None:
            self.on_connection(connection)
        # Fall back *before* the subflow exists so the SYN-ACK already
        # goes out without MPTCP options.
        connection.fall_back("plain", "syn-without-mp-capable")
        connection.accept_subflow(packet, is_initial=True)

    def _accept_capable(self, packet: Packet, options: MptcpOptions) -> None:
        if options.token in self.connections:
            return  # duplicate SYN; the endpoint will re-answer it
        connection = MptcpConnection(
            self.sim, self.host, "server", packet.segment.src_port,
            self.config, token=options.token,
            server_addrs=self.server_addrs,
            name=f"mptcp-server-{options.token}")
        self.connections[options.token] = connection
        if self.on_connection is not None:
            self.on_connection(connection)
        connection.accept_subflow(packet, is_initial=True)
        self._pending_first_at.pop(options.token, None)
        for pending in self._pending_joins.pop(options.token, []):
            connection.accept_subflow(pending, is_initial=False)

    def _accept_join(self, packet: Packet, options: MptcpOptions) -> None:
        self._purge_pending()
        connection = self.connections.get(options.token)
        if connection is None:
            pending = self._pending_joins.setdefault(options.token, [])
            if options.token not in self._pending_first_at:
                self._pending_first_at[options.token] = self.sim.now
                # Lazy purge plus this backstop: the queue drains even
                # if no further packet ever reaches the listener.
                self.sim.schedule(self.join_wait * 1.01,
                                  self._purge_pending,
                                  name="mptcp-listener.join-purge")
            key = _join_key(packet)
            if all(_join_key(parked) != key for parked in pending):
                pending.append(packet)  # dedupe retransmitted SYNs
            return
        if connection.is_fallback:
            # RFC 6824 S3.6: no new subflows after fallback.
            self.joins_rejected += 1
            self._send_rst(packet)
            return
        connection.accept_subflow(packet, is_initial=False)

    def _purge_pending(self) -> None:
        """Refuse joins that have waited longer than ``join_wait``."""
        if not self._pending_first_at:
            return
        cutoff = self.sim.now - self.join_wait
        stale = [token for token, first_at in self._pending_first_at.items()
                 if first_at <= cutoff]
        for token in stale:
            del self._pending_first_at[token]
            for parked in self._pending_joins.pop(token, []):
                self.joins_rejected += 1
                self._send_rst(parked)

    def _send_rst(self, packet: Packet) -> None:
        """Answer a refused SYN with a reset."""
        segment = packet.segment
        reply = Segment(src_port=segment.dst_port,
                        dst_port=segment.src_port,
                        seq=0, ack=segment.end_seq,
                        flags=Flags(rst=True, ack=True))
        self.host.send(Packet(packet.dst, packet.src, reply))


def _join_key(packet: Packet) -> tuple:
    """The 4-tuple identifying one parked join SYN."""
    return (packet.src, packet.segment.src_port,
            packet.dst, packet.segment.dst_port)

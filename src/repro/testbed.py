"""Assembles the paper's Figure 1 testbed in the simulator.

One :class:`Testbed` is one measurement environment: a fresh simulator,
a multi-homed UMass-style server (one or two GigE interfaces), and a
mobile client with a WiFi interface plus one cellular interface (AT&T /
Verizon / Sprint), behind a NAT, with the cellular RRC state machine
optionally pre-warmed the way the paper pings before each run.

Every run of the experiment harness builds a new Testbed from a seed,
so runs are independent and reproducible; the per-run environment
jitter (time-of-day WiFi load, per-location signal lottery) is drawn
here from named RNG streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.netsim.host import Host, Interface
from repro.netsim.nat import Nat
from repro.netsim.network import Network
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.wireless.profiles import (
    CARRIER_PROFILES,
    SERVER_ETHERNET,
    WIFI_PROFILES,
    PathProfile,
    TimeOfDay,
    environment_factor,
)
from repro.wireless.rrc import RadioStateMachine

CLIENT_WIFI = "client.wifi"
SERVER_PRIMARY = "server.eth0"
SERVER_SECONDARY = "server.eth1"


@dataclass(frozen=True)
class TestbedConfig:
    """Which environment to instantiate."""

    __test__ = False  # not a pytest class, despite the name

    carrier: str = "att"              # att | verizon | sprint
    wifi: str = "home"                # home | public
    server_interfaces: int = 1        # 1 (2-path) or 2 (4-path)
    period: TimeOfDay = TimeOfDay.AFTERNOON
    seed: int = 0
    environment_jitter: bool = True   # per-run rate/loss lottery
    warm_radio: bool = True           # the paper's pre-measurement pings
    nat: bool = True
    #: Seconds of silence after which a NAT binding expires (real NATs
    #: time quiet flows out; ``None`` keeps the original keep-forever
    #: behaviour the paper's short transfers never distinguish).
    nat_idle_timeout: Optional[float] = None
    #: Direct profile overrides (sensitivity sweeps); when set they
    #: replace the named catalog entries for this testbed.
    wifi_profile: Optional[PathProfile] = None
    cell_profile: Optional[PathProfile] = None

    def __post_init__(self) -> None:
        if self.carrier not in CARRIER_PROFILES:
            raise ValueError(f"unknown carrier {self.carrier!r}")
        if self.wifi not in WIFI_PROFILES:
            raise ValueError(f"unknown wifi profile {self.wifi!r}")
        if self.server_interfaces not in (1, 2):
            raise ValueError("server_interfaces must be 1 or 2")


class Testbed:
    """The instantiated topology for one measurement."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(self, config: TestbedConfig) -> None:
        self.config = config
        self.sim = Simulator()
        self.rng = RngRegistry(config.seed)
        self.network = Network(self.sim, self.rng)
        self.server = Host(self.sim, "server")
        self.client = Host(self.sim, "client")
        self.cellular_addr = f"client.{config.carrier}"
        self.applied_profiles: Dict[str, PathProfile] = {}

        self._build_server()
        self._build_client()

    # ------------------------------------------------------------------

    @property
    def server_addrs(self) -> List[str]:
        addrs = [SERVER_PRIMARY]
        if self.config.server_interfaces == 2:
            addrs.append(SERVER_SECONDARY)
        return addrs

    @property
    def client_addrs(self) -> List[str]:
        """Client interface addresses, default (WiFi) path first."""
        return [CLIENT_WIFI, self.cellular_addr]

    def _effective(self, profile: PathProfile, stream: str) -> PathProfile:
        if not self.config.environment_jitter:
            return profile
        env = environment_factor(self.rng.stream(stream), profile,
                                 self.config.period)
        return profile.with_environment(env)

    def _build_server(self) -> None:
        for address in self.server_addrs:
            profile = SERVER_ETHERNET
            up, down = profile.link_configs()
            self.network.attach(self.server, Interface(address, address),
                                up=up, down=down)
            self.applied_profiles[address] = profile

    def _build_client(self) -> None:
        config = self.config
        wifi_base = (config.wifi_profile if config.wifi_profile is not None
                     else WIFI_PROFILES[config.wifi])
        wifi_profile = self._effective(wifi_base, "env.wifi")
        up, down = wifi_profile.link_configs()
        wifi = self.network.attach(self.client,
                                   Interface(CLIENT_WIFI, CLIENT_WIFI),
                                   up=up, down=down)
        self.applied_profiles[CLIENT_WIFI] = wifi_profile

        cell_base = (config.cell_profile if config.cell_profile is not None
                     else CARRIER_PROFILES[config.carrier])
        cell_profile = self._effective(cell_base, "env.cell")
        up, down = cell_profile.link_configs()
        cell = self.network.attach(self.client,
                                   Interface(self.cellular_addr,
                                             self.cellular_addr),
                                   up=up, down=down)
        self.applied_profiles[self.cellular_addr] = cell_profile

        if config.nat:
            clock = lambda: self.sim.now  # noqa: E731 - tiny closure
            wifi.nat = Nat(idle_timeout=config.nat_idle_timeout,
                           clock=clock)
            cell.nat = Nat(idle_timeout=config.nat_idle_timeout,
                           clock=clock)

        cell.radio = RadioStateMachine(
            self.sim, promotion_delay=cell_profile.promotion_delay)
        if config.warm_radio:
            cell.radio.warm_up()

    # ------------------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Convenience passthrough to the simulator's run loop."""
        return self.sim.run(until=until, max_events=max_events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Testbed carrier={self.config.carrier} "
                f"wifi={self.config.wifi} "
                f"paths={1 + self.config.server_interfaces}>")

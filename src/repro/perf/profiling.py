"""cProfile integration: wrap any run and write a pstats dump.

Used by the CLI's ``--profile`` flag::

    PYTHONPATH=src python -m repro fig09 --profile fig09.pstats

and readable afterwards with the standard tooling::

    python -m pstats fig09.pstats
    # or programmatically: repro.perf.render_profile("fig09.pstats")
"""

from __future__ import annotations

import cProfile
import io
import pstats
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Union


@contextmanager
def profile_to(path: Union[str, Path]) -> Iterator[cProfile.Profile]:
    """Profile the enclosed block and write a pstats dump to ``path``."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        profiler.dump_stats(str(path))


def render_profile(path: Union[str, Path], top: int = 15,
                   sort: str = "cumulative") -> str:
    """The top functions of a pstats dump, as printable text."""
    buffer = io.StringIO()
    stats = pstats.Stats(str(path), stream=buffer)
    stats.sort_stats(sort).print_stats(top)
    return buffer.getvalue()

"""Lightweight performance instrumentation for measurement runs.

:class:`Instrumentation` accumulates named phase timers (wall-clock),
arbitrary counters, an engine snapshot (events processed and scheduled,
pool reuses, heap high-water mark), and -- opt-in, because it slows
execution considerably -- allocation statistics via :mod:`tracemalloc`.
A null implementation (:data:`NULL_INSTRUMENTATION`) makes the hooks
free when nobody is measuring.
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional


class NullInstrumentation:
    """No-op stand-in so instrumented code needs no branching."""

    enabled = False

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        yield

    def add(self, name: str, value: float = 1) -> None:
        pass

    def observe_simulator(self, sim) -> None:
        pass

    def report(self) -> Dict[str, Any]:
        return {}


#: Shared no-op instance; the default for instrumented entry points.
NULL_INSTRUMENTATION = NullInstrumentation()


class Instrumentation(NullInstrumentation):
    """Collects per-phase timings and engine statistics for one or more
    measurement runs.

    Args:
        trace_allocations: start :mod:`tracemalloc` and report the peak
            traced allocation size.  Expensive (several times slower);
            off by default.
    """

    enabled = True

    def __init__(self, trace_allocations: bool = False) -> None:
        self.phases: Dict[str, float] = {}
        self.counters: Dict[str, float] = {}
        self._trace_allocations = trace_allocations
        self._tracemalloc_started = False
        if trace_allocations and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._tracemalloc_started = True

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a named phase; repeated phases accumulate."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.phases[name] = self.phases.get(name, 0.0) + elapsed

    def add(self, name: str, value: float = 1) -> None:
        """Accumulate an arbitrary counter."""
        self.counters[name] = self.counters.get(name, 0) + value

    def observe_simulator(self, sim) -> None:
        """Fold one simulator's engine statistics into the counters."""
        self.add("events_processed", sim.events_processed)
        self.add("events_scheduled", sim.events_scheduled)
        self.add("events_posted", sim.events_posted)
        self.add("pool_reuses", sim.pool_reuses)
        self.add("heap_compactions", sim.heap_compactions)
        # Vectorized-core telemetry: batched link deliveries and the
        # arena scoreboard's occupancy high-water mark.
        self.add("batches_posted", sim.batches_posted)
        self.add("batch_entries", sim.batch_entries)
        self.add("batch_inline", sim.batch_inline)
        for name, value in (("peak_heap", sim.peak_heap),
                            ("arena_peak", sim.arena_peak)):
            if value > self.counters.get(name, 0):
                self.counters[name] = value

    def events_per_sec(self, phase: str = "simulate") -> Optional[float]:
        """Engine throughput: events processed over a phase's seconds."""
        elapsed = self.phases.get(phase)
        events = self.counters.get("events_processed")
        if not elapsed or not events:
            return None
        return events / elapsed

    def merge_report(self, report: Dict[str, Any]) -> None:
        """Fold another instrumentation's :meth:`report` into this one.

        Campaign workers run in separate processes, so their phase
        timers and counters never reach the parent's profiler; the
        executor ships each worker's report back and the parent merges
        them here (``--profile`` under ``--jobs N``).  Phase times and
        counters accumulate; ``peak_heap`` takes the maximum.
        """
        if not report:
            return
        for name, elapsed in report.get("phases_s", {}).items():
            self.phases[name] = self.phases.get(name, 0.0) + elapsed
        for name, value in report.get("counters", {}).items():
            if name in ("peak_heap", "arena_peak"):
                if value > self.counters.get(name, 0):
                    self.counters[name] = value
            else:
                self.add(name, value)

    def report(self) -> Dict[str, Any]:
        """A JSON-ready summary of everything collected so far."""
        report: Dict[str, Any] = {
            "phases_s": {name: round(elapsed, 6)
                         for name, elapsed in self.phases.items()},
            "counters": dict(self.counters),
        }
        events_per_sec = self.events_per_sec()
        if events_per_sec is not None:
            report["events_per_sec"] = round(events_per_sec)
        batches = self.counters.get("batches_posted", 0)
        if batches:
            report["mean_burst"] = round(
                self.counters.get("batch_entries", 0) / batches, 3)
        if self._trace_allocations and tracemalloc.is_tracing():
            current, peak = tracemalloc.get_traced_memory()
            report["tracemalloc"] = {"current_bytes": current,
                                     "peak_bytes": peak}
        return report

    def stop(self) -> None:
        """Stop tracemalloc if this instance started it."""
        if self._tracemalloc_started and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._tracemalloc_started = False

"""Performance instrumentation and profiling helpers.

This subpackage exists so the hot-path optimizations stay measurable:

* :class:`~repro.perf.instrumentation.Instrumentation` -- per-phase
  wall-clock timers, engine counters (events/sec, pool reuses, heap
  high-water mark), and opt-in :mod:`tracemalloc` allocation tracking.
* :func:`~repro.perf.profiling.profile_to` -- context manager writing
  a :mod:`cProfile`/pstats dump, surfaced as the CLI ``--profile``
  flag.

The benchmark suite in ``benchmarks/bench_perf_engine.py`` and
``bench_perf_campaign.py`` builds on these and records its numbers in
``benchmarks/output/BENCH_PERF.json`` (see ``docs/performance.md``).
"""

from repro.perf.instrumentation import (
    Instrumentation,
    NULL_INSTRUMENTATION,
    NullInstrumentation,
)
from repro.perf.profiling import profile_to, render_profile

__all__ = [
    "Instrumentation",
    "NULL_INSTRUMENTATION",
    "NullInstrumentation",
    "profile_to",
    "render_profile",
]

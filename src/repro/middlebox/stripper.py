"""The option-stripping firewall.

The single most common MPTCP-hostile middlebox: a firewall or load
balancer that removes TCP options it does not recognize.  Stripping
MP_CAPABLE from a SYN/SYN-ACK silently downgrades the connection to
plain TCP; stripping MP_JOIN makes additional subflows look like
ordinary connections the server never asked for; stripping DSS after
establishment removes the data-sequence mapping mid-stream, which RFC
6824 Section 3.6 handles with the infinite-mapping fallback.

Each MPTCP option class is strippable independently, per direction,
with a per-packet probability (some deployments mangle only some
packets -- e.g. only those crossing a particular load-balancer leg).
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional, Sequence

from repro.core.options import MptcpOptions
from repro.middlebox.base import Middlebox
from repro.netsim.packet import Packet

_EMPTY = MptcpOptions()


class OptionStripper(Middlebox):
    """Removes selected MPTCP options from passing segments."""

    def __init__(self, strip_capable: bool = True, strip_join: bool = True,
                 strip_add_addr: bool = True, strip_dss: bool = True,
                 probability: float = 1.0,
                 rng: Optional[random.Random] = None,
                 directions: Sequence[str] = ("up", "down")) -> None:
        super().__init__()
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        self.strip_capable = strip_capable
        self.strip_join = strip_join
        self.strip_add_addr = strip_add_addr
        self.strip_dss = strip_dss
        self.probability = probability
        self.rng = rng
        self.directions = tuple(directions)
        self.options_stripped = 0

    def _roll(self) -> bool:
        if self.probability >= 1.0:
            return True
        if self.rng is None:
            return False
        return self.rng.random() < self.probability

    def process(self, packet: Packet, direction: str,
                now: float) -> List[Packet]:
        options = packet.segment.options
        if options is None:
            return [packet]
        changes = {}
        if self.strip_capable and options.mp_capable:
            changes["mp_capable"] = False
        if self.strip_join and options.mp_join:
            changes["mp_join"] = False
            changes["backup"] = False
        if self.strip_add_addr and (options.add_addr or options.dead_addrs):
            changes["add_addr"] = ()
            changes["dead_addrs"] = ()
        if self.strip_dss and (options.dss is not None
                               or options.data_ack is not None
                               or options.data_fin_dsn is not None
                               or options.mp_fail):
            changes["dss"] = None
            changes["data_ack"] = None
            changes["data_fin_dsn"] = None
            changes["mp_fail"] = False
        if not changes or not self._roll():
            return [packet]
        stripped = dataclasses.replace(options, **changes)
        # The token travels inside MP_CAPABLE / MP_JOIN: no carrying
        # option left means no token on the wire either.
        if not stripped.mp_capable and not stripped.mp_join:
            stripped = dataclasses.replace(stripped, token=None,
                                           backup=False)
        self.options_stripped += 1
        return [self.rewrite(packet,
                             options=None if stripped == _EMPTY
                             else stripped)]

"""Named middlebox deployments, for experiment specs and the CLI.

Each profile builds a fresh :class:`MiddleboxChain` modelling one
deployment the MPTCP measurement literature reports in the wild.  The
names are the vocabulary :class:`repro.experiments.config.FlowSpec`
accepts in its ``middlebox`` field.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional

from repro.middlebox.base import MiddleboxChain
from repro.middlebox.firewall import Cgn, StatefulFirewall
from repro.middlebox.proxy import PayloadProxy
from repro.middlebox.rewriter import SequenceRewriter
from repro.middlebox.stripper import OptionStripper

_Builder = Callable[[Optional[random.Random], float], MiddleboxChain]


def _stripper(**flags) -> _Builder:
    def build(rng: Optional[random.Random],
              probability: float) -> MiddleboxChain:
        return MiddleboxChain([OptionStripper(
            probability=probability, rng=rng, **flags)])
    return build


PROFILES: Dict[str, _Builder] = {
    #: A firewall that removes every MPTCP option: the connection must
    #: complete as plain TCP (handshake fallback) -- the worst case the
    #: adoption studies measure.
    "strip-all": _stripper(),
    #: Strips only MP_CAPABLE: no MPTCP session is ever negotiated.
    "strip-capable": _stripper(strip_join=False, strip_add_addr=False,
                               strip_dss=False),
    #: Strips only MP_JOIN: the initial subflow works, extra paths are
    #: rejected, the connection stays single-path.
    "strip-join": _stripper(strip_capable=False, strip_add_addr=False,
                            strip_dss=False),
    #: Strips only DSS after a successful handshake: the infinite-
    #: mapping fallback case of RFC 6824 Section 3.6.
    "strip-dss": _stripper(strip_capable=False, strip_join=False,
                           strip_add_addr=False),
    #: ISN randomization displacing DSS anchors (mapping mismatch).
    "rewrite-seq": lambda rng, probability: MiddleboxChain(
        [SequenceRewriter(rng=rng)]),
    #: Split-connection proxy re-segmenting the stream.
    "proxy": lambda rng, probability: MiddleboxChain([PayloadProxy()]),
    #: Stateful firewall with an idle timeout (quiet subflows die).
    "firewall": lambda rng, probability: MiddleboxChain(
        [StatefulFirewall()]),
    #: Carrier-grade NAT: idle timeout plus a finite binding table.
    "cgn": lambda rng, probability: MiddleboxChain([Cgn()]),
}


def build_chain(profile: str, rng: Optional[random.Random] = None,
                probability: float = 1.0) -> MiddleboxChain:
    """Instantiate the chain for a named profile.

    ``probability`` applies to probabilistic boxes (the strippers);
    deterministic boxes ignore it.  ``rng`` must be supplied when
    ``probability < 1`` or when the profile draws random per-flow
    state (``rewrite-seq``).
    """
    try:
        builder = PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown middlebox profile {profile!r}; "
            f"known: {', '.join(sorted(PROFILES))}") from None
    return builder(rng, probability)

"""Stateful firewall and carrier-grade NAT.

Both keep per-flow bindings in a :class:`repro.middlebox.state.FlowTable`
and admit inbound packets only for live bindings:

* :class:`StatefulFirewall` -- bindings are created by outbound traffic
  and expire after an idle timeout.  A subflow that goes quiet (an
  MPTCP backup path, a radio sleeping in RRC idle) loses its binding;
  the next inbound packet is silently dropped and the sender discovers
  the death by RTO, exactly the long-lived-subflow failure mode the
  middlebox measurement studies report.
* :class:`Cgn` -- a firewall whose binding table is also *capacity*
  limited, LRU-evicting the quietest flow when a new one needs a port
  (carrier-grade NAT port exhaustion).

Direction convention: these boxes sit on a client's access links, so
``"up"`` is outbound (binding-creating) and ``"down"`` inbound
(binding-checked).
"""

from __future__ import annotations

from typing import List, Optional

from repro.middlebox.base import Middlebox
from repro.middlebox.state import FlowTable
from repro.netsim.packet import Packet


class StatefulFirewall(Middlebox):
    """Per-flow state with idle expiry; inbound needs a live binding."""

    #: Default idle timeout, seconds.  Deployed boxes range from tens
    #: of seconds (aggressive home routers) to minutes; the default is
    #: short enough that an idle MPTCP backup subflow dies mid-run.
    DEFAULT_IDLE_TIMEOUT = 30.0

    def __init__(self, idle_timeout: Optional[float] = DEFAULT_IDLE_TIMEOUT,
                 max_entries: Optional[int] = None,
                 outbound: str = "up") -> None:
        super().__init__()
        if outbound not in ("up", "down"):
            raise ValueError(f"bad outbound direction {outbound!r}")
        self.table = FlowTable(idle_timeout=idle_timeout,
                               max_entries=max_entries)
        self.outbound = outbound

    def process(self, packet: Packet, direction: str,
                now: float) -> List[Packet]:
        key = self.flow_key(packet)
        if direction == self.outbound:
            self.table.touch(key, now=now)
            return [packet]
        if self.table.active(key, now=now):
            return [packet]
        return []


class Cgn(StatefulFirewall):
    """Carrier-grade NAT: a stateful firewall with a finite binding
    table (LRU eviction) and carrier-typical idle timeouts."""

    DEFAULT_MAX_BINDINGS = 64

    def __init__(self, idle_timeout: Optional[float] =
                 StatefulFirewall.DEFAULT_IDLE_TIMEOUT,
                 max_entries: Optional[int] = DEFAULT_MAX_BINDINGS,
                 outbound: str = "up") -> None:
        super().__init__(idle_timeout=idle_timeout,
                         max_entries=max_entries, outbound=outbound)

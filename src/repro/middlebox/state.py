"""Shared per-flow state for stateful boxes (and the client NAT).

Real NATs, firewalls and CGNs keep one entry per flow, refresh it on
traffic, expire it after an idle period, and -- for carrier-grade
deployments -- evict the least-recently-used entry when the binding
table fills.  :class:`FlowTable` implements exactly that lifecycle;
:class:`repro.netsim.nat.Nat` and the middlebox firewalls are thin
policies on top of it.

Expiry is *lazy*: entries are judged against ``now`` when touched or
queried, never by scheduled timer events, so attaching a table to a
simulation adds no events and cannot perturb event ordering of runs
that never hit a timeout.
"""

from __future__ import annotations

import collections
from typing import Hashable, Optional


class FlowTable:
    """Per-flow state with optional idle expiry and LRU capacity."""

    def __init__(self, idle_timeout: Optional[float] = None,
                 max_entries: Optional[int] = None) -> None:
        if idle_timeout is not None and idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive (or None)")
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive (or None)")
        self.idle_timeout = idle_timeout
        self.max_entries = max_entries
        #: key -> time of last refresh, in LRU order (oldest first).
        self._entries: "collections.OrderedDict[Hashable, float]" = \
            collections.OrderedDict()
        self.expired = 0
        self.evicted = 0

    def touch(self, key: Hashable, now: float = 0.0) -> bool:
        """Create or refresh ``key``; returns True if it was created.

        Creating beyond ``max_entries`` evicts the least recently used
        entry (CGN port exhaustion: someone else's flow dies).
        """
        created = key not in self._entries
        self._entries[key] = now
        self._entries.move_to_end(key)
        if created and self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evicted += 1
        return created

    def active(self, key: Hashable, now: float = 0.0,
               refresh: bool = True) -> bool:
        """Is there a live entry for ``key``?  Expires it lazily if its
        idle time exceeded the timeout; refreshes it otherwise (traffic
        in either direction keeps a real mapping alive)."""
        last = self._entries.get(key)
        if last is None:
            return False
        if self.idle_timeout is not None and now - last > self.idle_timeout:
            del self._entries[key]
            self.expired += 1
            return False
        if refresh:
            self._entries[key] = now
            self._entries.move_to_end(key)
        return True

    def drop(self, key: Hashable) -> None:
        self._entries.pop(key, None)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FlowTable n={len(self._entries)} "
                f"timeout={self.idle_timeout} expired={self.expired} "
                f"evicted={self.evicted}>")

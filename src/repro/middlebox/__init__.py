"""Programmable on-path middleboxes (see :mod:`repro.middlebox.base`)."""

from repro.middlebox.base import (
    LinkTap,
    Middlebox,
    MiddleboxChain,
    MiddleboxStats,
    install_chain,
)
from repro.middlebox.firewall import Cgn, StatefulFirewall
from repro.middlebox.profiles import PROFILES, build_chain
from repro.middlebox.proxy import PayloadProxy
from repro.middlebox.rewriter import SequenceRewriter
from repro.middlebox.state import FlowTable
from repro.middlebox.stripper import OptionStripper

__all__ = [
    "Cgn",
    "FlowTable",
    "LinkTap",
    "Middlebox",
    "MiddleboxChain",
    "MiddleboxStats",
    "OptionStripper",
    "PROFILES",
    "PayloadProxy",
    "SequenceRewriter",
    "StatefulFirewall",
    "build_chain",
    "install_chain",
]

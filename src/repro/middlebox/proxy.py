"""The split-connection payload proxy.

Transparent performance-enhancing proxies (common in cellular cores)
terminate the TCP connection and relay the byte stream on a second
connection, re-segmenting it at their own MSS.  The *bytes* survive,
but the packet boundaries do not -- and MPTCP's DSS mapping describes a
specific run of subflow payload, forwarded opaquely as an unknown
option on whichever output packet carries the first byte.  Any payload
relayed in a packet without its mapping reaches the receiver unmappable,
which RFC 6824 Section 3.6 treats exactly like a stripped DSS: fall
back to the infinite mapping (single subflow) or close the subflow via
MP_FAIL (multiple subflows).

We model the stream-preserving essence without terminating the TCP
state machines: data packets are re-chunked at ``proxy_mss``; the
original option block (and SACK blocks) ride only on the first chunk,
the FIN only on the last.  Pure control packets pass untouched.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from repro.middlebox.base import Middlebox
from repro.netsim.packet import Packet
from repro.tcp.segment import Flags


class PayloadProxy(Middlebox):
    """Re-segments payload at its own MSS, stranding DSS mappings."""

    def __init__(self, proxy_mss: int = 536,
                 directions: Sequence[str] = ("up", "down")) -> None:
        super().__init__()
        if proxy_mss < 1:
            raise ValueError("proxy_mss must be positive")
        self.proxy_mss = proxy_mss
        self.directions = tuple(directions)
        self.packets_split = 0

    def process(self, packet: Packet, direction: str,
                now: float) -> List[Packet]:
        segment = packet.segment
        if segment.payload_len <= self.proxy_mss:
            return [packet]
        self.packets_split += 1
        chunks: List[Packet] = []
        offset = 0
        while offset < segment.payload_len:
            length = min(self.proxy_mss, segment.payload_len - offset)
            first = offset == 0
            last = offset + length >= segment.payload_len
            chunk = dataclasses.replace(
                segment,
                seq=segment.seq + offset,
                payload_len=length,
                flags=Flags(syn=segment.flags.syn and first,
                            ack=segment.flags.ack,
                            fin=segment.flags.fin and last,
                            rst=segment.flags.rst and first),
                sack_blocks=segment.sack_blocks if first else (),
                options=segment.options if first else None)
            chunks.append(Packet(packet.src, packet.dst, chunk))
            offset += length
        return chunks

"""Composable on-path middleboxes.

Measurement studies of MPTCP in the wild (Aschenbrenner et al., "From
Single Lane to Highways"; Shreedhar et al., "A Longitudinal View at the
Adoption of Multipath TCP") found that the protocol's biggest obstacle
is not radio conditions but *middleboxes*: option-stripping firewalls,
sequence-rewriting proxies, and carrier-grade NATs that mangle exactly
the TCP options MPTCP depends on.  This package models them as a
:class:`MiddleboxChain` attachable to any :class:`repro.netsim.link.Link`
via its ``middlebox`` hook, so every access-network pathology can be
combined with every wireless profile.

A :class:`Middlebox` transforms one packet into zero or more packets:

* returning ``[]`` drops the packet (stateful firewall without a flow
  entry);
* returning one packet -- possibly with a rewritten segment -- models
  option stripping and sequence rewriting;
* returning several packets models a split-connection proxy that
  re-segments the byte stream.

Boxes observe the *link direction* they sit on (``"up"`` = from the
interface toward the network core, ``"down"`` = from the core to the
interface), matching how a real box near the client sees both halves
of every flow.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence

from repro.netsim.packet import Packet


@dataclass
class MiddleboxStats:
    """Counters every box accumulates; read by tests and reports."""

    packets_seen: int = 0
    packets_dropped: int = 0
    packets_mangled: int = 0
    packets_created: int = 0


class Middlebox:
    """Base class: one on-path packet transformation."""

    #: Link directions this box acts on; boxes on both halves of an
    #: interface's access-link pair see the whole conversation.
    directions: Sequence[str] = ("up", "down")

    def __init__(self) -> None:
        self.stats = MiddleboxStats()

    def process(self, packet: Packet, direction: str,
                now: float) -> List[Packet]:
        """Transform ``packet``; return the packets to forward."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------

    @staticmethod
    def rewrite(packet: Packet, **segment_changes) -> Packet:
        """Return ``packet`` with its segment fields replaced in place.

        The packet object (and its id) is preserved -- a rewriting box
        does not originate a new datagram, it mangles the one in
        flight; per-host captures still see their own side's view, the
        way tcpdump at each end of a real path does.
        """
        packet.segment = replace(packet.segment, **segment_changes)
        return packet

    @staticmethod
    def flow_key(packet: Packet) -> tuple:
        """Canonical bidirectional flow key of a packet's 4-tuple."""
        segment = packet.segment
        ends = sorted([(packet.src, segment.src_port),
                       (packet.dst, segment.dst_port)])
        return (ends[0], ends[1])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} seen={self.stats.packets_seen} "
                f"dropped={self.stats.packets_dropped}>")


class MiddleboxChain:
    """A sequence of boxes applied in order (closest to the host first).

    Each box's output packets are fed to the next box; an empty output
    anywhere drops the packet for good, exactly like chained devices on
    a real path.
    """

    def __init__(self, boxes: Sequence[Middlebox] = ()) -> None:
        self.boxes: List[Middlebox] = list(boxes)

    def append(self, box: Middlebox) -> "MiddleboxChain":
        self.boxes.append(box)
        return self

    def process(self, packet: Packet, direction: str,
                now: float) -> List[Packet]:
        packets = [packet]
        for box in self.boxes:
            if direction not in box.directions:
                continue
            survivors: List[Packet] = []
            for candidate in packets:
                box.stats.packets_seen += 1
                # Rewriting boxes mangle the packet *in place* (the
                # object and its id survive); only the segment value is
                # swapped, so mutation shows as a new segment object.
                segment_before = candidate.segment
                out = box.process(candidate, direction, now)
                if not out:
                    box.stats.packets_dropped += 1
                elif (out[0] is not candidate or len(out) > 1
                      or candidate.segment is not segment_before):
                    box.stats.packets_mangled += 1
                    box.stats.packets_created += len(out) - 1
                survivors.extend(out)
            packets = survivors
            if not packets:
                break
        return packets

    def __iter__(self):
        return iter(self.boxes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ",".join(type(box).__name__ for box in self.boxes)
        return f"<MiddleboxChain [{names}]>"


class LinkTap:
    """Binds a chain to one link direction; set as ``Link.middlebox``.

    The link calls ``tap(packet, now)`` for every offered packet and
    forwards whatever comes back (nothing = middlebox drop, counted in
    ``LinkStats.drops_middlebox``).
    """

    def __init__(self, chain: MiddleboxChain, direction: str) -> None:
        if direction not in ("up", "down"):
            raise ValueError(f"bad link direction {direction!r}")
        self.chain = chain
        self.direction = direction

    def __call__(self, packet: Packet, now: float) -> List[Packet]:
        return self.chain.process(packet, self.direction, now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LinkTap {self.direction} {self.chain!r}>"


def install_chain(network, address: str,
                  chain: MiddleboxChain) -> MiddleboxChain:
    """Attach ``chain`` to both access links of the interface at
    ``address`` (e.g. an ISP box just past the client's WiFi AP).

    ``network`` is a :class:`repro.netsim.network.Network` (or anything
    with ``links_for``).  Returns the chain for convenience.
    """
    up_link, down_link = network.links_for(address)
    up_link.middlebox = LinkTap(chain, "up")
    down_link.middlebox = LinkTap(chain, "down")
    return chain

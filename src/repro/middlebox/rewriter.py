"""The sequence-rewriting middlebox.

Some firewalls and proxies randomize TCP initial sequence numbers (an
old anti-prediction hardening), shifting every sequence number of a
flow by a per-flow constant.  Plain TCP never notices -- it is
ISN-relative by design, and so is this simulator, whose subflow
sequence space already starts at 0.  MPTCP's DSS option, however,
carries the *subflow* sequence number the mapping anchors to; a box
that shifts the TCP header's numbers without also fixing up the DSS
anchor (they never do -- that is the point) leaves a mapping that
disagrees with the segment carrying it.

We model exactly the observable damage: the DSS ``ssn`` anchor is
displaced by a per-flow random offset, so the receiver finds payload
outside its announced mapping -- the "SSN assumption broken" failure
mode that forces the RFC 6824 Section 3.6 fallback (single subflow) or
MP_FAIL subflow closure (multiple subflows).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence

from repro.middlebox.base import Middlebox
from repro.netsim.packet import Packet


class SequenceRewriter(Middlebox):
    """Displaces the DSS subflow-sequence anchor by a per-flow offset."""

    def __init__(self, rng: Optional[random.Random] = None,
                 max_offset: int = 2 ** 20,
                 directions: Sequence[str] = ("up", "down")) -> None:
        super().__init__()
        if max_offset < 1:
            raise ValueError("max_offset must be at least 1")
        self.rng = rng
        self.max_offset = max_offset
        self.directions = tuple(directions)
        #: Flow key -> the ISN displacement applied to that flow.
        self.offsets: Dict[tuple, int] = {}
        self.mappings_rewritten = 0

    def _offset_for(self, packet: Packet) -> int:
        key = self.flow_key(packet)
        offset = self.offsets.get(key)
        if offset is None:
            offset = (self.rng.randint(1, self.max_offset)
                      if self.rng is not None else 1)
            self.offsets[key] = offset
        return offset

    def process(self, packet: Packet, direction: str,
                now: float) -> List[Packet]:
        options = packet.segment.options
        if options is None or options.dss is None:
            return [packet]
        offset = self._offset_for(packet)
        mapping = dataclasses.replace(options.dss,
                                      ssn=options.dss.ssn + offset)
        self.mappings_rewritten += 1
        return [self.rewrite(packet, options=dataclasses.replace(
            options, dss=mapping))]

"""Command-line interface: regenerate any paper artifact.

Examples::

    repro list                  # what can be regenerated
    repro fig2 --reps 3         # Figure 2 rows to stdout
    repro tab6 --csv out/       # Table 6, also exported as CSV
    repro fig11 --full          # the true 512 MB backlog experiment
    repro all --reps 1          # everything, quick pass
    repro fig2 --jobs 4         # fan runs out over 4 worker processes
    repro fig9 --jobs 0 --resume fig9.journal
                                # all cores; interrupt + re-run resumes

Each command runs the corresponding measurement campaign (fresh
simulations -- expect seconds to minutes depending on repetitions) and
prints the same rows/series the paper reports.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments.report import render_table, write_csv
from repro.experiments.runner import Campaign, CampaignSpec, RunResult
from repro.experiments import scenarios
from repro.trace.capture import CaptureLevel
from repro.wireless.profiles import TimeOfDay

RowBuilder = Callable[[List[RunResult]], Tuple[List[str], List[List[str]]]]


class Artifact:
    """One regenerable table/figure: a campaign plus row extractors."""

    def __init__(self, name: str, title: str,
                 campaign: Callable[..., CampaignSpec],
                 rows: Dict[str, RowBuilder],
                 plot: Optional[Callable[[List[RunResult]], str]] = None,
                 ) -> None:
        self.name = name
        self.title = title
        self.campaign = campaign
        self.rows = rows
        self.plot = plot


def _artifacts() -> Dict[str, Artifact]:
    s = scenarios
    artifacts = [
        Artifact("fig2", "Figure 2: baseline download times",
                 s.baseline_campaign,
                 {"download time": lambda r: s.download_time_rows(
                     r, label_by_carrier=True)},
                 plot=lambda r: s.download_time_plot(
                     r, label_by_carrier=True)),
        Artifact("fig3", "Figure 3: baseline cellular traffic share",
                 s.baseline_campaign,
                 {"cellular share": lambda r: s.traffic_share_rows(
                     r, label_by_carrier=True)}),
        Artifact("tab2", "Table 2: baseline path characteristics",
                 s.baseline_campaign,
                 {"path characteristics": s.path_characteristics_rows}),
        Artifact("fig4", "Figure 4: small-flow download times",
                 s.small_flows_campaign,
                 {"download time": s.download_time_rows},
                 plot=s.download_time_plot),
        Artifact("fig5", "Figure 5: small-flow cellular share",
                 s.small_flows_campaign,
                 {"cellular share": s.traffic_share_rows}),
        Artifact("tab3", "Table 3: small-flow path characteristics",
                 s.small_flows_campaign,
                 {"path characteristics": s.path_characteristics_rows}),
        Artifact("fig6", "Figure 6: coffee-shop download times",
                 s.coffee_shop_campaign,
                 {"download time": s.download_time_rows}),
        Artifact("fig7", "Figure 7: coffee-shop cellular share",
                 s.coffee_shop_campaign,
                 {"cellular share": s.traffic_share_rows}),
        Artifact("tab4", "Table 4: coffee-shop path characteristics",
                 s.coffee_shop_campaign,
                 {"path characteristics": s.path_characteristics_rows}),
        Artifact("fig8", "Figure 8: simultaneous vs delayed SYN",
                 s.simultaneous_syn_campaign,
                 {"download time": s.syn_comparison_rows}),
        Artifact("fig9", "Figure 9: large-flow download times",
                 s.large_flows_campaign,
                 {"download time": s.download_time_rows},
                 plot=s.download_time_plot),
        Artifact("fig10", "Figure 10: large-flow cellular share",
                 s.large_flows_campaign,
                 {"cellular share": s.traffic_share_rows}),
        Artifact("tab5", "Table 5: large-flow path characteristics",
                 s.large_flows_campaign,
                 {"path characteristics": s.path_characteristics_rows}),
        Artifact("fig11", "Figure 11: ~infinite backlog",
                 s.backlog_campaign,
                 {"download time": s.download_time_rows}),
        Artifact("fig12", "Figure 12: packet RTT CCDFs",
                 s.latency_campaign,
                 {"rtt ccdf": s.rtt_ccdf_rows},
                 plot=s.rtt_ccdf_plot),
        Artifact("fig13", "Figure 13: out-of-order delay CCDFs",
                 s.latency_campaign,
                 {"ofo ccdf": s.ofo_ccdf_rows},
                 plot=s.ofo_ccdf_plot),
        Artifact("tab6", "Table 6: MPTCP RTT and OFO delay",
                 s.latency_campaign,
                 {"rtt and ofo": s.mptcp_rtt_ofo_rows}),
        Artifact("sched", "Scheduler lab: policy regret vs oracle",
                 s.scheduler_lab_campaign,
                 {"scheduler regret": s.scheduler_regret_rows}),
        Artifact("world", "Shared-bottleneck fairness vs background load",
                 s.world_campaign,
                 {"world fairness": s.world_fairness_rows}),
    ]
    return {artifact.name: artifact for artifact in artifacts}


def _build_campaign(artifact: Artifact, args: argparse.Namespace
                    ) -> CampaignSpec:
    kwargs = {"base_seed": args.seed}
    if artifact.name == "fig11":
        if args.full:
            kwargs["size"] = 512 * scenarios.MB
        kwargs["repetitions"] = max(args.reps, 3)
        return artifact.campaign(**kwargs)
    kwargs["repetitions"] = args.reps
    kwargs["periods"] = (tuple(TimeOfDay) if args.full
                         else scenarios.QUICK_PERIODS)
    return artifact.campaign(**kwargs)


def _render_instrumentation(instrumentation) -> str:
    """Worker phase timers/counters aggregated across all processes
    (cProfile only sees the parent; this is the measurement-side view)."""
    report = instrumentation.report()
    if not report.get("phases_s") and not report.get("counters"):
        return "no worker instrumentation collected"
    lines = ["measurement phases (all workers):"]
    for name, seconds in sorted(report.get("phases_s", {}).items()):
        lines.append(f"  {name:10s} {seconds:10.3f}s")
    counters = report.get("counters", {})
    if counters:
        lines.append("engine counters (all workers):")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name:18s} {value:,.0f}")
    if "events_per_sec" in report:
        lines.append(f"events/sec (simulate): {report['events_per_sec']:,}")
    return "\n".join(lines)


class _open_cache:
    """The CLI's shared cache session: one :class:`RunCache` and one
    :class:`CostModel` spanning every campaign of the invocation
    (``--no-cache`` yields a null session; the cost model survives
    either way so dispatch still learns across campaigns)."""

    def __init__(self, args: argparse.Namespace) -> None:
        from repro.cache import CostModel
        self.store = None
        self.cost_model = CostModel()
        if not args.no_cache:
            from repro.cache import RunCache
            self.store = RunCache(args.cache)

    def __enter__(self) -> "_open_cache":
        return self

    def __exit__(self, *exc_info) -> None:
        if self.store is not None:
            self.store.close()


def _run_artifact(artifact: Artifact, args: argparse.Namespace,
                  cache=None, cost_model=None) -> None:
    spec = _build_campaign(artifact, args)
    total = spec.total_runs()
    print(f"\n{artifact.title}")
    print(f"running {total} measurements "
          f"({len(spec.specs)} configs x {len(spec.sizes)} sizes x "
          f"{spec.repetitions} reps x {len(spec.periods)} periods)...",
          flush=True)
    started = time.time()

    # Observability plumbing: one output directory holds per-run
    # traces, flight-recorder dumps, the run log and heartbeats.
    obs_dir = None
    if args.trace != "off" or args.progress or args.trace_out:
        obs_dir = Path(args.trace_out or f"obs-{artifact.name}")
        obs_dir.mkdir(parents=True, exist_ok=True)
    run_log = str(obs_dir / "run_log.jsonl") if obs_dir else None
    trace_dir = str(obs_dir) if args.trace != "off" else None
    heartbeat_dir = str(obs_dir / "heartbeats") if args.progress else None

    renderer = None
    if heartbeat_dir is not None:
        from repro.obs.telemetry import ProgressRenderer
        renderer = ProgressRenderer(heartbeat_dir, total)

    def progress(index, count, result):
        if renderer is not None:
            renderer.note_done(index)
        if args.verbose:
            status = "ok" if result.completed else "INCOMPLETE"
            print(f"  [{index}/{count}] {result.spec.label} "
                  f"{result.size} B: {status}", flush=True)

    instrumentation = None
    if args.profile:
        from repro.perf import Instrumentation
        instrumentation = Instrumentation()

    hits_before = cache.hits if cache is not None else 0
    campaign = Campaign(spec, progress=progress, jobs=args.jobs,
                        journal=args.resume,
                        capture_level=args.capture,
                        trace=args.trace, trace_dir=trace_dir,
                        run_log=run_log, heartbeat_dir=heartbeat_dir,
                        instrumentation=instrumentation,
                        cache=cache, cost_model=cost_model,
                        chunk=args.chunk,
                        backend=args.backend,
                        hosts=(tuple(args.hosts) if args.hosts else None),
                        bind=args.bind,
                        lease_timeout=args.lease_timeout,
                        worker_cache=args.worker_cache)
    if renderer is not None:
        renderer.start()
    try:
        if args.profile:
            from repro.perf import profile_to, render_profile
            with profile_to(args.profile):
                results = campaign.run()
            print(f"profile written to {args.profile}")
            print(render_profile(args.profile))
            print(_render_instrumentation(instrumentation))
        else:
            results = campaign.run()
    finally:
        if renderer is not None:
            renderer.stop()
    if run_log is not None:
        print(f"run log: {run_log}")
    elapsed = time.time() - started
    cache_note = ""
    if cache is not None:
        hits = cache.hits - hits_before
        if hits:
            cache_note = f", {hits}/{total} from run cache"
    print(f"done in {elapsed:.1f}s "
          f"({campaign.completed_fraction():.0%} completed{cache_note})\n")
    for label, builder in artifact.rows.items():
        headers, rows = builder(results)
        print(render_table(headers, rows, title=label))
        print()
        if args.csv:
            directory = Path(args.csv)
            directory.mkdir(parents=True, exist_ok=True)
            safe = label.replace(" ", "_")
            path = directory / f"{artifact.name}_{safe}.csv"
            write_csv(path, headers, rows)
            print(f"wrote {path}")
    if args.plot and artifact.plot is not None:
        print(artifact.plot(results))
        print()
    if args.save:
        from repro.experiments.storage import save_results
        written = save_results(args.save, results, append=True)
        print(f"appended {written} results to {args.save}")


def _report_cell(value) -> str:
    """Stable cell text for SLA tables: the determinism guard pins the
    CSV digest, so formatting must never drift."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return format(value, "g")
    return str(value)


def _report_tables(store) -> List[Tuple[str, List[str], List[List[str]]]]:
    """Render the analytics queries as (name, headers, rows) triples —
    shared by ``repro report`` and the determinism guard."""
    sla_headers = ["label", "failure", "size", "n", "p50", "p90", "p99",
                   "p999", "stalled", "p99_stall_s", "crossed_failure",
                   "survived_failure"]
    sla_rows = [[_report_cell(row[name]) for name in sla_headers]
                for row in store.sla_table()]
    share_headers = ["label", "failure", "size", "path", "n", "mean_share"]
    share_rows = [[_report_cell(row[name]) for name in share_headers]
                  for row in store.path_shares()]
    survival_rows = [[_report_cell(t), _report_cell(s)]
                     for t, s in store.survival_curve().to_rows()]
    return [
        ("sla", sla_headers, sla_rows),
        ("path_shares", share_headers, share_rows),
        ("survival", ["t_after_failure_s", "fraction_still_transferring"],
         survival_rows),
    ]


def _run_report(args: argparse.Namespace, cache=None,
                cost_model=None) -> None:
    """The ``repro report`` artifact: run the SLA campaign with the
    metrics registry on, ingest everything into an analytics database,
    and render/export the SLA tables."""
    from repro.experiments.storage import save_results
    from repro.obs.analytics import AnalyticsStore

    out_dir = Path(args.trace_out or "obs-report")
    out_dir.mkdir(parents=True, exist_ok=True)
    spec = scenarios.sla_report_campaign(
        repetitions=args.reps,
        periods=(tuple(TimeOfDay) if args.full
                 else scenarios.QUICK_PERIODS),
        base_seed=args.seed)
    total = spec.total_runs()
    print("\nSLA report: percentile ladders, stalls and failure survival")
    print(f"running {total} measurements with metrics on...", flush=True)
    started = time.time()
    run_log = str(out_dir / "run_log.jsonl")
    campaign = Campaign(spec, jobs=args.jobs, journal=args.resume,
                        capture_level=args.capture,
                        trace=args.trace,
                        trace_dir=(str(out_dir) if args.trace != "off"
                                   else None),
                        run_log=run_log, metrics="on",
                        cache=cache, cost_model=cost_model,
                        chunk=args.chunk,
                        backend=args.backend,
                        hosts=(tuple(args.hosts) if args.hosts else None),
                        bind=args.bind,
                        lease_timeout=args.lease_timeout,
                        worker_cache=args.worker_cache)
    results = campaign.run()
    save_results(out_dir / "report-results.jsonl", results)
    print(f"done in {time.time() - started:.1f}s "
          f"({campaign.completed_fraction():.0%} completed)\n")

    db_path = out_dir / "analytics.sqlite"
    with AnalyticsStore(str(db_path)) as store:
        counts = store.ingest_directory(str(out_dir))
        tables = _report_tables(store)
    print(f"analytics db: {db_path} "
          f"({counts['results']} results, "
          f"{counts['run_log_records']} run-log records)")
    for name, headers, rows in tables:
        print()
        print(render_table(headers, rows, title=name.replace("_", " ")))
        path = out_dir / f"report_{name}.csv"
        write_csv(path, headers, rows)
        print(f"wrote {path}")


def _worker_main(argv: List[str]) -> int:
    """``repro worker``: the distributed-campaign worker daemon.

    Connects to a coordinator (``repro <artifact> --backend tcp`` or
    any ``execute_plan`` with a distributed backend), leases campaign
    cells, executes them with the standard worker init path, and
    publishes content-addressed result objects back — skipping
    anything the coordinator already has.  Exits 0 when the
    coordinator's plan drains.
    """
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description="Lease and execute campaign cells from a "
                    "distributed-campaign coordinator.")
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator endpoint to lease work from")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run up to N leased cells concurrently in "
                             "a local process pool (0 = one per "
                             "available core, CPU-affinity aware; "
                             "default 1)")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="worker-local run cache: leased cells "
                             "already stored there are served (and "
                             "offered to the coordinator by digest) "
                             "without re-execution")
    parser.add_argument("--label", metavar="NAME", default=None,
                        help="worker label in the coordinator's run "
                             "log and heartbeats (default: "
                             "hostname-pid)")
    parser.add_argument("--retry-s", type=float, default=10.0,
                        metavar="S",
                        help="keep retrying the initial connection for "
                             "S seconds (an ssh-spawned worker can "
                             "beat the coordinator's listener; "
                             "default 10)")
    args = parser.parse_args(argv)
    from repro.experiments.distributed import run_worker
    return run_worker(args.connect, jobs=args.jobs,
                      cache_dir=args.cache, label=args.label,
                      retry_s=args.retry_s)


def _cache_main(argv: List[str]) -> int:
    """``repro cache``: maintenance commands for the run-cache store."""
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Inspect and maintain the content-addressed run "
                    "cache.")
    parser.add_argument("command", choices=["gc", "stats"],
                        help="gc prunes orphaned temp files, "
                             "unreferenced objects and (with "
                             "--older-than) stale entries; stats "
                             "prints entry counts")
    parser.add_argument("--cache", metavar="DIR", default=".repro-cache",
                        help="cache directory (default .repro-cache)")
    parser.add_argument("--dry-run", action="store_true",
                        help="report what gc would remove without "
                             "touching the store")
    parser.add_argument("--older-than", type=float, default=None,
                        metavar="DAYS",
                        help="also prune entries whose objects were "
                             "written more than DAYS days ago "
                             "(removed from the index too)")
    args = parser.parse_args(argv)
    from repro.cache import RunCache
    with RunCache(args.cache) as store:
        if args.command == "stats":
            stats = store.stats()
            print(f"run cache {args.cache}: {stats['entries']} entries")
            return 0
        older_than_s = (args.older_than * 86400.0
                        if args.older_than is not None else None)
        stats = store.gc(dry_run=args.dry_run,
                         older_than_s=older_than_s)
    verb = "would remove" if args.dry_run else "removed"
    print(f"run cache {args.cache}: {verb} "
          f"{stats['tmp_files']} temp file(s), "
          f"{stats['unreferenced_objects']} unreferenced object(s), "
          f"{stats['stale_entries']} stale entr(ies), "
          f"{stats['dangling_index_lines']} dangling index line(s) "
          f"({stats['bytes_reclaimed']} bytes); "
          f"{stats['entries_kept']} entries kept")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Output piped into `head` etc.; exit quietly like any CLI tool.
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), 1)
        return 0


def _main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Subcommand routing ahead of the artifact parser: `repro worker`
    # and `repro cache` have their own flag sets and never run a
    # campaign themselves.
    if argv and argv[0] == "worker":
        return _worker_main(argv[1:])
    if argv and argv[0] == "cache":
        return _cache_main(argv[1:])
    artifacts = _artifacts()
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Regenerate the tables and figures of 'A "
                     "Measurement-based Study of MultiPath TCP "
                     "Performance over Wireless Networks' (IMC 2013) "
                     "from the packet-level simulation."))
    parser.add_argument("artifact",
                        choices=sorted(artifacts) + ["all", "list",
                                                     "report",
                                                     "scorecard",
                                                     "validate",
                                                     "run-campaign"],
                        help="which table/figure to regenerate; "
                             "'report' runs the SLA campaign and "
                             "renders analytics tables, "
                             "'scorecard' grades the claims, "
                             "'validate' cross-checks traces against "
                             "protocol internals, 'run-campaign' runs "
                             "a JSON campaign definition (--file)")
    parser.add_argument("--file", metavar="JSON",
                        help="campaign definition for run-campaign")
    parser.add_argument("--reps", type=int, default=2,
                        help="repetitions per configuration cell "
                             "(paper: 20 per period; default: 2)")
    parser.add_argument("--full", action="store_true",
                        help="full experiment: all four day periods; "
                             "512 MB objects for fig11")
    parser.add_argument("--seed", type=int, default=2013,
                        help="campaign base seed (default 2013)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run measurements across N worker "
                             "processes (0 = one per CPU core); "
                             "results are bit-identical to a serial "
                             "run (default 1)")
    parser.add_argument("--resume", metavar="FILE",
                        help="journal completed runs to FILE and, on "
                             "re-invocation, skip cells already "
                             "recorded there instead of recomputing")
    parser.add_argument("--cache", metavar="DIR", default=".repro-cache",
                        help="cross-campaign run cache directory: "
                             "completed cells are stored keyed by "
                             "(config, size, seed, period, format "
                             "version) and restored by any later "
                             "campaign that needs the identical cell "
                             "— results stay byte-identical (default: "
                             ".repro-cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the run cache: recompute every "
                             "cell even if a stored result exists")
    parser.add_argument("--backend", default="pool",
                        choices=["pool", "subprocess", "ssh", "tcp"],
                        help="campaign execution backend: 'pool' is "
                             "the in-process worker pool (default); "
                             "'subprocess' spawns --jobs local "
                             "`repro worker` daemons over TCP; 'ssh' "
                             "spawns one worker per --hosts entry; "
                             "'tcp' binds the coordinator and waits "
                             "for externally started workers (`repro "
                             "worker --connect HOST:PORT`). All "
                             "backends produce byte-identical results")
    parser.add_argument("--hosts", metavar="HOST", nargs="+",
                        default=None,
                        help="ssh backend: hosts to spawn one worker "
                             "on each (passwordless ssh; `repro` must "
                             "be on the remote PATH)")
    parser.add_argument("--bind", metavar="HOST:PORT",
                        default="127.0.0.1:0",
                        help="coordinator listen address for "
                             "distributed backends (port 0 picks a "
                             "free port; default 127.0.0.1:0 — use "
                             "0.0.0.0:PORT for ssh/tcp workers on "
                             "other hosts)")
    parser.add_argument("--lease-timeout", type=float, default=60.0,
                        metavar="S",
                        help="distributed backends: reassign a "
                             "worker's leased cells after S seconds "
                             "without a renewal (default 60)")
    parser.add_argument("--worker-cache", metavar="DIR", default=None,
                        help="subprocess backend: worker-local run "
                             "cache directory (warm cells are served "
                             "by digest without re-execution)")
    parser.add_argument("--chunk", type=int, default=4, metavar="N",
                        help="batch up to N tiny cells per worker "
                             "task to amortize pickling/IPC overhead "
                             "(expensive cells always travel alone; "
                             "1 disables batching; default 4)")
    parser.add_argument("--csv", metavar="DIR",
                        help="also export rows as CSV into DIR")
    parser.add_argument("--plot", action="store_true",
                        help="render ASCII box plots / CCDF charts")
    parser.add_argument("--save", metavar="FILE",
                        help="append raw results as JSON lines to FILE")
    parser.add_argument("--capture",
                        choices=[level.value for level in CaptureLevel],
                        default=CaptureLevel.METRICS_ONLY.value,
                        help="per-packet capture retention: metrics-only "
                             "(default; streams per-flow counters), "
                             "headers (PacketRecords without option "
                             "introspection), or full (everything, "
                             "needed for mptcptrace-style analysis)")
    parser.add_argument("--profile", metavar="FILE",
                        help="run under cProfile and dump pstats "
                             "data to FILE (printed top functions, "
                             "inspectable later with python -m pstats); "
                             "under --jobs N, worker phase timers and "
                             "engine counters are aggregated into the "
                             "parent's summary")
    parser.add_argument("--trace", choices=["off", "ring", "jsonl"],
                        default="off",
                        help="protocol-event tracing per run: 'ring' "
                             "keeps an in-memory flight recorder "
                             "(dumped to --trace-out when a run "
                             "raises), 'jsonl' streams every event to "
                             "a per-run file under --trace-out "
                             "(default: off; tracing never changes "
                             "results)")
    parser.add_argument("--trace-out", metavar="DIR",
                        help="directory for observability output: "
                             "per-run traces, flight-recorder dumps "
                             "and the campaign run_log.jsonl "
                             "(default: obs-<artifact>)")
    parser.add_argument("--progress", action="store_true",
                        help="render live per-worker heartbeats "
                             "(runs done, events/sec, current config, "
                             "ETA) while the campaign executes")
    parser.add_argument("--verbose", action="store_true",
                        help="print per-measurement progress")
    args = parser.parse_args(argv)

    if args.resume:
        directory = Path(args.resume).resolve().parent
        if not directory.is_dir():
            parser.error(f"--resume: directory {directory} does not exist")
    if args.artifact == "list":
        for name in sorted(artifacts):
            print(f"{name:7s} {artifacts[name].title}")
        print("report     SLA tables + survival curves from metrics")
        print("scorecard  grade every headline claim (PASS/FAIL)")
        print("validate   cross-check traces vs protocol internals")
        print("run-campaign  run a JSON campaign definition (--file)")
        return 0
    if args.artifact == "report":
        with _open_cache(args) as cache:
            _run_report(args, cache=cache.store,
                        cost_model=cache.cost_model)
        return 0
    if args.artifact == "run-campaign":
        if not args.file:
            parser.error("run-campaign requires --file JSON")
        from repro.experiments.campaign_file import load_campaign
        spec = load_campaign(args.file)
        artifact = Artifact(
            spec.name, f"Custom campaign: {spec.name}",
            lambda **kwargs: spec,
            {"download time": scenarios.download_time_rows,
             "cellular share": scenarios.traffic_share_rows},
            plot=scenarios.download_time_plot)
        with _open_cache(args) as cache:
            _run_artifact(artifact, args, cache=cache.store,
                          cost_model=cache.cost_model)
        return 0
    if args.artifact == "scorecard":
        from repro.experiments.scorecard import render_scorecard, \
            run_scorecard
        seeds = tuple(range(args.seed, args.seed + max(args.reps, 3)))
        results = run_scorecard(seeds=seeds)
        print(render_scorecard(results))
        return 0 if all(result.passed for result in results) else 1
    if args.artifact == "validate":
        from repro.experiments.validation import render_checks, \
            validate_transfer
        checks = validate_transfer(seed=args.seed)
        print(render_checks(checks))
        return 0 if all(check.ok for check in checks) else 1
    selected = (sorted(artifacts) if args.artifact == "all"
                else [args.artifact])
    # One cache and one cost model span every selected artifact, so
    # `repro all` computes each unique cell exactly once — fig2, fig3
    # and tab2 share the whole "baseline" matrix — and later campaigns
    # dispatch with wall times calibrated by the earlier ones.
    with _open_cache(args) as cache:
        for name in selected:
            _run_artifact(artifacts[name], args, cache=cache.store,
                          cost_model=cache.cost_model)
        if args.artifact == "all":
            # The SLA report rides along at the end of `repro all`: its
            # cells carry distinct seeds (campaign name feeds seed
            # derivation), so it shares the cache session but never
            # collides with metrics-off cells from the artifacts above.
            _run_report(args, cache=cache.store,
                        cost_model=cache.cost_model)
        if cache.store is not None and cache.store.hits:
            stats = cache.store.stats()
            print(f"run cache {args.cache}: {stats['hits']} hits / "
                  f"{stats['misses']} misses "
                  f"({stats['entries']} entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Cross-campaign run cache and cost-aware dispatch.

* :mod:`repro.cache.store` -- :class:`RunCache`, the sharded
  content-addressed on-disk result store shared across campaigns
  (keyed by ``descriptor_key`` + storage ``FORMAT_VERSION``).
* :mod:`repro.cache.cost` -- :class:`CostModel` wall-clock estimates
  (run-log calibrated, heuristic fallback) and the longest-job-first
  ordering / tiny-cell chunking used by
  :func:`repro.experiments.parallel.execute_plan`.
"""

from repro.cache.cost import (
    CostModel,
    build_tasks,
    chunk_positions,
    order_longest_first,
)
from repro.cache.store import RunCache, cache_digest

__all__ = [
    "RunCache",
    "cache_digest",
    "CostModel",
    "build_tasks",
    "chunk_positions",
    "order_longest_first",
]

"""Cost-aware dispatch: estimate, order and batch campaign cells.

Plan-order submission leaves a worker pool tail-bound on stragglers: a
fig09-style 16 MB MPTCP cell costs roughly an order of magnitude more
wall clock than a fig02-style 2 MB cell, and the per-round shuffle the
paper mandates scatters the expensive cells randomly through the plan,
so the last worker regularly picks up a 16 MB run when everyone else
is already done.  Submitting longest-job-first (the classical LPT
heuristic) kills that tail; batching the *tiny* cells into chunks
amortizes per-task pickling/IPC overhead.

Neither decision can change a single result byte — results are
reassembled by plan position — so the cost model only has to be
*roughly* right.  Estimates come from, in order of preference:

1. Observed wall times for the exact ``(identity, size)`` — from a
   previous campaign's run log (:meth:`CostModel.from_run_log`) or
   from runs completed earlier in this invocation
   (:meth:`CostModel.observe`).
2. Observed wall times for the same identity at another size, scaled
   linearly (simulation cost is dominated by per-packet work).
3. A seconds-scale heuristic: fixed setup cost plus
   ``size x FlowSpec.cost_weight`` per-byte cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

#: Heuristic constants, loosely calibrated against the vectorized
#: packet core on the development machine (a 2 MB SP-WiFi run ~0.11 s,
#: a 2 MB MP-2 run ~0.17 s, a 16 MB SP-WiFi run ~0.9 s).  Only the
#: *ranking* of cells matters for dispatch, not the absolute scale.
SETUP_COST_S = 0.03
PER_BYTE_COST_S = 4.0e-8

#: Cells estimated below this are "tiny": their per-task dispatch
#: overhead (descriptor pickling, future bookkeeping, IPC) is a
#: visible fraction of their runtime, so they are batched into chunks.
#: Cells at or above it always travel alone to keep the pool balanced.
TINY_COST_S = 0.25


class CostModel:
    """Seconds-scale wall-clock estimates for campaign cells."""

    def __init__(self) -> None:
        #: ``(identity, size) -> (total_seconds, samples)`` running sums.
        self._observed: Dict[Tuple[str, int], Tuple[float, int]] = {}

    # ------------------------------------------------------------------
    # Calibration inputs
    # ------------------------------------------------------------------

    @classmethod
    def from_run_log(cls, path) -> "CostModel":
        """Calibrate from a telemetry run log's finish records."""
        from repro.obs.telemetry import run_log_wall_times
        model = cls()
        try:
            observed = run_log_wall_times(path)
        except OSError:
            return model
        for key, samples in observed.items():
            for wall_s in samples:
                model._record(key, wall_s)
        return model

    def observe(self, descriptor, wall_s: float) -> None:
        """Feed one completed run's wall time back into the model."""
        key = self._key(descriptor)
        if key is not None:
            self._record(key, wall_s)

    def _record(self, key: Tuple[str, int], wall_s: float) -> None:
        total, count = self._observed.get(key, (0.0, 0))
        self._observed[key] = (total + wall_s, count + 1)

    @property
    def calibrated(self) -> int:
        """How many distinct ``(identity, size)`` cells have samples."""
        return len(self._observed)

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------

    @staticmethod
    def _key(descriptor) -> Optional[Tuple[str, int]]:
        spec = getattr(descriptor, "spec", None)
        size = getattr(descriptor, "size", None)
        if spec is None or size is None:
            return None
        return (spec.identity, size)

    def estimate(self, descriptor) -> float:
        """Estimated wall seconds for one cell (never raises)."""
        key = self._key(descriptor)
        if key is None:
            return SETUP_COST_S
        exact = self._observed.get(key)
        if exact is not None:
            total, count = exact
            return total / count
        identity, size = key
        # Same configuration at another size: scale the per-byte part.
        nearest = None
        for (other_identity, other_size), (total, count) \
                in self._observed.items():
            if other_identity != identity or other_size <= 0:
                continue
            if nearest is None or abs(other_size - size) < \
                    abs(nearest[0] - size):
                nearest = (other_size, total / count)
        if nearest is not None:
            other_size, mean = nearest
            per_byte = max(mean - SETUP_COST_S, 0.0) / other_size
            return SETUP_COST_S + per_byte * size
        weight = getattr(getattr(descriptor, "spec", None),
                         "cost_weight", 1.0)
        return SETUP_COST_S + size * PER_BYTE_COST_S * weight


# ----------------------------------------------------------------------
# Ordering and chunking
# ----------------------------------------------------------------------

def order_longest_first(positions: Sequence[int], plan: Sequence,
                        model: CostModel) -> List[int]:
    """Pending plan positions, most expensive first.

    Ties (and the common all-equal case) keep plan order, so the
    submission sequence is a pure function of the plan and the model.
    """
    estimates = {position: model.estimate(plan[position])
                 for position in positions}
    return sorted(positions,
                  key=lambda position: (-estimates[position], position))


def chunk_positions(order: Sequence[int], plan: Sequence,
                    model: CostModel, chunk: int,
                    tiny_cost_s: float = TINY_COST_S,
                    ) -> List[List[int]]:
    """Partition an ordered position list into submission tasks.

    ``chunk <= 1`` disables batching (every task is one cell).
    Otherwise cells estimated under ``tiny_cost_s`` are packed, up to
    ``chunk`` per task, in the given order; expensive cells always go
    alone.  Deterministic: a pure function of its inputs.
    """
    if chunk <= 1:
        return [[position] for position in order]
    tasks: List[List[int]] = []
    current: List[int] = []
    for position in order:
        if model.estimate(plan[position]) >= tiny_cost_s:
            tasks.append([position])
            continue
        current.append(position)
        if len(current) >= chunk:
            tasks.append(current)
            current = []
    if current:
        tasks.append(current)
    return tasks


def build_tasks(pending: Sequence[int], plan: Sequence,
                model: CostModel, dispatch: str, chunk: int,
                workers: int) -> List[List[int]]:
    """The full dispatch pipeline: order, cap the chunk size, batch.

    The chunk size is capped so batching can never starve the pool:
    with few pending cells a large ``--chunk`` would otherwise fuse
    the whole campaign into fewer tasks than there are workers.
    """
    if dispatch == "ljf":
        order: Union[List[int], Sequence[int]] = \
            order_longest_first(pending, plan, model)
    elif dispatch == "plan":
        order = list(pending)
    else:
        raise ValueError(f"unknown dispatch policy {dispatch!r}; "
                         f"expected 'ljf' or 'plan'")
    if workers > 0:
        chunk = min(chunk, max(1, len(pending) // workers))
    return chunk_positions(order, plan, model, chunk)

"""The cross-campaign run cache: a content-addressed result store.

The paper's measurement matrix is re-run from scratch by every
figure/table campaign even though many cells are bit-identical across
campaigns — ``fig2``, ``fig3`` and ``tab2`` all execute the *same*
"baseline" campaign, and every run is a pure function of its
:class:`~repro.experiments.runner.RunDescriptor` (the determinism
guarantee the parallel executor is built on).  :class:`RunCache`
exploits that purity: completed runs are stored on disk keyed by
``(FlowSpec.identity, size, seed, period, FORMAT_VERSION)``, shared
across campaigns and invocations, so ``repro all`` computes each
unique cell exactly once and later campaigns warm-start.

Layout (all under one cache directory)::

    meta.json           {"schema": 1, "format_version": N}
    index.jsonl         one entry digest per line (O(1) membership)
    objects/ab/<sha256>.json   the stored result, content-addressed

Design points:

* **Content addressing.**  The entry name is the SHA-256 of the cell's
  :func:`~repro.experiments.runner.descriptor_key` *plus* the storage
  ``FORMAT_VERSION``, sharded over 256 two-hex-digit subdirectories.
  Because the version is part of the address, a format bump can never
  serve a stale row even if the metadata stamp were tampered with.
* **Atomic writes.**  Objects are written to a temp file and
  ``os.replace``d into place — the same discipline as
  :func:`repro.experiments.storage.save_results` — so readers (and
  concurrent campaigns) never observe a torn entry.
* **O(1) membership.**  ``index.jsonl`` is an append-only digest list
  loaded into a set at open.  Losing an index line (crash between the
  object replace and the index append) is safe: the entry merely reads
  as a miss and is re-put idempotently.
* **Explicit invalidation.**  ``meta.json`` stamps the format version;
  opening a cache written under a different version wipes it (objects
  and index) before any lookup, so a bump is a *full* miss.
* **Corruption tolerance.**  A truncated or corrupted object is
  skipped with a :class:`RuntimeWarning` and recomputed — mirroring
  ``load_results``' truncated-line handling — never a crash.

Results are stored at full fidelity (``max_samples=None``): a cache
hit must hand back *exactly* what a fresh run would compute, or the
serial-equals-cached determinism guarantee breaks.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import time
import warnings
from pathlib import Path
from typing import List, Optional, Union

from repro.experiments import storage as _storage
from repro.experiments.runner import RunResult, descriptor_key
from repro.experiments.storage import result_from_dict, result_to_dict

#: Bump when the on-disk cache layout itself changes shape.
CACHE_SCHEMA = 1


def cache_digest(key: str, format_version: int) -> str:
    """Content address of one cell: descriptor key + format version."""
    return hashlib.sha256(
        f"{key}|v{format_version}".encode("utf-8")).hexdigest()


class RunCache:
    """Sharded, content-addressed on-disk store of completed runs.

    ``format_version`` defaults to the *current*
    :data:`repro.experiments.storage.FORMAT_VERSION`; passing an
    explicit value exists for tests that exercise invalidation.
    """

    def __init__(self, root: Union[str, Path],
                 format_version: Optional[int] = None) -> None:
        self.root = Path(root)
        self.format_version = (_storage.FORMAT_VERSION
                               if format_version is None
                               else format_version)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.invalidated = False
        self.root.mkdir(parents=True, exist_ok=True)
        self._objects = self.root / "objects"
        self._index_path = self.root / "index.jsonl"
        self._check_version()
        self._index = self._load_index()
        # Open eagerly, like the journal: an unwritable cache directory
        # must fail before simulation work is spent on it.
        self._index_handle = open(self._index_path, "a")

    # ------------------------------------------------------------------
    # Open-time bookkeeping
    # ------------------------------------------------------------------

    def _check_version(self) -> None:
        """Wipe the store if it was written under another version."""
        meta_path = self.root / "meta.json"
        meta = None
        if meta_path.exists():
            try:
                meta = json.loads(meta_path.read_text())
            except (OSError, json.JSONDecodeError):
                meta = None  # unreadable stamp: treat as stale
        if meta is not None and meta.get("schema") == CACHE_SCHEMA \
                and meta.get("format_version") == self.format_version:
            return
        if meta is not None or self._index_path.exists() \
                or self._objects.exists():
            # Stale entries could never be *served* (the version is in
            # the digest), but leaving them would grow the store
            # without bound across bumps — so invalidation is explicit.
            shutil.rmtree(self._objects, ignore_errors=True)
            try:
                os.unlink(self._index_path)
            except OSError:
                pass
            self.invalidated = meta is not None
        self._write_json(meta_path, {"schema": CACHE_SCHEMA,
                                     "format_version": self.format_version})

    def _load_index(self) -> set:
        index = set()
        try:
            with open(self._index_path, "r") as handle:
                for line in handle:
                    digest = line.strip()
                    if len(digest) == 64:
                        index.add(digest)
                    # else: a torn trailing line from a killed writer;
                    # the object reads as a miss and is re-put.
        except OSError:
            pass
        return index

    def _write_json(self, path: Path, payload: dict) -> None:
        fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                        prefix=f".{path.name}.",
                                        suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, separators=(",", ":"))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def _object_path(self, digest: str) -> Path:
        return self._objects / digest[:2] / f"{digest}.json"

    def key_of(self, result: RunResult) -> str:
        return descriptor_key(result.spec, result.size,
                              result.seed, result.period)

    def __contains__(self, key: str) -> bool:
        return cache_digest(key, self.format_version) in self._index

    def __len__(self) -> int:
        return len(self._index)

    def get(self, key: str) -> Optional[RunResult]:
        """The stored result for one descriptor key, or ``None``.

        Never raises on a bad entry: corruption demotes the entry to a
        miss (with a warning) and the campaign recomputes the cell.
        """
        digest = cache_digest(key, self.format_version)
        if digest not in self._index:
            self.misses += 1
            return None
        path = self._object_path(digest)
        try:
            wrapper = json.loads(path.read_text())
            if wrapper.get("key") != key or \
                    wrapper.get("format_version") != self.format_version:
                raise ValueError("entry does not match its address")
            result = result_from_dict(wrapper["result"])
        except (OSError, ValueError, KeyError, TypeError):
            warnings.warn(f"run cache {self.root}: skipping corrupt "
                          f"entry {digest[:12]} (will recompute)",
                          RuntimeWarning)
            self._index.discard(digest)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, result: RunResult) -> bool:
        """Store one completed run (idempotent per key).

        The object lands atomically *before* its index line, so a
        crash between the two leaves a re-puttable miss, never a
        dangling index entry pointing at nothing durable.
        """
        key = self.key_of(result)
        digest = cache_digest(key, self.format_version)
        if digest in self._index:
            return False
        if self._index_handle is None:
            raise ValueError(f"run cache {self.root} is closed")
        path = self._object_path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._write_json(path, {
            "key": key,
            "format_version": self.format_version,
            "result": result_to_dict(result, max_samples=None),
        })
        self._index_handle.write(digest + "\n")
        self._index_handle.flush()
        self._index.add(digest)
        self.puts += 1
        return True

    # ------------------------------------------------------------------
    # Object-level transfer (distributed sync)
    # ------------------------------------------------------------------
    #
    # The distributed backend moves *objects*, not results: a worker
    # offers the digests it holds, the coordinator answers with the
    # subset it lacks (``missing``), and only those wrappers travel.
    # Because the digest is the content address, a transferred object
    # lands in the shared ``objects/`` store bit-identical to one the
    # coordinator would have written itself.

    def digest_of(self, key: str) -> str:
        """The content address this store files ``key`` under."""
        return cache_digest(key, self.format_version)

    def missing(self, digests) -> List[str]:
        """Of ``digests``, the ones this store does not hold — the
        want-list half of the offer/want sync negotiation."""
        return [digest for digest in digests
                if digest not in self._index]

    def export_object(self, key: str) -> Optional[dict]:
        """The raw content-addressed wrapper for one key (``{key,
        format_version, result}``), or ``None`` on a miss/corruption.

        This is the byte format that travels between hosts; importing
        it elsewhere reproduces the entry exactly.
        """
        digest = cache_digest(key, self.format_version)
        if digest not in self._index:
            return None
        try:
            wrapper = json.loads(self._object_path(digest).read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if wrapper.get("key") != key or \
                wrapper.get("format_version") != self.format_version:
            return None
        return wrapper

    def import_object(self, wrapper: dict) -> bool:
        """Store one exported wrapper verbatim (idempotent per key).

        Validates the address before writing: a wrapper whose key or
        format version does not hash to its own object path is
        rejected, so a bad peer cannot poison the store.
        """
        key = wrapper.get("key")
        if not isinstance(key, str) or \
                wrapper.get("format_version") != self.format_version:
            raise ValueError(
                f"cannot import object for format version "
                f"{wrapper.get('format_version')!r} into a v"
                f"{self.format_version} store")
        digest = cache_digest(key, self.format_version)
        if digest in self._index:
            return False
        if self._index_handle is None:
            raise ValueError(f"run cache {self.root} is closed")
        path = self._object_path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._write_json(path, {"key": key,
                                "format_version": self.format_version,
                                "result": wrapper["result"]})
        self._index_handle.write(digest + "\n")
        self._index_handle.flush()
        self._index.add(digest)
        self.puts += 1
        return True

    def sync_into(self, other: "RunCache") -> int:
        """Copy every object the ``other`` store lacks into it.

        The shared-filesystem flavour of the wire sync: two cache
        directories (e.g. a worker-local store and an NFS-mounted
        shared one) converge by digest, skipping everything already
        present.  Returns the number of objects transferred.
        """
        if other.format_version != self.format_version:
            raise ValueError("cannot sync caches across format versions")
        copied = 0
        for digest in sorted(other.missing(self._index)):
            try:
                wrapper = json.loads(
                    self._object_path(digest).read_text())
            except (OSError, json.JSONDecodeError):
                continue  # corrupt at the source: skip, never spread
            if other.import_object(wrapper):
                copied += 1
        return copied

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def gc(self, dry_run: bool = False,
           older_than_s: Optional[float] = None) -> dict:
        """Prune orphaned temp files, unreferenced objects and stale
        entries; heal the index.

        Three classes of garbage accumulate in a long-lived store:

        * ``.*.tmp`` files — a worker SIGKILLed between ``mkstemp``
          and ``os.replace`` leaves its temp file behind forever.
        * unreferenced objects — an object whose digest never made it
          into ``index.jsonl`` (killed between the object replace and
          the index append); it reads as a miss, so it is dead weight.
        * stale entries (only with ``older_than_s``) — entries whose
          object file was last written more than that many seconds
          ago, pruned *from the index too*.

        Index lines pointing at missing object files are dropped by
        rewriting the index atomically.  ``dry_run`` reports without
        touching anything.  Returns a stats dict.
        """
        stats = {"tmp_files": 0, "unreferenced_objects": 0,
                 "stale_entries": 0, "dangling_index_lines": 0,
                 "bytes_reclaimed": 0, "entries_kept": 0,
                 "dry_run": dry_run}
        now = time.time()
        keep = set(self._index)
        doomed: List[Path] = []
        roots = [self.root, self._objects]
        if self._objects.exists():
            roots.extend(path for path in sorted(self._objects.iterdir())
                         if path.is_dir())
        for directory in roots:
            try:
                children = sorted(directory.iterdir())
            except OSError:
                continue
            for path in children:
                if not path.is_file():
                    continue
                name = path.name
                if name.startswith(".") and name.endswith(".tmp"):
                    stats["tmp_files"] += 1
                    doomed.append(path)
                elif directory.parent == self._objects \
                        and name.endswith(".json"):
                    digest = name[:-5]
                    if digest not in self._index:
                        stats["unreferenced_objects"] += 1
                        doomed.append(path)
                    elif older_than_s is not None:
                        try:
                            mtime = path.stat().st_mtime
                        except OSError:
                            continue
                        if now - mtime > older_than_s:
                            stats["stale_entries"] += 1
                            keep.discard(digest)
                            doomed.append(path)
        dangling = {digest for digest in keep
                    if not self._object_path(digest).exists()}
        stats["dangling_index_lines"] = len(dangling)
        keep -= dangling
        for path in doomed:
            try:
                stats["bytes_reclaimed"] += path.stat().st_size
            except OSError:
                pass
        stats["entries_kept"] = len(keep)
        if dry_run:
            return stats
        for path in doomed:
            try:
                path.unlink()
            except OSError:
                pass
        if keep != self._index or stats["dangling_index_lines"]:
            # Rewrite the index atomically, then re-open the append
            # handle on the new file so later puts land after it.
            fd, tmp_name = tempfile.mkstemp(
                dir=self.root, prefix=".index.jsonl.", suffix=".tmp")
            with os.fdopen(fd, "w") as handle:
                for digest in sorted(keep):
                    handle.write(digest + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self._index_path)
            if self._index_handle is not None:
                self._index_handle.close()
                self._index_handle = open(self._index_path, "a")
            self._index = set(keep)
        return stats

    # ------------------------------------------------------------------
    # Stats / lifecycle
    # ------------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    def stats(self) -> dict:
        return {"entries": len(self._index), "hits": self.hits,
                "misses": self.misses, "puts": self.puts,
                "hit_rate": round(self.hit_rate, 4)}

    def close(self) -> None:
        if self._index_handle is not None:
            self._index_handle.close()
            self._index_handle = None

    def __enter__(self) -> "RunCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Open- and closed-loop arrival processes feeding the fluid world.

Two workload-generation disciplines, per the classic distinction:

* **Open loop** (:class:`PoissonArrivals`): sessions arrive as a
  Poisson process, independent of how the network is doing.  The right
  model for an access link aggregating many independent users.
* **Closed loop** (:class:`ClosedLoopUsers`): a fixed population of
  users, each cycling *think -> download -> think*.  Offered load
  self-adjusts to congestion; with zero think time the population pins
  exactly N flows in flight -- which is how the manyflow benchmark
  sustains a precise concurrency level.

Flow sizes come from a small registry of distributions sharing the
scheduler-lab spec syntax (``"name:key=value,..."``), including the
paper's small/large split: most transfers are short (web-ish) with a
minority of large bulk downloads -- the bimodal mix behind the
small-flow penalty of Figure 15.

Determinism: every random draw comes from the one ``random.Random``
handed in (a named RngRegistry stream), and arrivals draw in a fixed
order (size, then route), so worlds are reproducible run-to-run and
across processes.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.core.scheduler import parse_strategy
from repro.sim.engine import Simulator

from repro.world.fluid import GREEDY, FluidFlow, FluidNetwork

KB = 1024
MB = 1024 * KB

#: Sampler registry: name -> factory(params) -> sampler(rng) -> bytes.
SamplerFn = Callable[[random.Random], int]


def _fixed(params: Dict[str, str]) -> SamplerFn:
    size = int(params.pop("bytes", 64 * KB))

    def sample(rng: random.Random) -> int:
        return size

    return sample


def _paper_split(params: Dict[str, str]) -> SamplerFn:
    """The paper's small/large mix: mostly short flows, few bulk ones.

    Small flows are log-uniform on [8 KB, 512 KB] (web objects), large
    flows log-uniform on [4 MB, 32 MB] (the bulk-download regime the
    figures measure); ``p_large`` controls the mix.
    """
    p_large = float(params.pop("p_large", 0.12))
    small_lo = int(params.pop("small_lo", 8 * KB))
    small_hi = int(params.pop("small_hi", 512 * KB))
    large_lo = int(params.pop("large_lo", 4 * MB))
    large_hi = int(params.pop("large_hi", 32 * MB))

    def sample(rng: random.Random) -> int:
        if rng.random() < p_large:
            lo, hi = large_lo, large_hi
        else:
            lo, hi = small_lo, small_hi
        return int(lo * (hi / lo) ** rng.random())

    return sample


def _lognormal(params: Dict[str, str]) -> SamplerFn:
    mu = float(params.pop("mu", 11.5))
    sigma = float(params.pop("sigma", 1.5))
    cap = int(params.pop("cap", 64 * MB))

    def sample(rng: random.Random) -> int:
        size = int(rng.lognormvariate(mu, sigma))
        return max(1 * KB, min(size, cap))

    return sample


def _pareto(params: Dict[str, str]) -> SamplerFn:
    alpha = float(params.pop("alpha", 1.3))
    xm = int(params.pop("xm", 16 * KB))
    cap = int(params.pop("cap", 64 * MB))

    def sample(rng: random.Random) -> int:
        size = int(xm * rng.paretovariate(alpha))
        return min(size, cap)

    return sample


SIZE_DISTRIBUTIONS: Dict[str, Callable[[Dict[str, str]], SamplerFn]] = {
    "fixed": _fixed,
    "paper-split": _paper_split,
    "lognormal": _lognormal,
    "pareto": _pareto,
}


def make_size_sampler(spec: str) -> SamplerFn:
    """Build a flow-size sampler from a spec string.

    ``"paper-split"``, ``"fixed:bytes=65536"``,
    ``"pareto:alpha=1.2,xm=8192"``, ... -- same syntax as the
    scheduler registry.  Raises ``ValueError`` for unknown names or
    parameters.
    """
    name, params = parse_strategy(spec)
    factory = SIZE_DISTRIBUTIONS.get(name)
    if factory is None:
        known = ", ".join(sorted(SIZE_DISTRIBUTIONS))
        raise ValueError(
            f"unknown size distribution {name!r}; expected one of {known}")
    sampler = factory(params)
    if params:
        extra = ", ".join(sorted(params))
        raise ValueError(
            f"unknown parameter(s) {extra} for size distribution {name!r}")
    return sampler


class ArrivalProcess:
    """Base: owns the pick-a-route / pick-a-size draws and stop logic."""

    def __init__(self, sim: Simulator, fluid: FluidNetwork,
                 rng: random.Random,
                 routes: Sequence[Tuple[str, ...]],
                 sampler: SamplerFn,
                 desired_bw: float = GREEDY,
                 stop_when: Optional[Callable[[], bool]] = None) -> None:
        if not routes:
            raise ValueError("arrival process needs at least one route")
        self.sim = sim
        self.fluid = fluid
        self.rng = rng
        self.routes = [tuple(route) for route in routes]
        self.sampler = sampler
        self.desired_bw = desired_bw
        #: When set and true, no further flows are generated -- this is
        #: how a Measurement drains the world once the foreground flow
        #: completes, so ``sim.run()`` terminates without a timeout.
        self.stop_when = stop_when
        self.stopped = False

    def _should_stop(self) -> bool:
        if self.stopped:
            return True
        if self.stop_when is not None and self.stop_when():
            self.stopped = True
            return True
        return False

    def _draw(self) -> Tuple[int, Tuple[str, ...]]:
        """One arrival's randomness, in fixed order: size then route."""
        size = self.sampler(self.rng)
        if len(self.routes) == 1:
            route = self.routes[0]
        else:
            route = self.routes[self.rng.randrange(len(self.routes))]
        return size, route

    def start(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """Open loop: flows arrive at ``rate`` per second, forever (or
    until ``stop_when`` fires)."""

    def __init__(self, sim: Simulator, fluid: FluidNetwork,
                 rng: random.Random,
                 routes: Sequence[Tuple[str, ...]],
                 sampler: SamplerFn, rate: float,
                 desired_bw: float = GREEDY,
                 stop_when: Optional[Callable[[], bool]] = None) -> None:
        super().__init__(sim, fluid, rng, routes, sampler,
                         desired_bw, stop_when)
        if rate <= 0.0:
            raise ValueError("Poisson arrival rate must be positive")
        self.rate = rate

    def start(self) -> None:
        self.sim.schedule(self.rng.expovariate(self.rate), self._arrive)

    def _arrive(self) -> None:
        if self._should_stop():
            return
        size, route = self._draw()
        self.fluid.start_flow(route, size, desired_bw=self.desired_bw)
        self.sim.schedule(self.rng.expovariate(self.rate), self._arrive)


class ClosedLoopUsers(ArrivalProcess):
    """Closed loop: ``users`` independent think/download cycles.

    With ``think_mean == 0`` a completed download starts the next one
    immediately (no event, no RNG draw for the think time), keeping
    exactly ``users`` flows in flight at all times.
    """

    def __init__(self, sim: Simulator, fluid: FluidNetwork,
                 rng: random.Random,
                 routes: Sequence[Tuple[str, ...]],
                 sampler: SamplerFn, users: int,
                 think_mean: float = 2.0,
                 desired_bw: float = GREEDY,
                 stop_when: Optional[Callable[[], bool]] = None) -> None:
        super().__init__(sim, fluid, rng, routes, sampler,
                         desired_bw, stop_when)
        if users <= 0:
            raise ValueError("closed loop needs a positive population")
        self.users = users
        self.think_mean = think_mean

    def start(self) -> None:
        """Kick off every user; one solver pass for the whole batch."""
        if self.think_mean > 0.0:
            for _ in range(self.users):
                self.sim.schedule(
                    self.rng.expovariate(1.0 / self.think_mean),
                    self._begin_download)
            return
        with self.fluid.batch():
            for _ in range(self.users):
                self._start_flow()

    def _begin_download(self) -> None:
        if self._should_stop():
            return
        self._start_flow()

    def _start_flow(self) -> None:
        size, route = self._draw()
        self.fluid.start_flow(route, size, desired_bw=self.desired_bw,
                              on_complete=self._on_complete)

    def _on_complete(self, flow: FluidFlow) -> None:
        if self._should_stop():
            return
        if self.think_mean > 0.0:
            self.sim.schedule(
                self.rng.expovariate(1.0 / self.think_mean),
                self._begin_download)
        else:
            self._start_flow()

"""repro.world -- the many-flow shared-world kernel.

Hybrid-fidelity simulation: one event engine hosts the full
packet-level MPTCP stack for flows under study alongside a fluid
bandwidth-sharing model (max-min fair shares per bottleneck) for
hundreds-to-thousands of background flows, coupled through residual
link capacity.  See ``docs/manyflow.md``.
"""

from repro.world.arrivals import (
    SIZE_DISTRIBUTIONS,
    ClosedLoopUsers,
    PoissonArrivals,
    make_size_sampler,
)
from repro.world.fluid import (
    GREEDY,
    ClassKey,
    FluidFlow,
    FluidNetwork,
    FluidStats,
    solve_max_min,
)
from repro.world.kernel import WORLDS, World, WorldSpec, build_world

__all__ = [
    "GREEDY",
    "SIZE_DISTRIBUTIONS",
    "WORLDS",
    "ClassKey",
    "ClosedLoopUsers",
    "FluidFlow",
    "FluidNetwork",
    "FluidStats",
    "PoissonArrivals",
    "World",
    "WorldSpec",
    "build_world",
    "make_size_sampler",
    "solve_max_min",
]

"""Fluid-model bandwidth sharing for background flows.

The shared-world kernel hosts thousands of concurrent flows in one
event engine.  Simulating every one at packet level would melt the
calendar queue, so background flows are *fluid*: each is a pure
(route, size, desired-bandwidth) triple whose transfer rate is the
max-min fair share of the bottlenecks it crosses, recomputed only on
flow arrival, departure, or rate-change events -- the desired/available
bandwidth bookkeeping of the fg-inet dt-simulator design.

Two ideas keep this O(log n) per flow event rather than O(n):

* **Flow classes.**  Max-min fairness gives identical rates to flows
  with the same route and demand, so flows are grouped into classes
  keyed by ``(route, desired_bw)``.  The water-filling solver runs over
  classes (a handful) instead of flows (thousands).
* **Virtual-time completion tracking.**  Within a class every flow
  drains at the same rate, so a per-class virtual clock ``V`` -- bits
  served *per flow* since the class was created -- orders completions.
  A flow arriving at virtual time ``V`` with ``size_bits`` to move
  finishes when ``V`` reaches ``V + size_bits``: a constant computed on
  arrival and kept in a min-heap.  Rate changes only alter the speed at
  which ``V`` advances; they never reorder the heap.

Packet-level foreground flows participate as *greedy* classes: they
occupy a fair share in the solver (so background flows do not starve
them) but their computed rate is never applied to packets -- instead
the summed background shares are pushed to each :class:`Link` as
residual-capacity load (:meth:`Link.set_fluid_load`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import COUNT_EDGES
from repro.sim.engine import Simulator

#: Demand value marking a greedy flow (wants every bit it can get).
GREEDY = float("inf")

#: A flow whose remaining service time falls below this is considered
#: finished -- absorbs float error from advancing virtual clocks.
_COMPLETION_EPS_S = 1e-9


@dataclass(frozen=True, order=True)
class ClassKey:
    """Identity of a flow class: same route, same per-flow demand."""

    route: Tuple[str, ...]
    desired_bw: float = GREEDY


@dataclass
class FluidFlow:
    """One background transfer tracked by the fluid model."""

    flow_id: int
    key: ClassKey
    size_bytes: int
    started_at: float
    #: Class virtual time (bits per flow) at which this flow completes.
    finish_v: float = 0.0
    finished_at: Optional[float] = None
    on_complete: Optional[Callable[["FluidFlow"], None]] = None

    @property
    def duration(self) -> float:
        """Flow completion time, or -1.0 while still in flight."""
        if self.finished_at is None:
            return -1.0
        return self.finished_at - self.started_at


class FlowClass:
    """All live fluid flows sharing one :class:`ClassKey`.

    ``virtual_bits`` is the per-flow service accumulated since the
    class was created; ``heap`` orders member flows by the virtual time
    at which they finish.  Packet-level participants use ``pinned``
    membership instead of the heap (they never "complete" in fluid
    terms -- the packet stack decides that).
    """

    __slots__ = ("key", "heap", "virtual_bits", "rate_bps", "pinned")

    def __init__(self, key: ClassKey) -> None:
        self.key = key
        self.heap: List[Tuple[float, int, FluidFlow]] = []
        self.virtual_bits = 0.0
        self.rate_bps = 0.0
        #: Packet-level flows attached to this class (greedy demand,
        #: no fluid completion tracking).
        self.pinned = 0

    @property
    def count(self) -> int:
        return len(self.heap) + self.pinned

    def advance(self, dt: float) -> None:
        if dt > 0.0 and self.heap:
            self.virtual_bits += self.rate_bps * dt

    def next_completion_in(self) -> float:
        """Seconds until the earliest member finishes, or +inf."""
        if not self.heap or self.rate_bps <= 0.0:
            return GREEDY
        remaining = self.heap[0][0] - self.virtual_bits
        if remaining <= 0.0:
            return 0.0
        return remaining / self.rate_bps


def solve_max_min(demands: Dict[ClassKey, int],
                  capacities: Dict[str, float]) -> Dict[ClassKey, float]:
    """Water-filling max-min fair allocation over flow classes.

    Args:
        demands: live flow count per class; a class's route names the
            bottlenecks it crosses, its ``desired_bw`` caps the
            per-flow rate (``GREEDY`` = uncapped).
        capacities: capacity in bits/s per bottleneck name.  Routes may
            reference unknown names; those hops are ignored (treated as
            uncongested).

    Returns:
        Per-flow rate for every class with a positive count.  The
        result is independent of dict insertion order: each round
        freezes a *set* of classes chosen by value, and ties are
        resolved over the whole set at once.

    Invariant (property-tested): for every bottleneck, the summed
    allocation of classes crossing it never exceeds its capacity.
    """
    rates: Dict[ClassKey, float] = {}
    remaining = dict(capacities)
    unfrozen = {key: count for key, count in demands.items() if count > 0}
    for key in unfrozen:
        rates[key] = 0.0

    while unfrozen:
        # Unfrozen flow population per bottleneck.
        population: Dict[str, int] = {}
        for key, count in unfrozen.items():
            for hop in key.route:
                if hop in remaining:
                    population[hop] = population.get(hop, 0) + count
        if not population:
            # Every route runs over unknown hops: grant demands
            # outright (greedy classes get 0 -- nothing bounds them).
            for key in unfrozen:
                rates[key] = key.desired_bw if key.desired_bw < GREEDY \
                    else 0.0
            break

        fair = {hop: remaining[hop] / count
                for hop, count in population.items()}
        level = min(fair.values())
        floor = min(key.desired_bw for key in unfrozen)

        if floor <= level:
            # Demand-limited classes saturate below the water level:
            # freeze all of them at their demand.
            frozen = [key for key in unfrozen if key.desired_bw <= floor]
            grant = {key: key.desired_bw for key in frozen}
        else:
            # Capacity-limited round: every class crossing a bottleneck
            # at the water level freezes at the fair share.
            tight = {hop for hop, value in fair.items() if value <= level}
            frozen = [key for key in unfrozen
                      if any(hop in tight for hop in key.route)]
            grant = {key: level for key in frozen}

        # Subtract in sorted-key order: float subtraction is not
        # associative, so a dict-order walk would make the remaining
        # capacities -- and hence later rounds -- depend on insertion
        # order (the order-independence property test catches this).
        for key in sorted(frozen):
            rate = grant[key]
            rates[key] = rate
            claimed = rate * unfrozen.pop(key)
            for hop in key.route:
                if hop in remaining:
                    left = remaining[hop] - claimed
                    remaining[hop] = left if left > 0.0 else 0.0
    return rates


@dataclass
class FluidStats:
    """Streaming aggregates over completed background flows.

    Jain's fairness index over per-flow average throughput is kept as
    running sums, so memory stays O(1) no matter how many flows pass
    through the world.
    """

    flows_started: int = 0
    flows_completed: int = 0
    bytes_completed: int = 0
    peak_concurrent: int = 0
    sum_fct: float = 0.0
    first_start_at: Optional[float] = None
    last_completion_at: Optional[float] = None
    _sum_rate: float = 0.0
    _sum_rate_sq: float = 0.0
    #: A bounded sample of completion records for reports/tests.
    records: List[Tuple[float, int, float]] = field(default_factory=list)
    max_records: int = 256

    def note_start(self, concurrent: int, now: float = 0.0) -> None:
        self.flows_started += 1
        if self.first_start_at is None:
            self.first_start_at = now
        if concurrent > self.peak_concurrent:
            self.peak_concurrent = concurrent

    def note_completion(self, flow: FluidFlow) -> None:
        self.flows_completed += 1
        self.bytes_completed += flow.size_bytes
        self.last_completion_at = flow.finished_at
        duration = flow.duration
        self.sum_fct += duration
        if duration > 0.0:
            rate = flow.size_bytes * 8.0 / duration
            self._sum_rate += rate
            self._sum_rate_sq += rate * rate
        if len(self.records) < self.max_records:
            self.records.append(
                (flow.started_at, flow.size_bytes, duration))

    @property
    def mean_fct(self) -> float:
        if not self.flows_completed:
            return 0.0
        return self.sum_fct / self.flows_completed

    @property
    def jain_index(self) -> float:
        """Jain's fairness index of per-flow throughput; 1.0 = equal."""
        if not self.flows_completed or self._sum_rate_sq <= 0.0:
            return 1.0
        return (self._sum_rate * self._sum_rate
                / (self.flows_completed * self._sum_rate_sq))


class FluidNetwork:
    """The fluid half of a hybrid world: bottlenecks, classes, timer.

    One instance per :class:`Simulator`.  Background flows enter via
    :meth:`start_flow`; packet-level flows register their routes via
    :meth:`attach_packet_flow` so the solver reserves them a fair
    share.  After every reallocation the summed background load per
    bottleneck is pushed to the backing :class:`Link` (when one is
    bound) as residual-capacity load.

    Determinism: the kernel draws no randomness and, while no fluid
    flow is live, schedules no events -- a world with zero background
    flows leaves the engine's event/seq stream untouched, which is what
    keeps single-flow runs byte-identical (the fig02-oracle test).
    """

    def __init__(self, sim: Simulator, name: str = "world") -> None:
        self.sim = sim
        self.name = name
        self.stats = FluidStats()
        self.on_complete: Optional[Callable[[FluidFlow], None]] = None
        self._capacities: Dict[str, float] = {}
        self._links: Dict[str, object] = {}
        self._classes: Dict[ClassKey, FlowClass] = {}
        self._live = 0
        self._next_id = 0
        self._timer = None
        self._last_advance = sim.now
        self._processing = False

    # -- topology ------------------------------------------------------

    def add_bottleneck(self, name: str, capacity_bps: float,
                       link=None) -> None:
        """Declare a shared bottleneck, optionally backed by a Link.

        Capacity is the *nominal* link rate: the fluid model must not
        consult ``Link.current_rate()`` (that would step the modulation
        RNG at fluid-event times and break packet-level determinism).
        """
        self._capacities[name] = capacity_bps
        if link is not None:
            self._links[name] = link

    @property
    def bottlenecks(self) -> Dict[str, float]:
        return dict(self._capacities)

    # -- participants --------------------------------------------------

    def attach_packet_flow(self, route: Tuple[str, ...]) -> ClassKey:
        """Reserve a greedy fair share for a packet-level flow."""
        key = ClassKey(route=tuple(route))
        cls = self._classes.get(key)
        if cls is None:
            cls = self._classes[key] = FlowClass(key)
        cls.pinned += 1
        self._event(self._reallocate)
        return key

    def detach_packet_flow(self, key: ClassKey) -> None:
        cls = self._classes.get(key)
        if cls is None or cls.pinned <= 0:
            return
        cls.pinned -= 1
        if not cls.count:
            del self._classes[key]
        self._event(self._reallocate)

    def start_flow(self, route: Tuple[str, ...], size_bytes: int,
                   desired_bw: float = GREEDY,
                   on_complete: Optional[Callable[[FluidFlow], None]]
                   = None) -> FluidFlow:
        """Begin a fluid background transfer; completion is announced
        through ``on_complete`` (per flow) or :attr:`on_complete`."""
        key = ClassKey(route=tuple(route), desired_bw=desired_bw)
        cls = self._classes.get(key)
        if cls is None:
            cls = self._classes[key] = FlowClass(key)
        flow = FluidFlow(flow_id=self._next_id, key=key,
                         size_bytes=size_bytes,
                         started_at=self.sim.now,
                         on_complete=on_complete)
        self._next_id += 1
        self._live += 1
        self.stats.note_start(self._live, now=self.sim.now)

        def _start() -> None:
            flow.finish_v = cls.virtual_bits + size_bytes * 8.0
            heapq.heappush(cls.heap, (flow.finish_v, flow.flow_id, flow))

        self._event(self._reallocate, before=_start)
        return flow

    @property
    def live_flows(self) -> int:
        return self._live

    # -- event machinery -----------------------------------------------

    def _event(self, react: Callable[[], None],
               before: Optional[Callable[[], None]] = None) -> None:
        """Advance clocks, apply a mutation, reallocate once.

        When called re-entrantly (a completion callback starting the
        next closed-loop flow) the reallocation is deferred to the
        enclosing event, so each engine event triggers at most one
        solver pass.
        """
        if self._processing:
            if before is not None:
                before()
            return
        self._processing = True
        try:
            self._advance()
            if before is not None:
                before()
            react()
        finally:
            self._processing = False

    def batch(self):
        """Context manager coalescing many mutations into one solve."""
        network = self

        class _Batch:
            def __enter__(self) -> "FluidNetwork":
                network._advance()
                network._processing = True
                return network

            def __exit__(self, *exc) -> None:
                network._processing = False
                if exc[0] is None:
                    network._reallocate()

        return _Batch()

    def _advance(self) -> None:
        now = self.sim.now
        dt = now - self._last_advance
        if dt > 0.0:
            for cls in self._classes.values():
                cls.advance(dt)
        self._last_advance = now

    def _reallocate(self) -> None:
        demands = {key: cls.count for key, cls in self._classes.items()}
        rates = solve_max_min(demands, self._capacities)
        load: Dict[str, float] = {name: 0.0 for name in self._links}
        for key, cls in self._classes.items():
            cls.rate_bps = rates.get(key, 0.0)
            fluid = len(cls.heap)
            if fluid:
                claimed = cls.rate_bps * fluid
                for hop in key.route:
                    if hop in load:
                        load[hop] += claimed
        for name, link in self._links.items():
            link.set_fluid_load(load[name])
        trace = self.sim.trace
        if trace.enabled and self._live:
            trace.emit(self.sim.now, "world.alloc", live=self._live,
                       classes=len(self._classes))
        metrics = self.sim.metrics
        if metrics.enabled and self._live:
            # Reallocation churn: how often the max-min solve reruns
            # and how many flow classes it juggles each time.
            metrics.counter("world.realloc").inc()
            metrics.histogram("world.realloc.classes",
                              COUNT_EDGES).observe(float(len(self._classes)))
        self._schedule_timer()

    def _schedule_timer(self) -> None:
        horizon = GREEDY
        for cls in self._classes.values():
            dt = cls.next_completion_in()
            if dt < horizon:
                horizon = dt
        if horizon == GREEDY:
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
            return
        when = self.sim.now + horizon
        if self._timer is None:
            self._timer = self.sim.schedule_at(when, self._on_timer)
        else:
            self.sim.reschedule(self._timer, horizon)

    def _on_timer(self) -> None:
        self._timer = None
        self._processing = True
        completed: List[FluidFlow] = []
        try:
            self._advance()
            for cls in self._classes.values():
                if not cls.heap or cls.rate_bps <= 0.0:
                    continue
                slack = cls.rate_bps * _COMPLETION_EPS_S
                while cls.heap and \
                        cls.heap[0][0] - cls.virtual_bits <= slack:
                    _, _, flow = heapq.heappop(cls.heap)
                    flow.finished_at = self.sim.now
                    completed.append(flow)
            empty = [key for key, cls in self._classes.items()
                     if not cls.count]
            for key in empty:
                del self._classes[key]
            self._live -= len(completed)
            trace = self.sim.trace
            for flow in completed:
                self.stats.note_completion(flow)
                if trace.enabled:
                    trace.emit(self.sim.now, "world.flow",
                               flow_id=flow.flow_id,
                               size=flow.size_bytes,
                               duration=flow.duration,
                               route=",".join(flow.key.route))
                if flow.on_complete is not None:
                    flow.on_complete(flow)
                elif self.on_complete is not None:
                    self.on_complete(flow)
        finally:
            self._processing = False
        self._reallocate()

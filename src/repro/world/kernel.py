"""The shared world: binding fluid background traffic to a Testbed.

A :class:`World` takes an already-built :class:`~repro.testbed.Testbed`
and populates its access links with fluid background flows:

* the client's WiFi and/or cellular *downlinks* become fluid
  bottlenecks (downloads contend where the paper's measurements do --
  on the access link);
* an arrival process (from :class:`WorldSpec`) generates background
  flows over those bottlenecks, drawing from a dedicated named RNG
  stream (``"world.arrivals"``) so the packet stack's randomness is
  untouched;
* the foreground connection registers each of its paths as a greedy
  packet-level participant, reserving it a max-min fair share, and the
  remaining background load is pushed to each Link as residual
  capacity.

Fidelity boundary (see ``docs/manyflow.md``): background flows do not
emit packets, so they create *rate* contention but not queue occupancy
-- the foreground flow sees a slower link, not a deeper buffer.  That
is the standard hybrid trade: per-flow fairness and FCT distributions
at the fluid layer, full protocol dynamics at the packet layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.world.arrivals import (
    ClosedLoopUsers,
    PoissonArrivals,
    make_size_sampler,
)
from repro.world.fluid import GREEDY, ClassKey, FluidNetwork


@dataclass(frozen=True)
class WorldSpec:
    """Declarative description of a background-traffic world.

    Attributes:
        arrival: ``"none"`` (topology only -- zero background flows),
            ``"poisson"`` (open loop at :attr:`rate` flows/s) or
            ``"closed"`` (:attr:`users` think/download loops).
        rate: Poisson arrival rate, flows per second.
        users: closed-loop population size.
        think_mean: mean exponential think time between a user's
            downloads, seconds; ``0`` pins ``users`` concurrent flows.
        sizes: flow-size distribution spec (see
            :func:`repro.world.arrivals.make_size_sampler`).
        paths: which access links carry background traffic --
            ``"wifi"``, ``"cell"``, or both.
        desired_bw: per-flow demand cap in bits/s; ``0`` means greedy.
    """

    arrival: str = "none"
    rate: float = 0.0
    users: int = 0
    think_mean: float = 0.0
    sizes: str = "paper-split"
    paths: Tuple[str, ...] = ("wifi",)
    desired_bw: float = 0.0

    def __post_init__(self) -> None:
        if self.arrival not in ("none", "poisson", "closed"):
            raise ValueError(f"unknown arrival process {self.arrival!r}")
        if self.arrival == "poisson" and self.rate <= 0.0:
            raise ValueError("poisson world needs rate > 0")
        if self.arrival == "closed" and self.users <= 0:
            raise ValueError("closed world needs users > 0")
        for path in self.paths:
            if path not in ("wifi", "cell"):
                raise ValueError(f"unknown world path {path!r}")
        make_size_sampler(self.sizes)  # validate eagerly

    @property
    def expected_concurrency(self) -> float:
        """Rough steady-state concurrent-flow estimate, for pricing.

        Closed loops bound concurrency by the population; for open
        loops we apply Little's law with a nominal ~1 s flow time.
        """
        if self.arrival == "closed":
            return float(self.users)
        if self.arrival == "poisson":
            return self.rate
        return 0.0


#: Preset worlds, referenced by ``FlowSpec.world``.  Registry-style,
#: like SCHEDULERS / PATH_MANAGERS: campaign cells name a preset, and
#: the preset is part of the cell's identity.
#: Web-ish mix for the open-loop presets: the paper's small/large
#: split with the bulk tail trimmed so offered load stays below the
#: 20 Mbit/s home-WiFi downlink (mean ~220 KB/flow ~= 1.8 Mbit/flow;
#: open-loop worlds must stay under capacity or backlog diverges).
_OPEN_MIX = "paper-split:p_large=0.05,large_lo=1048576,large_hi=4194304"

WORLDS: Dict[str, WorldSpec] = {
    # Topology only: fluid bottlenecks exist, zero background flows.
    # Must reproduce the stand-alone testbed byte-identically.
    "bg-none": WorldSpec(),
    # Open-loop contention levels (~18% / ~45% / ~50-80% of the access
    # downlinks; heavy spreads across both WiFi and cellular).
    "bg-light": WorldSpec(arrival="poisson", rate=2.0, sizes=_OPEN_MIX),
    "bg-medium": WorldSpec(arrival="poisson", rate=5.0, sizes=_OPEN_MIX),
    "bg-heavy": WorldSpec(arrival="poisson", rate=12.0, sizes=_OPEN_MIX,
                          paths=("wifi", "cell")),
    # Closed-loop populations (exact concurrency, zero think time;
    # offered load self-adjusts, so the full paper mix is safe).
    "closed-8": WorldSpec(arrival="closed", users=8),
    "closed-32": WorldSpec(arrival="closed", users=32),
}


class World:
    """One background-traffic world attached to one Testbed."""

    def __init__(self, testbed, spec: WorldSpec,
                 name: str = "world") -> None:
        self.testbed = testbed
        self.spec = spec
        self.name = name
        self.fluid = FluidNetwork(testbed.sim, name=name)
        self._routes: List[Tuple[str, ...]] = []
        self._attached: List[ClassKey] = []
        self.arrivals = None

        from repro.testbed import CLIENT_WIFI
        addresses = {"wifi": CLIENT_WIFI, "cell": testbed.cellular_addr}
        for path in spec.paths:
            address = addresses[path]
            _, down = testbed.network.links_for(address)
            bottleneck = f"{address}:down"
            # The solver pushes residual-capacity loads to this link at
            # fluid event times, i.e. potentially mid-burst: pin it to
            # the scalar pipeline so every service start re-reads the
            # residual rate exactly as the legacy path does.
            down.disable_batching()
            self.fluid.add_bottleneck(
                bottleneck, down.config.rate_bps, link=down)
            self._routes.append((bottleneck,))

    # -- foreground participation --------------------------------------

    def attach_foreground(self, addresses) -> None:
        """Reserve greedy fair shares for a packet-level connection.

        ``addresses`` are the client-side interface addresses the
        connection's subflows terminate at; each one that maps to a
        world bottleneck becomes a pinned participant in the solver.
        """
        for address in addresses:
            bottleneck = f"{address}:down"
            if bottleneck in self.fluid.bottlenecks:
                self._attached.append(
                    self.fluid.attach_packet_flow((bottleneck,)))

    def detach_foreground(self) -> None:
        for key in self._attached:
            self.fluid.detach_packet_flow(key)
        self._attached.clear()

    # -- lifecycle -----------------------------------------------------

    def start(self,
              stop_when: Optional[Callable[[], bool]] = None) -> None:
        """Begin generating background traffic.

        ``stop_when`` is polled at every would-be arrival; once it
        returns true no further flows are generated, so the event queue
        drains and ``sim.run()`` returns.  With ``arrival == "none"``
        this schedules nothing and draws no randomness.
        """
        spec = self.spec
        if spec.arrival == "none":
            return
        rng = self.testbed.rng.stream(f"{self.name}.arrivals")
        sampler = make_size_sampler(spec.sizes)
        desired = spec.desired_bw if spec.desired_bw > 0.0 else GREEDY
        if spec.arrival == "poisson":
            self.arrivals = PoissonArrivals(
                self.testbed.sim, self.fluid, rng, self._routes,
                sampler, rate=spec.rate, desired_bw=desired,
                stop_when=stop_when)
        else:
            self.arrivals = ClosedLoopUsers(
                self.testbed.sim, self.fluid, rng, self._routes,
                sampler, users=spec.users, think_mean=spec.think_mean,
                desired_bw=desired, stop_when=stop_when)
        self.arrivals.start()

    # -- reporting -----------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """Lightweight per-run record for RunResult/campaign rows."""
        stats = self.fluid.stats
        # Goodput over the background-activity window, not over however
        # long residual timers kept the simulator alive afterwards.
        if stats.first_start_at is not None \
                and stats.last_completion_at is not None:
            elapsed = stats.last_completion_at - stats.first_start_at
        else:
            elapsed = self.testbed.sim.now
        goodput = (stats.bytes_completed * 8.0 / elapsed
                   if elapsed > 0.0 else 0.0)
        return {
            "flows_started": stats.flows_started,
            "flows_completed": stats.flows_completed,
            "bg_bytes": stats.bytes_completed,
            "bg_goodput_bps": goodput,
            "peak_concurrent": stats.peak_concurrent,
            "mean_fct": stats.mean_fct,
            "jain": stats.jain_index,
        }


def build_world(testbed, world: str, name: str = "world") -> World:
    """Instantiate a preset world from the :data:`WORLDS` registry."""
    spec = WORLDS.get(world)
    if spec is None:
        known = ", ".join(sorted(WORLDS))
        raise ValueError(f"unknown world {world!r}; expected one of {known}")
    return World(testbed, spec, name=name)

"""Named, independently seeded random streams.

Reproducibility discipline: every stochastic component of the simulator
(WiFi loss, cellular rate modulation, environment jitter, configuration
shuffling, ...) draws from its *own* named stream, derived
deterministically from a single root seed.  Adding a new component or
changing how often one component draws can then never perturb another
component's sequence -- runs stay comparable across code changes and
bit-identical across replays.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from ``root_seed`` and ``name``.

    Uses BLAKE2b so the mapping is stable across Python versions and
    platforms (``hash()`` is salted per-process and unsuitable).
    """
    digest = hashlib.blake2b(
        f"{root_seed}:{name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class RngRegistry:
    """A factory of named :class:`random.Random` streams.

    Streams are created lazily and cached, so asking twice for the same
    name returns the same generator object (and therefore a single
    continuing sequence).
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream registered under ``name``, creating it if new."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.root_seed, name))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """Create a child registry whose root seed is derived from ``name``.

        Used to give each experiment run its own independent namespace
        of streams while staying a pure function of the campaign seed.
        """
        return RngRegistry(derive_seed(self.root_seed, name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RngRegistry root_seed={self.root_seed} "
                f"streams={sorted(self._streams)}>")

"""The ``REPRO_SCALAR`` escape hatch for the vectorized core.

The batched link pipeline and the arena-backed endpoint structures
(PR "vectorized packet core") are byte-identical to the scalar code
they replace -- the determinism guard pins campaign CSV digests across
both.  For A/B testing, bisection, and the hypothesis equivalence
suites, setting ``REPRO_SCALAR=1`` in the environment selects the
legacy scalar paths everywhere.

Components read the flag **at construction time** (one env lookup per
Link/endpoint, nothing per packet), so tests toggle it with
``monkeypatch.setenv`` and build a fresh topology.
"""

from __future__ import annotations

import os


def scalar_mode() -> bool:
    """True when ``REPRO_SCALAR=1``: use the legacy scalar hot paths."""
    return os.environ.get("REPRO_SCALAR", "") == "1"

"""The discrete-event simulation engine.

The engine is a classic calendar queue built on :mod:`heapq`.  Heap
entries are plain tuples, so ordering comparisons run at C speed:

* ``(time, seq, event)`` for *handle* events created by
  :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at`.  The
  returned :class:`Event` can be cancelled or rescheduled.
* ``(time, seq, callback, arg)`` for *anonymous* events created by the
  :meth:`Simulator.post` / :meth:`Simulator.post_at` fast path.  No
  Event object is allocated at all; the callback and its single
  argument ride directly in the heap entry.  Anonymous events cannot
  be cancelled -- they are the allocation-free path for the per-packet
  hot loop (link serialization and delivery), which never cancels.

A third shape rides on the anonymous form: :meth:`Simulator.post_batch`
posts a whole time-sorted burst of callbacks (a link's batched packet
deliveries) as **one** heap entry carrying a :class:`_Batch`.  When the
entry surfaces, the engine fires the due callback and then *drains*
subsequent batch entries inline -- no pop, no push -- for as long as
they sort before the heap's head, pushing the remainder back as a
single re-keyed entry when an unrelated event intervenes.  A burst of
``n`` packets thus costs one ``O(log n)`` heap operation instead of
``n``, while observable ordering is exactly what ``n`` individual
``post_at`` calls with one shared sequence number would produce.

The sequence number makes ordering total and stable (two events
scheduled for the same instant fire in the order they were scheduled),
which keeps simulations deterministic and therefore reproducible and
testable.  Every scheduling primitive -- ``schedule``, ``schedule_at``,
``post``, ``post_at`` and ``reschedule`` -- consumes exactly one
sequence number, so swapping one primitive for another (e.g. the
closure-based legacy path for the arg-carrying fast path) leaves the
event order, and therefore simulation results, bit-for-bit identical.

Cancellation is lazy: the entry stays in the heap but is skipped when
popped.  To stop cancelled timers from accumulating (a long transfer
restarts its RTO timer on every ACK), the engine tracks the number of
cancelled entries still in the heap and compacts the heap in place
when they exceed half of it.  Rescheduling via :meth:`reschedule`
avoids creating garbage in the first place: a *forward* move (the
common case -- inactivity timers pushed out, RTO re-armed later) keeps
the existing heap entry and re-keys it lazily when it surfaces,
timer-wheel style.  A *backward* move (e.g. an RTO estimator shrinking
faster than time elapses) cannot be lazy -- the stale, later heap key
would delay the pop past the new deadline -- so the engine pushes a
fresh entry eagerly and remembers the abandoned entry's sequence
number as a *ghost* to be discarded when it surfaces.

Fired handle events are recycled through a small free list
(:attr:`Simulator.pool_reuses` counts reuses).  A handle must be
dropped once its event has fired or been cancelled; retaining one and
cancelling it much later is a no-op at worst while it sits in the
pool, but undefined once the object has been reused.  (Every timer
holder in this codebase clears its reference inside the callback or
immediately after cancelling.)

Time is a float measured in **seconds** of simulated time.  The engine
never consults the wall clock.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.obs.bus import NULL_TRACE_BUS
from repro.obs.metrics import NULL_METRICS


class SimulationError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


class _NoArg:
    """Sentinel: 'this event's callback takes no argument'."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<no-arg>"


#: Passed as ``arg`` to mean "call the callback with no arguments".
NO_ARG = _NoArg()

#: Heap-compaction trigger: compact when more than this many cancelled
#: entries linger *and* they make up over half the heap.
_COMPACT_MIN = 64

#: Maximum number of recycled Event objects kept in the free list.
_POOL_MAX = 256


class _Batch:
    """A time-sorted burst of callbacks sharing one heap entry.

    ``times`` must be nondecreasing; ``args[i]`` is passed to
    ``callback`` when entry ``i`` fires.  ``idx`` is the next entry to
    fire *whenever the batch is not the event currently executing* (it
    is re-synced on every push-back).  ``dead`` optionally holds entry
    indices revoked after posting (a link going down mid-burst): they
    are skipped, preserving the engine's time ordering without heap
    surgery.
    """

    __slots__ = ("times", "callback", "args", "idx", "seq", "dead")

    def __init__(self, times, callback, args, seq: int) -> None:
        self.times = times
        self.callback = callback
        self.args = args
        self.idx = 0
        self.seq = seq
        self.dead: Optional[set] = None

    def revoke_from(self, index: int) -> None:
        """Mark entries ``index`` .. end as dead (never fired)."""
        dead = self.dead
        if dead is None:
            dead = self.dead = set()
        dead.update(range(index, len(self.times)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<_Batch {self.idx}/{len(self.times)} "
                f"t0={self.times[0]:.6f}>")


class Event:
    """A handle to a scheduled callback.

    Returned by :meth:`Simulator.schedule`; the supported operations
    are :meth:`cancel`, :meth:`Simulator.reschedule`, and inspecting
    :attr:`time` / :attr:`cancelled`.  ``cancelled`` is True once the
    event is dead -- cancelled *or* already fired.
    """

    __slots__ = ("time", "seq", "callback", "arg", "cancelled", "name",
                 "key_time", "key_seq", "_sim")

    def __init__(self, time: float, seq: int,
                 callback: Optional[Callable[..., None]],
                 arg: Any = NO_ARG, name: str = "",
                 sim: Optional["Simulator"] = None) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.arg = arg
        self.cancelled = False
        self.name = name
        # The (time, seq) key of this event's current heap entry.  It
        # lags (time, seq) after a lazy (forward) reschedule until the
        # entry surfaces and is re-keyed.
        self.key_time = time
        self.key_seq = seq
        self._sim = sim

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired or was cancelled."""
        if self.cancelled:
            return
        self.cancelled = True
        self.callback = None  # break reference cycles promptly
        self.arg = NO_ARG
        sim = self._sim
        if sim is not None:
            sim._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "dead" if self.cancelled else "pending"
        label = f" {self.name!r}" if self.name else ""
        return f"<Event{label} t={self.time:.6f} {state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("one second"))
        sim.post(2.0, print, "two seconds")   # allocation-free fast path
        sim.run()

    The engine supports bounded runs (``until=``), step-wise execution
    (:meth:`step`), and a hard event-count limit as a runaway guard for
    tests.
    """

    def __init__(self) -> None:
        self._queue: list = []
        self._seq = 0
        #: Current simulated time in seconds.  A plain attribute (not a
        #: property): it is read on every packet send/receive, so the
        #: cheap lookup matters.  Treat it as read-only outside the
        #: engine.
        self.now = 0.0
        self._running = False
        self._live = 0        # scheduled, not yet fired or cancelled
        self._stale = 0       # cancelled/ghost entries still in the heap
        #: Sequence numbers of heap entries abandoned by a *backward*
        #: reschedule.  Such entries are discarded by seq when popped,
        #: without touching the (possibly recycled) event they carry.
        self._ghost_seqs: set = set()
        self._pool: list = []  # recycled Event objects
        self.events_processed = 0
        #: Total events accepted via any scheduling primitive.
        self.events_scheduled = 0
        #: Events scheduled through the anonymous post()/post_at() path.
        self.events_posted = 0
        #: Handle events served from the free list instead of allocated.
        self.pool_reuses = 0
        #: Times the heap was compacted to drop cancelled entries.
        self.heap_compactions = 0
        #: High-water mark of the heap length (live + stale entries).
        self.peak_heap = 0
        #: Bursts accepted via :meth:`post_batch`.
        self.batches_posted = 0
        #: Total entries carried by those bursts.
        self.batch_entries = 0
        #: Batch entries drained inline (no heap pop of their own).
        self.batch_inline = 0
        #: High-water mark of live slots across all segment arenas
        #: attached to this simulator (see :mod:`repro.sim.arena`).
        self.arena_peak = 0
        #: Active run()'s ``until`` bound; inline batch draining must
        #: not fire past it (the remainder is pushed back instead).
        self._batch_limit = float("inf")
        #: Protocol-event trace bus (see :mod:`repro.obs.bus`).  The
        #: default is the shared no-op; components cache a reference at
        #: construction, so install a real bus *before* building the
        #: protocol stack.  Tracing is passive -- swapping the bus
        #: never changes simulation results.
        self.trace = NULL_TRACE_BUS
        #: Metrics registry (see :mod:`repro.obs.metrics`), the bus's
        #: aggregating sibling, under the same contract: no-op default,
        #: cached at construction, strictly passive.
        self.metrics = NULL_METRICS

    @property
    def heap_len(self) -> int:
        """Current heap length, including cancelled/stale entries."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def _new_event(self, time: float, callback: Callable[..., None],
                   arg: Any, name: str) -> Event:
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time = time
            event.seq = seq
            event.key_time = time
            event.key_seq = seq
            event.callback = callback
            event.arg = arg
            event.cancelled = False
            event.name = name
            event._sim = self
            self.pool_reuses += 1
        else:
            event = Event(time, seq, callback, arg, name, self)
        return event

    def _book(self) -> None:
        self.events_scheduled += 1
        self._live += 1
        if len(self._queue) > self.peak_heap:
            self.peak_heap = len(self._queue)

    def schedule(self, delay: float, callback: Callable[..., None],
                 arg: Any = NO_ARG, name: str = "") -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns an :class:`Event` handle that may be cancelled or
        rescheduled.  With ``arg`` given, the callback is invoked as
        ``callback(arg)`` -- passing the argument through the event
        avoids allocating a closure per call.  A negative delay is an
        error; a zero delay fires after all events already scheduled
        for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r}s in the past")
        event = self._new_event(self.now + delay, callback, arg, name)
        heapq.heappush(self._queue, (event.time, event.seq, event))
        self._book()
        return event

    def schedule_at(self, time: float, callback: Callable[..., None],
                    arg: Any = NO_ARG, name: str = "") -> Event:
        """Schedule ``callback`` at absolute simulated ``time``.

        The event carries exactly ``time`` (no now-relative roundoff),
        so equal absolute times keep FIFO ordering.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time!r}, now is {self.now!r}")
        event = self._new_event(time, callback, arg, name)
        heapq.heappush(self._queue, (event.time, event.seq, event))
        self._book()
        return event

    def post(self, delay: float, callback: Callable[..., None],
             arg: Any = NO_ARG) -> None:
        """Anonymous fast path: like :meth:`schedule`, but no handle.

        No :class:`Event` is allocated -- the callback and its single
        argument ride in the heap entry itself.  The event cannot be
        cancelled; use :meth:`schedule` when a handle is needed.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r}s in the past")
        seq = self._seq
        self._seq = seq + 1
        queue = self._queue
        heapq.heappush(queue, (self.now + delay, seq, callback, arg))
        # _book(), inlined: this is the per-packet path.
        self.events_posted += 1
        self.events_scheduled += 1
        self._live += 1
        if len(queue) > self.peak_heap:
            self.peak_heap = len(queue)

    def post_at(self, time: float, callback: Callable[..., None],
                arg: Any = NO_ARG) -> None:
        """Anonymous fast path at an absolute time (see :meth:`post`)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time!r}, now is {self.now!r}")
        seq = self._seq
        self._seq = seq + 1
        queue = self._queue
        heapq.heappush(queue, (time, seq, callback, arg))
        # _book(), inlined: this is the per-packet path.
        self.events_posted += 1
        self.events_scheduled += 1
        self._live += 1
        if len(queue) > self.peak_heap:
            self.peak_heap = len(queue)

    def post_batch(self, times: list, callback: Callable[[Any], None],
                   args: list) -> _Batch:
        """Post a nondecreasing burst of ``callback(args[i])`` at
        ``times[i]`` as a single heap entry.

        All entries share **one** sequence number, exactly as if the
        caller had pre-allocated it and issued ``post_at`` per entry --
        so ties against unrelated events resolve by when the *burst*
        was posted, and entries within the burst keep list order.
        Entries cannot be cancelled individually, but the returned
        :class:`_Batch` supports :meth:`_Batch.revoke_from` for the
        link-down case.  ``times`` must be sorted ascending (the caller
        guarantees it; links clamp deliveries FIFO anyway).
        """
        n = len(times)
        if n == 0:
            raise SimulationError("post_batch() requires entries")
        if times[0] < self.now:
            raise SimulationError(
                f"cannot schedule at {times[0]!r}, now is {self.now!r}")
        seq = self._seq
        self._seq = seq + 1
        batch = _Batch(times, callback, args, seq)
        queue = self._queue
        heapq.heappush(queue, (times[0], seq, self._step_batch, batch))
        self.events_posted += n
        self.events_scheduled += n
        self._live += n
        self.batches_posted += 1
        self.batch_entries += n
        if len(queue) > self.peak_heap:
            self.peak_heap = len(queue)
        return batch

    def _step_batch(self, batch: _Batch) -> None:
        """Fire the due batch entry, then drain successors inline.

        Runs as the callback of the batch's heap entry: the event loop
        has already advanced the clock to ``times[idx]`` and accounted
        for that one pop.  Each further entry fires inline only while
        it sorts strictly before the heap head under the usual
        ``(time, seq)`` key and does not cross the active ``until``
        bound; otherwise the remainder is pushed back as one entry.
        """
        times = batch.times
        args = batch.args
        callback = batch.callback
        dead = batch.dead
        i = batch.idx
        n = len(times)
        if dead is None or i not in dead:
            callback(args[i])
        i += 1
        queue = self._queue
        if not self._running:
            # step(): single-event semantics -- never drain inline.
            if i < n:
                batch.idx = i
                heapq.heappush(queue,
                               (times[i], batch.seq, self._step_batch,
                                batch))
            return
        limit = self._batch_limit
        seq = batch.seq
        inline = 0
        dead = batch.dead
        while i < n:
            t = times[i]
            if t > limit:
                break
            if queue:
                head = queue[0]
                if head[0] < t or (head[0] == t and head[1] < seq):
                    break
            self.now = t
            self.events_processed += 1
            self._live -= 1
            inline += 1
            if dead is None or i not in dead:
                callback(args[i])
                dead = batch.dead  # a callback may revoke the rest
            i += 1
        if inline:
            self.batch_inline += inline
        if i < n:
            batch.idx = i
            heapq.heappush(queue, (times[i], seq, self._step_batch, batch))

    def reschedule(self, event: Event, delay: float) -> Event:
        """Move a pending ``event`` to ``delay`` seconds from now.

        Equivalent to cancelling and scheduling afresh -- the event is
        assigned a new sequence number, so FIFO ordering among equal
        timestamps matches a cancel+schedule exactly -- but no
        cancelled tombstone is left behind.  A move to a *later* time
        reuses the existing heap entry, timer-wheel style, re-keying it
        lazily when it surfaces.  A move to an *earlier* time pushes a
        fresh entry eagerly (a lazy re-key would fire late, stuck
        behind the stale later key) and marks the old entry as a ghost
        to be discarded when it surfaces.  Returns the (same) event
        handle.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r}s in the past")
        if event.cancelled or event._sim is not self:
            raise SimulationError("reschedule() requires a pending event "
                                  "of this simulator")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        self.events_scheduled += 1
        event.time = time
        event.seq = seq
        if time < event.key_time:
            # Backward move: abandon the current heap entry (by seq)
            # and push the new key now so the pop is not delayed.
            self._ghost_seqs.add(event.key_seq)
            self._stale += 1
            event.key_time = time
            event.key_seq = seq
            queue = self._queue
            heapq.heappush(queue, (time, seq, event))
            if len(queue) > self.peak_heap:
                self.peak_heap = len(queue)
            if (self._stale > _COMPACT_MIN
                    and self._stale * 2 > len(queue)):
                self._compact()
        return event

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    def _note_cancel(self) -> None:
        """Called by :meth:`Event.cancel`: update live/stale counts and
        compact the heap when cancelled entries dominate it."""
        self._live -= 1
        self._stale += 1
        if (self._stale > _COMPACT_MIN
                and self._stale * 2 > len(self._queue)):
            self._compact()

    def _release(self, event: Event) -> None:
        """Recycle a dead event into the free list."""
        event.callback = None
        event.arg = NO_ARG
        event.cancelled = True
        event._sim = None
        pool = self._pool
        if len(pool) < _POOL_MAX:
            pool.append(event)

    def _compact(self) -> None:
        """Drop cancelled/ghost entries and re-key rescheduled ones,
        in place.

        In-place (slice assignment) so that a compaction triggered from
        inside a callback is seen by the running event loop, which
        holds a local reference to the queue list.
        """
        queue = self._queue
        ghosts = self._ghost_seqs
        kept = []
        for entry in queue:
            if len(entry) == 4:         # anonymous: never cancelled
                kept.append(entry)
                continue
            if entry[1] in ghosts:
                # Abandoned by a backward reschedule; the event it
                # carries lives on under its new key (and may even
                # have been recycled) -- drop the entry, nothing else.
                ghosts.discard(entry[1])
                self._stale -= 1
                continue
            event = entry[2]
            if event.cancelled:
                self._stale -= 1
                self._release(event)
                continue
            if event.time != entry[0] or event.seq != entry[1]:
                event.key_time = event.time
                event.key_seq = event.seq
                kept.append((event.time, event.seq, event))
            else:
                kept.append(entry)
        queue[:] = kept
        heapq.heapify(queue)
        self.heap_compactions += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Run the single next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue was
        empty (cancelled events are skipped transparently).
        """
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            if len(entry) == 4:
                self.now = entry[0]
                self.events_processed += 1
                self._live -= 1
                callback, arg = entry[2], entry[3]
                if arg is NO_ARG:
                    callback()
                else:
                    callback(arg)
                return True
            if entry[1] in self._ghost_seqs:
                self._ghost_seqs.discard(entry[1])
                self._stale -= 1
                continue
            event = entry[2]
            if event.cancelled:
                self._stale -= 1
                self._release(event)
                continue
            if event.time != entry[0] or event.seq != entry[1]:
                event.key_time = event.time
                event.key_seq = event.seq
                heapq.heappush(queue, (event.time, event.seq, event))
                continue
            self.now = event.time
            self.events_processed += 1
            self._live -= 1
            callback, arg = event.callback, event.arg
            self._release(event)
            assert callback is not None
            if arg is NO_ARG:
                callback()
            else:
                callback(arg)
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` more events have been processed.

        Returns the simulated time when the run stopped.  When stopping
        at ``until``, the clock is advanced to ``until`` even if no
        event fires exactly there, so successive bounded runs compose.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        processed = 0
        queue = self._queue
        heappop = heapq.heappop
        heappush = heapq.heappush
        no_arg = NO_ARG
        ghost_seqs = self._ghost_seqs  # mutated in place, never rebound
        # Sentinel limits keep the per-event checks to one comparison
        # each instead of a None test plus a comparison.
        time_limit = float("inf") if until is None else until
        budget = float("inf") if max_events is None else max_events
        self._batch_limit = time_limit
        try:
            while queue:
                entry = queue[0]
                if len(entry) == 3:
                    # Ghost check first: a ghost entry's event may be
                    # cancelled, live under a newer key, or recycled --
                    # only the entry's own seq identifies it safely.
                    if ghost_seqs and entry[1] in ghost_seqs:
                        heappop(queue)
                        ghost_seqs.discard(entry[1])
                        self._stale -= 1
                        continue
                    event = entry[2]
                    if event.cancelled:
                        heappop(queue)
                        self._stale -= 1
                        self._release(event)
                        continue
                    if event.time != entry[0] or event.seq != entry[1]:
                        # Lazily re-key a forward-rescheduled timer.
                        heappop(queue)
                        event.key_time = event.time
                        event.key_seq = event.seq
                        heappush(queue, (event.time, event.seq, event))
                        continue
                    if entry[0] > time_limit or processed >= budget:
                        break
                    heappop(queue)
                    self.now = event.time
                    processed += 1
                    callback = event.callback
                    arg = event.arg
                    self._release(event)
                    if arg is no_arg:
                        callback()
                    else:
                        callback(arg)
                else:
                    if entry[0] > time_limit or processed >= budget:
                        break
                    heappop(queue)
                    self.now = entry[0]
                    processed += 1
                    callback = entry[2]
                    arg = entry[3]
                    if arg is no_arg:
                        callback()
                    else:
                        callback(arg)
        finally:
            self._running = False
            self._batch_limit = float("inf")
            # Folded in once at loop exit; pending() and
            # events_processed read from *inside* a callback lag by the
            # events fired so far in this run() call.
            self.events_processed += processed
            self._live -= processed
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def pending(self) -> int:
        """Number of scheduled, not-yet-cancelled events.  O(1): the
        engine maintains a live count on schedule/cancel/fire.  Events
        fired by an in-progress :meth:`run` are folded in when the run
        loop exits, so a read from inside a callback may overcount."""
        return self._live

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self.now:.6f} pending={self.pending()}>"

"""The discrete-event simulation engine.

The engine is a classic calendar queue built on :mod:`heapq`.  Events
are ``(time, sequence, callback)`` triples; the sequence number makes
ordering total and stable (two events scheduled for the same instant
fire in the order they were scheduled), which keeps simulations
deterministic and therefore reproducible and testable.

Time is a float measured in **seconds** of simulated time.  The engine
never consults the wall clock.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional


class SimulationError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


class Event:
    """A handle to a scheduled callback.

    Returned by :meth:`Simulator.schedule`; the only supported
    operations are :meth:`cancel` and inspecting :attr:`time` /
    :attr:`cancelled`.  Cancellation is lazy: the entry stays in the
    heap but is skipped when popped.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "name")

    def __init__(self, time: float, seq: int, callback: Callable[[], None],
                 name: str = "") -> None:
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[[], None]] = callback
        self.cancelled = False
        self.name = name

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired or was cancelled."""
        self.cancelled = True
        self.callback = None  # break reference cycles promptly

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        label = f" {self.name!r}" if self.name else ""
        return f"<Event{label} t={self.time:.6f} {state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("one second"))
        sim.run()

    The engine supports bounded runs (``until=``), step-wise execution
    (:meth:`step`), and a hard event-count limit as a runaway guard for
    tests.
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None],
                 name: str = "") -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns an :class:`Event` handle that may be cancelled.  A
        negative delay is an error; a zero delay fires after all events
        already scheduled for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r}s in the past")
        event = Event(self._now + delay, next(self._seq), callback, name)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None],
                    name: str = "") -> Event:
        """Schedule ``callback`` at absolute simulated ``time``.

        The event carries exactly ``time`` (no now-relative roundoff),
        so equal absolute times keep FIFO ordering.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}, now is {self._now!r}")
        event = Event(time, next(self._seq), callback, name)
        heapq.heappush(self._queue, event)
        return event

    def step(self) -> bool:
        """Run the single next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue was
        empty (cancelled events are skipped transparently).
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            callback = event.callback
            event.callback = None
            self.events_processed += 1
            assert callback is not None
            callback()
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` more events have been processed.

        Returns the simulated time when the run stopped.  When stopping
        at ``until``, the clock is advanced to ``until`` even if no
        event fires exactly there, so successive bounded runs compose.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        processed = 0
        try:
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    break
                if max_events is not None and processed >= max_events:
                    break
                heapq.heappop(self._queue)
                self._now = event.time
                callback = event.callback
                event.callback = None
                self.events_processed += 1
                processed += 1
                assert callback is not None
                callback()
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def pending(self) -> int:
        """Number of scheduled, not-yet-cancelled events."""
        return sum(1 for event in self._queue if not event.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self._now:.6f} pending={self.pending()}>"

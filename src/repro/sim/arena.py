"""Segment arena: column-store sender scoreboard bookkeeping.

The TCP endpoint tracks every transmitted-but-unacknowledged range in a
scoreboard (RFC 6675 terminology).  The legacy structure was an
``OrderedDict`` of slotted ``SentSegment`` records -- one Python object
per in-flight packet, walked linearly on every SACK block, loss mark
and cumulative ACK.  At bandwidth-delay products of hundreds of
segments those walks dominate the sender's cost.

:class:`SegmentArena` replaces the per-segment objects with
preallocated numpy column arrays (seq, end_seq, payload length, DSN,
FIN flag, timestamps, retransmit/loss state).  Slots are recycled: the
live region is contiguous (``[head, tail)`` -- sequence numbers only
ever append at the tail and retire at the head), and freed front slots
are reclaimed in bulk when the arena compacts or grows.  Because both
``seq`` and ``end_seq`` are sorted within the live region, the
scoreboard operations become ``searchsorted`` + one vectorized mask:

* SACK marking covers a ``[start, end)`` block with two binary
  searches and a masked assignment;
* RFC 6675 loss inference (`mark_losses`) is one comparison mask below
  the SACK threshold;
* cumulative ACKs (`advance_una`) retire a whole prefix by moving the
  head cursor -- no per-segment pops.

:class:`SegmentView` is a flyweight handle exposing the legacy slotted
attribute API (``seq``, ``end_seq``, ``seq_space``, ``state``, ...) so
call sites and tests keep working unchanged.  Views are *ephemeral*:
they stay valid until the next ``append`` (which may compact), which
matches how the endpoint uses them (created, transmitted, dropped
within one event).

Everything here is byte-identical to the scalar scoreboard -- the same
marks in the same order, the same RTT sample selection (last
never-retransmitted segment retired by the ACK).  ``REPRO_SCALAR=1``
(or a missing numpy) selects :class:`PySendScoreboard`, the legacy
object-per-segment implementation, via :func:`make_scoreboard`.
"""

from __future__ import annotations

import collections
from typing import Iterator, List, Optional, Tuple

try:  # pragma: no cover - exercised implicitly everywhere
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

from repro.sim.fastpath import scalar_mode

# Scoreboard states, shared with repro.tcp.endpoint.
FLIGHT = 0   # transmitted, assumed in the network
SACKED = 1   # selectively acknowledged
LOST = 2     # deemed lost (retransmitted or RTO-marked)

_INITIAL_CAPACITY = 256
_NO_DSN = -1  # column sentinel: DSNs are non-negative


class SentSegment:
    """Legacy sender-side bookkeeping for one transmitted range."""

    __slots__ = ("seq", "seq_space", "payload_len", "fin", "dsn",
                 "sent_at", "retransmits", "state", "rexmit_epoch")

    def __init__(self, seq: int, seq_space: int, payload_len: int,
                 fin: bool, dsn: Optional[int], sent_at: float) -> None:
        self.seq = seq
        self.seq_space = seq_space
        self.payload_len = payload_len
        self.fin = fin
        self.dsn = dsn
        self.sent_at = sent_at
        self.retransmits = 0
        self.state = FLIGHT
        self.rexmit_epoch = -1  # recovery epoch this was retransmitted in

    @property
    def end_seq(self) -> int:
        return self.seq + self.seq_space

    def mark_retransmitted(self, epoch: int) -> None:
        self.state = FLIGHT
        self.retransmits += 1
        self.rexmit_epoch = epoch


class SegmentView:
    """Flyweight handle over one arena slot, slotted-attribute API."""

    __slots__ = ("_arena", "_index")

    def __init__(self, arena: "SegmentArena", index: int) -> None:
        self._arena = arena
        self._index = index

    @property
    def seq(self) -> int:
        return int(self._arena.seq[self._index])

    @property
    def end_seq(self) -> int:
        return int(self._arena.end_seq[self._index])

    @property
    def seq_space(self) -> int:
        arena = self._arena
        return int(arena.end_seq[self._index] - arena.seq[self._index])

    @property
    def payload_len(self) -> int:
        return int(self._arena.payload_len[self._index])

    @property
    def fin(self) -> bool:
        return bool(self._arena.fin[self._index])

    @property
    def dsn(self) -> Optional[int]:
        value = int(self._arena.dsn[self._index])
        return None if value == _NO_DSN else value

    @property
    def sent_at(self) -> float:
        return float(self._arena.sent_at[self._index])

    @property
    def retransmits(self) -> int:
        return int(self._arena.retransmits[self._index])

    @property
    def state(self) -> int:
        return int(self._arena.state[self._index])

    @property
    def rexmit_epoch(self) -> int:
        return int(self._arena.rexmit_epoch[self._index])

    def mark_retransmitted(self, epoch: int) -> None:
        arena = self._arena
        index = self._index
        arena.state[index] = FLIGHT
        arena.retransmits[index] += 1
        arena.rexmit_epoch[index] = epoch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SegmentView [{self.seq},{self.end_seq}) "
                f"state={self.state}>")


class SegmentArena:
    """Preallocated column arrays with a contiguous ``[head, tail)``
    live region and bulk slot recycling."""

    __slots__ = ("capacity", "head", "tail", "seq", "end_seq",
                 "payload_len", "fin", "dsn", "sent_at", "retransmits",
                 "state", "rexmit_epoch")

    def __init__(self, capacity: int = _INITIAL_CAPACITY) -> None:
        self.capacity = capacity
        self.head = 0
        self.tail = 0
        self.seq = _np.zeros(capacity, dtype=_np.int64)
        self.end_seq = _np.zeros(capacity, dtype=_np.int64)
        self.payload_len = _np.zeros(capacity, dtype=_np.int64)
        self.fin = _np.zeros(capacity, dtype=_np.bool_)
        self.dsn = _np.zeros(capacity, dtype=_np.int64)
        self.sent_at = _np.zeros(capacity, dtype=_np.float64)
        self.retransmits = _np.zeros(capacity, dtype=_np.int32)
        self.state = _np.zeros(capacity, dtype=_np.int8)
        self.rexmit_epoch = _np.zeros(capacity, dtype=_np.int64)

    def __len__(self) -> int:
        return self.tail - self.head

    _COLUMNS = ("seq", "end_seq", "payload_len", "fin", "dsn",
                "sent_at", "retransmits", "state", "rexmit_epoch")

    def _make_room(self) -> None:
        """Recycle retired front slots, growing only when truly full.

        Compacting in place is free real estate while at least half the
        arena is retired; otherwise double, so appends stay amortized
        O(1) and no per-segment allocation ever happens on the hot path.
        """
        head, tail = self.head, self.tail
        live = tail - head
        if head > 0 and live <= self.capacity // 2:
            for name in self._COLUMNS:
                column = getattr(self, name)
                column[:live] = column[head:tail]
        else:
            self.capacity = max(self.capacity * 2, _INITIAL_CAPACITY)
            for name in self._COLUMNS:
                old = getattr(self, name)
                column = _np.zeros(self.capacity, dtype=old.dtype)
                column[:live] = old[head:tail]
                setattr(self, name, column)
        self.head = 0
        self.tail = live

    def append(self, seq: int, seq_space: int, payload_len: int,
               fin: bool, dsn: Optional[int], sent_at: float) -> int:
        """Claim a slot for a new range; returns its index."""
        if self.tail == self.capacity:
            self._make_room()
        index = self.tail
        self.seq[index] = seq
        self.end_seq[index] = seq + seq_space
        self.payload_len[index] = payload_len
        self.fin[index] = fin
        self.dsn[index] = _NO_DSN if dsn is None else dsn
        self.sent_at[index] = sent_at
        self.retransmits[index] = 0
        self.state[index] = FLIGHT
        self.rexmit_epoch[index] = -1
        self.tail = index + 1
        return index


class ArraySendScoreboard:
    """Arena-backed scoreboard: the endpoint's ``_sent`` structure.

    The mutating operations return exactly the aggregates the endpoint
    needs to maintain its ``pipe`` / ``_lost_count`` accounting, so the
    congestion-control math stays in :mod:`repro.tcp.endpoint` and only
    the per-segment walks move into numpy.
    """

    __slots__ = ("_arena", "_sim")

    def __init__(self, sim=None) -> None:
        self._arena = SegmentArena()
        self._sim = sim

    # -- container protocol (tests iterate like the legacy dict) -------

    def __len__(self) -> int:
        return len(self._arena)

    def __bool__(self) -> bool:
        return self._arena.tail > self._arena.head

    def values(self) -> List[SegmentView]:
        arena = self._arena
        return [SegmentView(arena, index)
                for index in range(arena.head, arena.tail)]

    # -- mutation -------------------------------------------------------

    def append(self, seq: int, seq_space: int, payload_len: int,
               fin: bool, dsn: Optional[int],
               sent_at: float) -> SegmentView:
        arena = self._arena
        index = arena.append(seq, seq_space, payload_len, fin, dsn,
                             sent_at)
        sim = self._sim
        if sim is not None:
            live = arena.tail - arena.head
            if live > sim.arena_peak:
                sim.arena_peak = live
        return SegmentView(arena, index)

    def sack(self, start: int, end: int) -> int:
        """Mark in-flight ranges fully inside ``[start, end)`` SACKed.

        Returns the byte count newly removed from the pipe.
        """
        arena = self._arena
        head, tail = arena.head, arena.tail
        if head == tail:
            return 0
        lo = head + int(_np.searchsorted(arena.seq[head:tail], start,
                                         side="left"))
        hi = head + int(_np.searchsorted(arena.end_seq[head:tail], end,
                                         side="right"))
        if hi <= lo:
            return 0
        state = arena.state[lo:hi]
        mask = state == FLIGHT
        if not mask.any():
            return 0
        freed = int((arena.end_seq[lo:hi] - arena.seq[lo:hi])[mask].sum())
        state[mask] = SACKED
        return freed

    def mark_losses(self, threshold: int, epoch: int) -> Tuple[int, int]:
        """RFC 6675 loss inference below the SACK ``threshold``.

        Flags still-in-flight ranges ending at or below ``threshold``
        (unless already retransmitted in ``epoch``) as LOST; returns
        ``(count, freed_bytes)`` for the pipe bookkeeping.
        """
        arena = self._arena
        head, tail = arena.head, arena.tail
        if head == tail:
            return 0, 0
        hi = head + int(_np.searchsorted(arena.end_seq[head:tail],
                                         threshold, side="right"))
        if hi <= head:
            return 0, 0
        state = arena.state[head:hi]
        mask = (state == FLIGHT) & (arena.rexmit_epoch[head:hi] != epoch)
        count = int(mask.sum())
        if not count:
            return 0, 0
        freed = int((arena.end_seq[head:hi]
                     - arena.seq[head:hi])[mask].sum())
        state[mask] = LOST
        return count, freed

    def advance_una(self, ack: int
                    ) -> Tuple[int, Optional[float], int, int]:
        """Retire every range fully covered by the cumulative ``ack``.

        Returns ``(newly_acked_bytes, rtt_sent_at, flight_freed_bytes,
        lost_retired_count)`` where ``rtt_sent_at`` is the transmit
        timestamp of the *last* retired never-retransmitted range (the
        Karn-compliant RTT sample), or ``None``.
        """
        arena = self._arena
        head, tail = arena.head, arena.tail
        hi = head + int(_np.searchsorted(arena.end_seq[head:tail], ack,
                                         side="right"))
        if hi <= head:
            return 0, None, 0, 0
        retired = slice(head, hi)
        space = arena.end_seq[retired] - arena.seq[retired]
        state = arena.state[retired]
        newly_acked = int(space.sum())
        flight_freed = int(space[state == FLIGHT].sum())
        lost_retired = int((state == LOST).sum())
        fresh = _np.nonzero(arena.retransmits[retired] == 0)[0]
        rtt_sent_at = (float(arena.sent_at[head + int(fresh[-1])])
                       if fresh.size else None)
        arena.head = hi
        return newly_acked, rtt_sent_at, flight_freed, lost_retired

    def front_unsacked(self) -> Optional[SegmentView]:
        """First range not selectively acknowledged (retransmit front)."""
        arena = self._arena
        head, tail = arena.head, arena.tail
        if head == tail:
            return None
        candidates = _np.nonzero(arena.state[head:tail] != SACKED)[0]
        if not candidates.size:
            return None
        return SegmentView(arena, head + int(candidates[0]))

    def find_lost(self, epoch: int) -> Optional[SegmentView]:
        """Next LOST range not yet resent in recovery ``epoch``."""
        arena = self._arena
        head, tail = arena.head, arena.tail
        if head == tail:
            return None
        mask = ((arena.state[head:tail] == LOST)
                & (arena.rexmit_epoch[head:tail] != epoch))
        candidates = _np.nonzero(mask)[0]
        if not candidates.size:
            return None
        return SegmentView(arena, head + int(candidates[0]))

    def mark_all_lost(self) -> Tuple[int, int]:
        """RTO: every outstanding range becomes LOST.

        Returns ``(flight_freed_bytes, total_count)``.
        """
        arena = self._arena
        head, tail = arena.head, arena.tail
        if head == tail:
            return 0, 0
        live = slice(head, tail)
        state = arena.state[live]
        flight = state == FLIGHT
        flight_freed = int((arena.end_seq[live]
                            - arena.seq[live])[flight].sum())
        state[:] = LOST
        return flight_freed, tail - head

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        arena = self._arena
        return (f"<ArraySendScoreboard live={len(self)} "
                f"capacity={arena.capacity}>")


class PySendScoreboard:
    """Legacy object-per-segment scoreboard (``REPRO_SCALAR=1``).

    Preserved verbatim from the pre-arena endpoint: an ordered dict of
    slotted records walked linearly, so equivalence suites can A/B the
    vectorized scoreboard against the original access pattern.
    """

    __slots__ = ("_sent", "_sim")

    def __init__(self, sim=None) -> None:
        self._sent: "collections.OrderedDict[int, SentSegment]" = \
            collections.OrderedDict()
        self._sim = sim

    def __len__(self) -> int:
        return len(self._sent)

    def __bool__(self) -> bool:
        return bool(self._sent)

    def values(self) -> Iterator[SentSegment]:
        return self._sent.values()

    def append(self, seq: int, seq_space: int, payload_len: int,
               fin: bool, dsn: Optional[int],
               sent_at: float) -> SentSegment:
        sent = SentSegment(seq, seq_space, payload_len, fin, dsn,
                           sent_at)
        self._sent[seq] = sent
        sim = self._sim
        if sim is not None and len(self._sent) > sim.arena_peak:
            sim.arena_peak = len(self._sent)
        return sent

    def sack(self, start: int, end: int) -> int:
        freed = 0
        for sent in self._sent.values():
            if sent.seq >= end:
                break
            if (sent.state == FLIGHT and sent.seq >= start
                    and sent.end_seq <= end):
                sent.state = SACKED
                freed += sent.seq_space
        return freed

    def mark_losses(self, threshold: int, epoch: int) -> Tuple[int, int]:
        count = freed = 0
        for sent in self._sent.values():
            if sent.end_seq > threshold:
                break
            if sent.state == FLIGHT and sent.rexmit_epoch != epoch:
                sent.state = LOST
                count += 1
                freed += sent.seq_space
        return count, freed

    def advance_una(self, ack: int
                    ) -> Tuple[int, Optional[float], int, int]:
        newly_acked = flight_freed = lost_retired = 0
        rtt_sent_at: Optional[float] = None
        while self._sent:
            seq, sent = next(iter(self._sent.items()))
            if sent.end_seq > ack:
                break
            del self._sent[seq]
            if sent.state == FLIGHT:
                flight_freed += sent.seq_space
            elif sent.state == LOST:
                lost_retired += 1
            newly_acked += sent.seq_space
            if sent.retransmits == 0:
                rtt_sent_at = sent.sent_at
        return newly_acked, rtt_sent_at, flight_freed, lost_retired

    def front_unsacked(self) -> Optional[SentSegment]:
        for sent in self._sent.values():
            if sent.state != SACKED:
                return sent
        return None

    def find_lost(self, epoch: int) -> Optional[SentSegment]:
        for sent in self._sent.values():
            if sent.state == LOST and sent.rexmit_epoch != epoch:
                return sent
        return None

    def mark_all_lost(self) -> Tuple[int, int]:
        flight_freed = 0
        for sent in self._sent.values():
            if sent.state == FLIGHT:
                flight_freed += sent.seq_space
            sent.state = LOST
        return flight_freed, len(self._sent)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PySendScoreboard live={len(self)}>"


def make_scoreboard(sim=None):
    """Scoreboard factory honouring the ``REPRO_SCALAR`` escape hatch."""
    if _np is None or scalar_mode():
        return PySendScoreboard(sim)
    return ArraySendScoreboard(sim)

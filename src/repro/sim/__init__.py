"""Discrete-event simulation kernel.

This subpackage provides the deterministic simulation substrate that
everything else in :mod:`repro` is built on:

* :class:`~repro.sim.engine.Simulator` -- the event loop: a priority
  queue of timestamped events with stable FIFO ordering for ties,
  cancellable timers, and a monotonically advancing simulated clock.
* :class:`~repro.sim.rng.RngRegistry` -- named, independently seeded
  random streams so that, e.g., WiFi loss draws never perturb cellular
  rate draws and experiments replay bit-for-bit given a root seed.

Nothing in here knows about networking; it is a general event kernel.
"""

from repro.sim.engine import Event, NO_ARG, Simulator, SimulationError
from repro.sim.rng import RngRegistry, derive_seed

__all__ = [
    "Event",
    "NO_ARG",
    "Simulator",
    "SimulationError",
    "RngRegistry",
    "derive_seed",
]

"""Radio energy accounting (the paper's stated future work).

Section 6: "as one benefits from using MPTCP by utilizing an
additional interface, a natural question is energy consumption. ...
We leave this as future work."  This module implements that study's
instrumentation: a per-interface energy meter driven by the packet
activity the simulator already produces.

The model follows the standard smartphone radio characterization
[Huang et al., MobiSys'12]: a radio consumes ``active_w`` while
transferring and for a ``tail_s``-long timer after the last packet
(the infamous LTE/3G tail), ``promotion_w`` during each IDLE->ACTIVE
promotion, and ``idle_w`` otherwise.  WiFi has no promotion and a
negligible tail.

Usage::

    audit = EnergyAudit(testbed)       # attach before the transfer
    ... run the download ...
    report = audit.report()            # joules per interface
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.netsim.packet import Packet
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class PowerProfile:
    """Radio power states in watts; timers in seconds."""

    name: str
    idle_w: float
    active_w: float
    tail_s: float
    promotion_w: float = 0.0
    promotion_s: float = 0.0


#: LTE: ~1.2 W promotion for ~0.26 s, ~1.3 W while transferring, and an
#: ~11 s tail at comparable power [Huang et al.].
LTE_POWER = PowerProfile(name="lte", idle_w=0.025, active_w=1.3,
                         tail_s=11.0, promotion_w=1.2, promotion_s=0.26)

#: 3G EVDO: slower promotion, lower active power, long tail.
EVDO_POWER = PowerProfile(name="evdo", idle_w=0.015, active_w=0.8,
                          tail_s=8.0, promotion_w=0.65, promotion_s=1.5)

#: WiFi: no promotion, short power-save tail, much cheaper active state.
WIFI_POWER = PowerProfile(name="wifi", idle_w=0.008, active_w=0.4,
                          tail_s=0.2)

#: Power profile by access technology keyword in the interface address.
POWER_BY_PATH: Dict[str, PowerProfile] = {
    "wifi": WIFI_POWER,
    "att": LTE_POWER,
    "verizon": LTE_POWER,
    "sprint": EVDO_POWER,
}


@dataclass
class EnergyReport:
    """Joules spent by one interface over the metered window."""

    interface: str
    active_time: float = 0.0
    tail_time: float = 0.0
    promotions: int = 0
    active_joules: float = 0.0
    tail_joules: float = 0.0
    promotion_joules: float = 0.0
    idle_joules: float = 0.0

    @property
    def total_joules(self) -> float:
        return (self.active_joules + self.tail_joules
                + self.promotion_joules + self.idle_joules)


class EnergyMeter:
    """Integrates one radio's power over time from packet activity.

    The radio is ACTIVE from the first packet of a burst until
    ``tail_s`` after the last; overlapping bursts merge.  Call
    :meth:`on_activity` per packet and :meth:`report` at the end.
    """

    def __init__(self, sim: Simulator, interface: str,
                 profile: PowerProfile) -> None:
        self.sim = sim
        self.interface = interface
        self.profile = profile
        self.started_at = sim.now
        self.promotions = 0
        self._burst_start: Optional[float] = None
        self._last_activity: Optional[float] = None
        self._active_time = 0.0  # closed bursts, transfer part only
        self._tail_time = 0.0

    def on_activity(self) -> None:
        """A packet crossed the interface now."""
        now = self.sim.now
        if self._burst_start is None:
            self._burst_start = now
        elif now - self._last_activity > self.profile.tail_s:
            self._close_burst()
            self._burst_start = now
        self._last_activity = now

    def on_promotion(self) -> None:
        self.promotions += 1

    def _close_burst(self) -> None:
        assert self._burst_start is not None
        assert self._last_activity is not None
        self._active_time += self._last_activity - self._burst_start
        self._tail_time += self.profile.tail_s
        self._burst_start = None
        self._last_activity = None

    def report(self, until: Optional[float] = None) -> EnergyReport:
        """Close the accounting window and integrate power."""
        now = until if until is not None else self.sim.now
        active = self._active_time
        tail = self._tail_time
        if self._burst_start is not None and self._last_activity is not None:
            active += self._last_activity - self._burst_start
            tail += min(self.profile.tail_s,
                        max(now - self._last_activity, 0.0))
        profile = self.profile
        promotion_time = self.promotions * profile.promotion_s
        window = max(now - self.started_at, 0.0)
        idle_time = max(window - active - tail - promotion_time, 0.0)
        return EnergyReport(
            interface=self.interface,
            active_time=active,
            tail_time=tail,
            promotions=self.promotions,
            active_joules=active * profile.active_w,
            tail_joules=tail * profile.active_w,  # tail burns ~active power
            promotion_joules=promotion_time * profile.promotion_w,
            idle_joules=idle_time * profile.idle_w,
        )


class EnergyAudit:
    """Meters every client interface of a testbed.

    Attach immediately after building the testbed (before traffic);
    packet activity is observed through the client host's capture hook.
    """

    def __init__(self, testbed) -> None:
        self.testbed = testbed
        self.meters: Dict[str, EnergyMeter] = {}
        for address in testbed.client.interfaces:
            path = address.split(".", 1)[1]
            profile = POWER_BY_PATH.get(path, WIFI_POWER)
            self.meters[address] = EnergyMeter(testbed.sim, address,
                                               profile)
        testbed.client.add_capture_hook(self._hook)

    def _hook(self, direction: str, time: float, packet: Packet) -> None:
        address = packet.src if direction == "send" else packet.dst
        meter = self.meters.get(address)
        if meter is not None:
            meter.on_activity()

    def report(self, until: Optional[float] = None
               ) -> Dict[str, EnergyReport]:
        return {address: meter.report(until)
                for address, meter in self.meters.items()}

    def total_joules(self, until: Optional[float] = None) -> float:
        return sum(report.total_joules
                   for report in self.report(until).values())

"""Wireless access-network models.

* :mod:`repro.wireless.rrc` -- the cellular radio resource control
  state machine: IDLE -> PROMOTING -> CONNECTED, with the promotion
  delay that the paper works around by pinging before each measurement
  (Section 3.2).
* :mod:`repro.wireless.profiles` -- calibrated per-carrier path
  profiles (AT&T LTE, Verizon LTE, Sprint 3G EVDO, home WiFi, public
  hotspot WiFi, server Ethernet) plus time-of-day environment
  modulation.
"""

from repro.wireless.energy import (
    EnergyAudit,
    EnergyMeter,
    EnergyReport,
    PowerProfile,
)
from repro.wireless.mobility import InterfaceOutage
from repro.wireless.rrc import RadioState, RadioStateMachine
from repro.wireless.signal import apply_signal, rate_fraction
from repro.wireless.profiles import (
    CARRIER_PROFILES,
    ATT_LTE,
    VERIZON_LTE,
    SPRINT_EVDO,
    HOME_WIFI,
    PUBLIC_WIFI,
    SERVER_ETHERNET,
    PathProfile,
    TimeOfDay,
    environment_factor,
)

__all__ = [
    "EnergyAudit",
    "EnergyMeter",
    "EnergyReport",
    "PowerProfile",
    "InterfaceOutage",
    "RadioState",
    "RadioStateMachine",
    "apply_signal",
    "rate_fraction",
    "CARRIER_PROFILES",
    "ATT_LTE",
    "VERIZON_LTE",
    "SPRINT_EVDO",
    "HOME_WIFI",
    "PUBLIC_WIFI",
    "SERVER_ETHERNET",
    "PathProfile",
    "TimeOfDay",
    "environment_factor",
]

"""Calibrated access-network profiles for the paper's carriers.

The paper measures (Tables 2/3/4/5) a consistent set of per-carrier
path characteristics; the profiles below are calibrated so single-path
TCP over the simulated access networks lands in the same regimes:

===========  =========  ==========  ===========  ==========================
carrier      base RTT   loss seen    rate         RTT inflation mechanism
===========  =========  ==========  ===========  ==========================
home WiFi    ~20 ms     1-2 %       ~20 Mbit/s   shallow buffer, lossy MAC
public WiFi  ~25 ms     3-5 %       ~6 Mbit/s    cross-traffic + loss
AT&T LTE     ~60 ms     ~0 %        ~16 Mbit/s   deep buffer, mild variance
Verizon LTE  ~32 ms     ~0-1 %      ~10 Mbit/s   deep buffer, high variance
Sprint EVDO  ~120 ms    0.3-4 %     ~1.2 Mbit/s  deep buffer, slow + wild
===========  =========  ==========  ===========  ==========================

Cellular paths carry a link-layer ARQ model (losses repaired locally,
surfacing as delay) and an AR(1) service-rate modulation whose variance
increases from AT&T to Verizon to Sprint; these two knobs produce both
the near-zero TCP-visible loss and the heavy RTT tails of Figure 12.

Time/space diversity (Section 3.2: four day periods, three towns) is
modeled by :func:`environment_factor`, which derives per-run rate and
loss multipliers from the experiment RNG; WiFi is the most sensitive
(residential backhaul and hotspot load), cellular less so.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.netsim.link import ArqConfig, LinkConfig, RateModulation

MBPS = 1e6
MS = 1e-3
KB = 1024


class TimeOfDay(enum.Enum):
    """The four measurement periods of Section 3.2."""

    NIGHT = "night"          # 0-6 AM
    MORNING = "morning"      # 6-12 AM
    AFTERNOON = "afternoon"  # 12-6 PM
    EVENING = "evening"      # 6-12 PM


#: Relative WiFi contention by period (residential usage pattern): the
#: evening is the busiest, the night nearly idle.
_PERIOD_LOAD: Dict[TimeOfDay, float] = {
    TimeOfDay.NIGHT: 0.70,
    TimeOfDay.MORNING: 0.90,
    TimeOfDay.AFTERNOON: 1.10,
    TimeOfDay.EVENING: 1.30,
}


@dataclass(frozen=True)
class EnvironmentFactors:
    """Per-run multipliers drawn by :func:`environment_factor`."""

    rate_scale: float = 1.0
    loss_scale: float = 1.0


@dataclass(frozen=True)
class PathProfile:
    """Everything needed to instantiate one access network.

    Rates are bits/second, delays seconds, buffers bytes.  The profile
    describes the *access* segment only; the server-LAN segment is
    :data:`SERVER_ETHERNET`.
    """

    name: str
    technology: str
    down_rate: float
    up_rate: float
    prop_delay: float
    down_buffer: int
    up_buffer: int
    down_loss: float = 0.0
    up_loss: float = 0.0
    jitter_mean: float = 0.0
    arq: Optional[ArqConfig] = None
    modulation: Optional[RateModulation] = None
    promotion_delay: float = 0.0
    is_wifi: bool = False

    @property
    def is_cellular(self) -> bool:
        return self.promotion_delay > 0.0

    def with_environment(self, env: EnvironmentFactors) -> "PathProfile":
        """Return a copy with per-run rate/loss multipliers applied."""
        return replace(
            self,
            down_rate=self.down_rate * env.rate_scale,
            up_rate=self.up_rate * env.rate_scale,
            down_loss=min(self.down_loss * env.loss_scale, 0.25),
            up_loss=min(self.up_loss * env.loss_scale, 0.25),
        )

    def link_configs(self) -> tuple[LinkConfig, LinkConfig]:
        """Build the (uplink, downlink) configs for this access network."""
        up = LinkConfig(
            rate_bps=self.up_rate,
            prop_delay=self.prop_delay,
            buffer_bytes=self.up_buffer,
            loss_rate=self.up_loss,
            jitter_mean=self.jitter_mean / 2,
            arq=self.arq,
            modulation=self.modulation,
        )
        down = LinkConfig(
            rate_bps=self.down_rate,
            prop_delay=self.prop_delay,
            buffer_bytes=self.down_buffer,
            loss_rate=self.down_loss,
            jitter_mean=self.jitter_mean,
            arq=self.arq,
            modulation=self.modulation,
        )
        return up, down


def environment_factor(rng: random.Random, profile: PathProfile,
                       period: TimeOfDay) -> EnvironmentFactors:
    """Draw per-run environment multipliers for one measurement.

    WiFi rate and loss fluctuate with residential/hotspot load (period
    dependent); cellular paths fluctuate less (the paper's signal range
    of -60..-102 dBm over three towns is folded into a mild lognormal).
    """
    if profile.is_wifi:
        load = _PERIOD_LOAD[period]
        rate_scale = rng.lognormvariate(0.0, 0.20) / (0.6 + 0.4 * load)
        loss_scale = rng.lognormvariate(0.0, 0.35) * load
    else:
        rate_scale = rng.lognormvariate(0.0, 0.12)
        loss_scale = rng.lognormvariate(0.0, 0.20)
    return EnvironmentFactors(rate_scale=rate_scale, loss_scale=loss_scale)


# ----------------------------------------------------------------------
# The calibrated profiles
# ----------------------------------------------------------------------

HOME_WIFI = PathProfile(
    name="wifi",
    technology="802.11a/b/g (Comcast residential)",
    down_rate=20 * MBPS,
    up_rate=4 * MBPS,
    prop_delay=8 * MS,
    down_buffer=150 * KB,
    up_buffer=96 * KB,
    down_loss=0.013,
    up_loss=0.002,
    jitter_mean=1.5 * MS,
    modulation=RateModulation(rho=0.9, sigma=0.05, interval=0.1,
                              floor=0.4, ceiling=1.4),
    is_wifi=True,
)

PUBLIC_WIFI = PathProfile(
    name="public-wifi",
    technology="802.11 hotspot (coffee shop, Comcast business)",
    down_rate=6 * MBPS,
    up_rate=2 * MBPS,
    prop_delay=9 * MS,
    down_buffer=100 * KB,
    up_buffer=64 * KB,
    down_loss=0.035,
    up_loss=0.006,
    jitter_mean=6 * MS,
    modulation=RateModulation(rho=0.92, sigma=0.18, interval=0.1,
                              floor=0.15, ceiling=1.6),
    is_wifi=True,
)

ATT_LTE = PathProfile(
    name="att",
    technology="4G LTE (Elevate mobile hotspot)",
    down_rate=13 * MBPS,
    up_rate=6 * MBPS,
    prop_delay=27 * MS,
    down_buffer=1024 * KB,
    up_buffer=256 * KB,
    jitter_mean=2 * MS,
    arq=ArqConfig(error_rate=0.02, recovery_min=0.015, recovery_max=0.05,
                  residual_loss=0.004),
    modulation=RateModulation(rho=0.93, sigma=0.05, interval=0.1,
                              floor=0.45, ceiling=1.5),
    promotion_delay=0.26,
)

VERIZON_LTE = PathProfile(
    name="verizon",
    technology="4G LTE (USB modem 551L)",
    down_rate=6.5 * MBPS,
    up_rate=3 * MBPS,
    prop_delay=13 * MS,
    down_buffer=1536 * KB,
    up_buffer=256 * KB,
    jitter_mean=4 * MS,
    arq=ArqConfig(error_rate=0.03, recovery_min=0.02, recovery_max=0.08,
                  residual_loss=0.02),
    modulation=RateModulation(rho=0.98, sigma=0.10, interval=0.25,
                              floor=0.05, ceiling=1.5),
    promotion_delay=0.26,
)

SPRINT_EVDO = PathProfile(
    name="sprint",
    technology="3G EVDO (OverdrivePro mobile hotspot)",
    down_rate=1.3 * MBPS,
    up_rate=0.5 * MBPS,
    prop_delay=55 * MS,
    down_buffer=768 * KB,
    up_buffer=128 * KB,
    jitter_mean=8 * MS,
    arq=ArqConfig(error_rate=0.05, recovery_min=0.04, recovery_max=0.15,
                  residual_loss=0.05),
    modulation=RateModulation(rho=0.97, sigma=0.12, interval=0.25,
                              floor=0.08, ceiling=1.7),
    promotion_delay=1.5,
)

#: A Dual-LTE pair modelled on the "Is two greater than one?" dual-
#: carrier measurement study (PAPERS.md): two LTE modems from distinct
#: operators, similar technology but visibly different base RTT and
#: achievable rate, both with deep buffers and ARQ-repaired loss.
#: Carrier A is the faster/closer one, carrier B slower with wilder
#: rate modulation -- the regime where scheduler choice dominates.
LTE_A = PathProfile(
    name="lte-a",
    technology="4G LTE carrier A (dual-SIM router, primary operator)",
    down_rate=20 * MBPS,
    up_rate=8 * MBPS,
    prop_delay=18 * MS,
    down_buffer=1024 * KB,
    up_buffer=256 * KB,
    jitter_mean=2 * MS,
    arq=ArqConfig(error_rate=0.02, recovery_min=0.012, recovery_max=0.04,
                  residual_loss=0.003),
    modulation=RateModulation(rho=0.94, sigma=0.06, interval=0.1,
                              floor=0.4, ceiling=1.5),
    promotion_delay=0.26,
)

LTE_B = PathProfile(
    name="lte-b",
    technology="4G LTE carrier B (dual-SIM router, secondary operator)",
    down_rate=11 * MBPS,
    up_rate=4 * MBPS,
    prop_delay=26 * MS,
    down_buffer=1536 * KB,
    up_buffer=256 * KB,
    jitter_mean=4 * MS,
    arq=ArqConfig(error_rate=0.03, recovery_min=0.02, recovery_max=0.07,
                  residual_loss=0.01),
    modulation=RateModulation(rho=0.97, sigma=0.11, interval=0.2,
                              floor=0.1, ceiling=1.6),
    promotion_delay=0.26,
)

#: The server's Gigabit-Ethernet LAN segments (two subnets at UMass),
#: with a couple of milliseconds of campus/Internet core delay folded in.
SERVER_ETHERNET = PathProfile(
    name="ethernet",
    technology="1 GigE campus LAN",
    down_rate=1000 * MBPS,
    up_rate=1000 * MBPS,
    prop_delay=2.5 * MS,
    down_buffer=2048 * KB,
    up_buffer=2048 * KB,
)

#: Cellular carriers by the names used throughout the paper's figures.
CARRIER_PROFILES: Dict[str, PathProfile] = {
    "att": ATT_LTE,
    "verizon": VERIZON_LTE,
    "sprint": SPRINT_EVDO,
}

#: WiFi flavors by scenario name.
WIFI_PROFILES: Dict[str, PathProfile] = {
    "home": HOME_WIFI,
    "public": PUBLIC_WIFI,
}


@dataclass(frozen=True)
class PathPair:
    """A named pair of access networks for a two-path MPTCP client.

    ``primary`` replaces the testbed's WiFi slot (the default path) and
    ``secondary`` its cellular slot.  Note the testbed derives path
    *names* from interface addresses, so in figures/CSVs the primary
    still reports as ``wifi`` and the secondary as the chosen carrier
    name -- the pair changes the physics, not the labels.
    """

    name: str
    primary: PathProfile
    secondary: PathProfile


#: Named path pairs selectable via ``FlowSpec.path_pair``.  "default"
#: (not listed here) keeps the paper's WiFi + carrier testbed.
PATH_PAIRS: Dict[str, PathPair] = {
    "dual-lte": PathPair("dual-lte", LTE_A, LTE_B),
}

"""Signal strength: from dBm to path quality.

Section 3.1: "cellular reception signals of different carriers (over
different places) are in the range between -60 dBm and -102 dBm, which
covers good and weak signals."  The default environment lottery folds
this into a lognormal; this module exposes the mapping explicitly so
experiments can *sweep* signal strength (a drive test), pinning the
location instead of sampling it.

The model is a standard link-budget abstraction: received power over
a -100 dBm noise floor gives an SNR, Shannon capacity relative to the
capacity at the strong-signal reference (-60 dBm) scales the rate, and
radio block-error rate (feeding the link-layer ARQ) grows as the SNR
decays.
"""

from __future__ import annotations

import dataclasses
import math

from repro.netsim.link import ArqConfig
from repro.wireless.profiles import PathProfile

#: The paper's observed range.
STRONG_DBM = -60.0
WEAK_DBM = -102.0

#: Thermal-ish noise floor for a cellular carrier bandwidth.
NOISE_FLOOR_DBM = -104.0


def snr_db(dbm: float) -> float:
    """Signal-to-noise ratio implied by the received power."""
    return dbm - NOISE_FLOOR_DBM


def rate_fraction(dbm: float) -> float:
    """Shannon-capacity fraction relative to the strong-signal anchor.

    1.0 at -60 dBm, decaying smoothly toward ~0.05-0.15 at the paper's
    weak end; clamped to [0.02, 1.0].
    """
    snr_linear = 10 ** (snr_db(dbm) / 10.0)
    reference = 10 ** (snr_db(STRONG_DBM) / 10.0)
    fraction = math.log2(1 + snr_linear) / math.log2(1 + reference)
    return min(max(fraction, 0.02), 1.0)


def radio_error_rate(dbm: float, base_error: float) -> float:
    """Block-error probability feeding the link-layer ARQ.

    At the strong anchor it equals the profile's calibrated base; each
    ~6 dB of fade roughly doubles it, capped at 35% (beyond that the
    connection is effectively unusable, matching field experience).
    """
    fade_db = max(STRONG_DBM - dbm, 0.0)
    return min(base_error * (2.0 ** (fade_db / 6.0)), 0.35)


def apply_signal(profile: PathProfile, dbm: float) -> PathProfile:
    """A copy of ``profile`` as it would perform at ``dbm``.

    Scales both link rates by the capacity fraction and raises the ARQ
    error rate (and its residual loss share, mildly) with the fade.
    """
    if not profile.is_cellular:
        raise ValueError("signal model applies to cellular profiles")
    fraction = rate_fraction(dbm)
    arq = profile.arq or ArqConfig()
    scaled_arq = dataclasses.replace(
        arq,
        error_rate=radio_error_rate(dbm, max(arq.error_rate, 0.005)),
        residual_loss=min(arq.residual_loss *
                          (1.0 + (STRONG_DBM - dbm) / 40.0), 0.5),
    )
    return dataclasses.replace(
        profile,
        down_rate=profile.down_rate * fraction,
        up_rate=profile.up_rate * fraction,
        arq=scaled_arq,
    )

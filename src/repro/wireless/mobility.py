"""Mobility events: interface outages and recoveries.

Section 6 of the paper argues MPTCP's mobility story: "users move from
one access point to another ... forcing the on-going connections to be
either stalled or reset", while "MPTCP not only leverages multiple
paths simultaneously ... it also provides robust data transport in a
dynamically changing environment".  The related work it contrasts with
(Paasch et al.) measures exactly WiFi-outage handover.

:class:`InterfaceOutage` schedules a down/up window on one interface:
both access links black-hole traffic while down, and registered
callbacks fire on each transition so the MPTCP path manager can reopen
subflows when the interface returns (the paper's "delayed re-use"
problem is thereby modeled explicitly: re-use happens only when the
client notices and re-joins).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.netsim.host import Interface
from repro.sim.engine import Simulator


class InterfaceOutage:
    """Schedules connectivity loss windows on one interface."""

    def __init__(self, sim: Simulator, interface: Interface) -> None:
        self.sim = sim
        self.interface = interface
        self.on_down: List[Callable[[], None]] = []
        self.on_up: List[Callable[[], None]] = []
        self.outages: List[tuple] = []
        # An outage truncates in-flight service: keep both access links
        # on the scalar per-packet pipeline so the RNG draw sequence
        # around down/up transitions matches the legacy path exactly.
        interface.up_link.disable_batching()
        interface.down_link.disable_batching()

    def schedule(self, down_at: float, up_at: Optional[float]) -> None:
        """Take the interface down at ``down_at`` and (optionally) back
        up at ``up_at`` (absolute simulated times)."""
        if up_at is not None and up_at <= down_at:
            raise ValueError("recovery must follow the outage")
        self.outages.append((down_at, up_at))
        self.sim.schedule_at(down_at, self._go_down,
                             name="outage.down")
        if up_at is not None:
            self.sim.schedule_at(up_at, self._go_up, name="outage.up")

    def _go_down(self) -> None:
        self.interface.up_link.set_down(True)
        self.interface.down_link.set_down(True)
        for callback in self.on_down:
            callback()

    def _go_up(self) -> None:
        self.interface.up_link.set_down(False)
        self.interface.down_link.set_down(False)
        for callback in self.on_up:
            callback()

    @property
    def is_down(self) -> bool:
        return self.interface.up_link.is_down

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<InterfaceOutage {self.interface.name} "
                f"windows={self.outages}>")

"""Cellular radio resource control (RRC) state machine.

Cellular antennas move between power states; bringing the radio from
IDLE to the ready state (the *state promotion delay*) typically costs
more than a packet RTT -- around 260 ms on LTE and one to two seconds
on 3G [Huang et al., MobiSys'12].  Section 3.2 of the paper avoids
contaminating short-flow measurements with this delay by sending two
ICMP pings first; the experiment harness mirrors that with
:meth:`RadioStateMachine.warm_up`.

The machine exposed here gates uplink transmissions: a send while IDLE
queues the action, starts promotion, and releases the queue when the
radio reaches CONNECTED.  An inactivity timer demotes back to IDLE.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional, Tuple

from repro.sim.engine import Event, NO_ARG, Simulator


class RadioState(enum.Enum):
    IDLE = "idle"
    PROMOTING = "promoting"
    CONNECTED = "connected"


class RadioStateMachine:
    """Promotion-delay gate for a cellular interface."""

    def __init__(self, sim: Simulator, promotion_delay: float,
                 inactivity_timeout: float = 10.0) -> None:
        self.sim = sim
        self.promotion_delay = promotion_delay
        self.inactivity_timeout = inactivity_timeout
        self.state = RadioState.IDLE
        self.promotions = 0
        self._pending: List[Tuple[Callable[..., None], object]] = []
        self._demotion_timer: Optional[Event] = None

    def request(self, action: Callable[..., None],
                arg: object = NO_ARG) -> None:
        """Run ``action`` once the radio is CONNECTED.

        Runs immediately when already connected; otherwise queues the
        action and (if idle) starts promotion.  Passing ``arg`` calls
        ``action(arg)`` without allocating a closure — this is the
        per-packet path when the radio gates an interface.
        """
        if self.state is RadioState.CONNECTED:
            self.touch()
            if arg is NO_ARG:
                action()
            else:
                action(arg)
            return
        self._pending.append((action, arg))
        if self.state is RadioState.IDLE:
            self.state = RadioState.PROMOTING
            self.promotions += 1
            trace = self.sim.trace
            if trace.enabled:
                trace.emit(self.sim.now, "rrc.state", old="idle",
                           new="promoting", delay=self.promotion_delay)
            self.sim.schedule(self.promotion_delay, self._promoted,
                              name="rrc.promote")

    def touch(self) -> None:
        """Record activity: reset the inactivity (demotion) timer.

        Called for every packet crossing a cellular interface, so the
        pending timer is pushed back in place (one sequence number,
        same as a cancel+schedule) rather than replaced.
        """
        if self.state is not RadioState.CONNECTED:
            return
        if self._demotion_timer is not None:
            self.sim.reschedule(self._demotion_timer,
                                self.inactivity_timeout)
        else:
            self._demotion_timer = self.sim.schedule(
                self.inactivity_timeout, self._demote, name="rrc.demote")

    def warm_up(self) -> None:
        """Bring the radio to CONNECTED immediately (the paper's pings)."""
        trace = self.sim.trace
        if trace.enabled and self.state is not RadioState.CONNECTED:
            trace.emit(self.sim.now, "rrc.state", old=self.state.value,
                       new="connected", reason="warm-up")
        self.state = RadioState.CONNECTED
        self.touch()
        self._flush()

    def _promoted(self) -> None:
        if self.state is not RadioState.PROMOTING:
            return
        self.state = RadioState.CONNECTED
        trace = self.sim.trace
        if trace.enabled:
            trace.emit(self.sim.now, "rrc.state", old="promoting",
                       new="connected", reason="promotion-complete")
        self.touch()
        self._flush()

    def _flush(self) -> None:
        pending, self._pending = self._pending, []
        for action, arg in pending:
            if arg is NO_ARG:
                action()
            else:
                action(arg)

    def _demote(self) -> None:
        self.state = RadioState.IDLE
        self._demotion_timer = None
        trace = self.sim.trace
        if trace.enabled:
            trace.emit(self.sim.now, "rrc.state", old="connected",
                       new="idle", reason="inactivity")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RadioStateMachine {self.state.value}>"

"""Uploads: bulk data in the client-to-server direction.

The paper measures downloads, but its testbed (and this simulator's
MPTCP implementation) is symmetric: each direction has its own data
sequence space, DATA_ACKs and windows.  Uploads exercise the reverse
path -- where the *uplink* rates (a fraction of the downlinks on every
access technology) are the bottleneck, and where a phone's classic
workload is the camera-roll photo backup.

:class:`UploadClient` streams a payload to the server and waits for a
small application-level acknowledgement; :class:`UploadServerSession`
consumes the payload and sends that acknowledgement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.app.http import Transport
from repro.sim.engine import Simulator

#: Size of the server's application-level "stored OK" reply.
ACK_SIZE = 120


@dataclass
class UploadRecord:
    """Timing of one upload, mirroring the download record."""

    size: int
    started_at: float
    established_at: Optional[float] = None
    sent_all_at: Optional[float] = None
    acknowledged_at: Optional[float] = None

    @property
    def complete(self) -> bool:
        return self.acknowledged_at is not None

    @property
    def upload_time(self) -> float:
        """First SYN to the server's application acknowledgement."""
        if self.acknowledged_at is None:
            raise RuntimeError("upload has not completed")
        return self.acknowledged_at - self.started_at


class UploadServerSession:
    """Server side: consume ``expected`` bytes, then acknowledge."""

    def __init__(self, transport: Transport, expected: int) -> None:
        self.transport = transport
        self.expected = expected
        self.received = 0
        self.acknowledged = False
        transport.on_receive = self._on_receive

    def _on_receive(self, nbytes: int) -> None:
        self.received += nbytes
        if not self.acknowledged and self.received >= self.expected:
            self.acknowledged = True
            self.transport.send(ACK_SIZE)
            self.transport.close()


class UploadClient:
    """Client side: push the payload, await the acknowledgement."""

    def __init__(self, sim: Simulator, transport: Transport, size: int,
                 on_complete: Optional[
                     Callable[["UploadRecord"], None]] = None) -> None:
        self.sim = sim
        self.transport = transport
        self.record = UploadRecord(size=size, started_at=sim.now)
        self.on_complete = on_complete
        self._ack_received = 0
        transport.on_established = self._on_established
        transport.on_receive = self._on_receive

    def start(self) -> None:
        self.record.started_at = self.sim.now

    def _on_established(self) -> None:
        self.record.established_at = self.sim.now
        self.transport.send(self.record.size)
        self.record.sent_all_at = self.sim.now  # queued; wire takes time
        self.transport.close()

    def _on_receive(self, nbytes: int) -> None:
        self._ack_received += nbytes
        if (self._ack_received >= ACK_SIZE
                and self.record.acknowledged_at is None):
            self.record.acknowledged_at = self.sim.now
            if self.on_complete is not None:
                self.on_complete(self.record)


#: Expected upload payload preceding the server ACK: the client's
#: stream is just the payload (no request header), so the server
#: session is constructed with the payload size directly.
__all__ = ["ACK_SIZE", "UploadClient", "UploadRecord",
           "UploadServerSession"]

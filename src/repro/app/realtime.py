"""Real-time (interactive) traffic over the simulated transports.

Section 5.2 motivates the out-of-order-delay metric with interactive
applications: "in Facetime or Skype, the maximum tolerable end-to-end
latency is considered to be about 150 ms (one-way network delay plus
the out-of-order delay)".  This module provides that workload: a
constant-rate stream of small frames whose *per-frame delivery
latency* (send to in-order arrival) is measured against the tolerance.

The receiving side sees frames only in order (TCP semantics), so a
frame's latency automatically includes both network delay and any
reorder wait behind a slower path -- exactly the sum the paper
discusses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.sim.engine import Simulator

#: The paper's interactive-latency budget (seconds).
TOLERANCE_150MS = 0.150


@dataclass(frozen=True)
class RealtimeProfile:
    """A constant-bitrate frame stream."""

    name: str
    frame_bytes: int
    interval: float
    frames: int

    @property
    def bitrate_bps(self) -> float:
        return self.frame_bytes * 8.0 / self.interval


#: A VoIP-like stream: 50 frames/s of ~200 B (~80 kbit/s).
VOIP = RealtimeProfile(name="voip", frame_bytes=200, interval=0.02,
                       frames=400)

#: A video-call-like stream: 30 frames/s of ~4 KB (~1 Mbit/s).
VIDEO_CALL = RealtimeProfile(name="video-call", frame_bytes=4096,
                             interval=1.0 / 30.0, frames=240)


class RealtimeStream:
    """Sender side: writes one frame per interval into the transport."""

    def __init__(self, sim: Simulator, transport,
                 profile: RealtimeProfile) -> None:
        self.sim = sim
        self.transport = transport
        self.profile = profile
        self.send_times: List[float] = []
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._send_frame()

    def _send_frame(self) -> None:
        if len(self.send_times) >= self.profile.frames:
            self.transport.close()
            return
        self.send_times.append(self.sim.now)
        self.transport.send(self.profile.frame_bytes)
        self.sim.schedule(self.profile.interval, self._send_frame,
                          name="realtime.frame")

    @property
    def finished_sending(self) -> bool:
        return len(self.send_times) >= self.profile.frames


@dataclass
class RealtimeReport:
    """Per-frame latency statistics for one stream."""

    latencies: List[float] = field(default_factory=list)

    @property
    def frames_delivered(self) -> int:
        return len(self.latencies)

    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def worst_latency(self) -> float:
        return max(self.latencies) if self.latencies else 0.0

    def fraction_within(self, budget: float = TOLERANCE_150MS) -> float:
        """Fraction of frames delivered inside the latency budget."""
        if not self.latencies:
            return 0.0
        within = sum(1 for latency in self.latencies if latency <= budget)
        return within / len(self.latencies)


class RealtimeSink:
    """Receiver side: reconstructs frame boundaries from the in-order
    byte stream and timestamps each completed frame."""

    def __init__(self, sim: Simulator, transport, stream: RealtimeStream,
                 on_finished: Optional[Callable[["RealtimeSink"], None]]
                 = None) -> None:
        self.sim = sim
        self.stream = stream
        self.report = RealtimeReport()
        self.on_finished = on_finished
        self._received = 0
        transport.on_receive = self._on_receive

    def _on_receive(self, nbytes: int) -> None:
        profile = self.stream.profile
        self._received += nbytes
        while (self.report.frames_delivered < len(self.stream.send_times)
               and self._received
               >= (self.report.frames_delivered + 1) * profile.frame_bytes):
            frame_index = self.report.frames_delivered
            send_time = self.stream.send_times[frame_index]
            self.report.latencies.append(self.sim.now - send_time)
        if (self.stream.finished_sending
                and self.report.frames_delivered >= profile.frames
                and self.on_finished is not None):
            callback, self.on_finished = self.on_finished, None
            callback(self)

"""Application-layer workloads.

* :mod:`repro.app.http` -- the wget-style HTTP object download the
  paper uses for every measurement: the client sends a fixed-size
  request; the server answers with the requested number of bytes and
  closes.  Works over a plain TCP endpoint or an MPTCP connection
  (both expose ``send`` / ``close`` / ``on_receive``).
* :mod:`repro.app.video` -- the streaming-video traffic model of
  Section 6 / Table 7: a large prefetch followed by periodic block
  downloads (Netflix and YouTube parameterizations included).
"""

from repro.app.http import (
    REQUEST_SIZE,
    DownloadRecord,
    HttpClient,
    HttpServerSession,
    PlainTcpAcceptor,
)
from repro.app.realtime import (
    TOLERANCE_150MS,
    VIDEO_CALL,
    VOIP,
    RealtimeProfile,
    RealtimeReport,
    RealtimeSink,
    RealtimeStream,
)
from repro.app.video import (
    NETFLIX_ANDROID,
    NETFLIX_IPAD,
    YOUTUBE,
    StreamingProfile,
    VideoSession,
)

__all__ = [
    "REQUEST_SIZE",
    "DownloadRecord",
    "HttpClient",
    "HttpServerSession",
    "PlainTcpAcceptor",
    "StreamingProfile",
    "VideoSession",
    "NETFLIX_ANDROID",
    "NETFLIX_IPAD",
    "YOUTUBE",
    "RealtimeProfile",
    "RealtimeReport",
    "RealtimeSink",
    "RealtimeStream",
    "TOLERANCE_150MS",
    "VOIP",
    "VIDEO_CALL",
]

"""Web page loads: the multi-object workload behind the paper's story.

The introduction motivates finite flows with Web browsing: a page is
not one object but an HTML document plus tens of embedded objects,
"most ... no more than one MB in size, although the tail of the size
distribution is large".  This module models a page as an HTML object
followed by its embedded objects fetched over a persistent connection
(HTTP/1.1 style, sequential) and measures **page load time** -- the
application-level metric a user actually feels.

A :class:`PageProfile` draws object counts and sizes from heavy-tailed
distributions calibrated to the classic Web-measurement literature
(median object ~10-30 KB, a few large images/scripts per page).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.app.http import REQUEST_SIZE, Transport
from repro.sim.engine import Simulator

KB = 1024


@dataclass(frozen=True)
class PageProfile:
    """Distribution of a page's composition."""

    name: str
    html_mean: float = 40 * KB
    html_sigma: float = 0.6       # lognormal sigma on the HTML size
    objects_mean: float = 12.0    # embedded objects per page
    object_median: float = 16 * KB
    object_sigma: float = 1.3     # heavy tail: occasional multi-MB
    object_cap: int = 8 * 1024 * KB

    def draw_page(self, rng: random.Random) -> List[int]:
        """Object sizes: the HTML first, then the embedded objects."""
        import math
        html = max(int(rng.lognormvariate(
            math.log(self.html_mean), self.html_sigma)), 2 * KB)
        count = max(int(rng.expovariate(1.0 / self.objects_mean)), 1)
        objects = [min(max(int(rng.lognormvariate(
            math.log(self.object_median), self.object_sigma)), KB),
            self.object_cap) for _ in range(count)]
        return [html] + objects


#: A typical 2013 news-ish page: ~12 objects, ~400 KB median total.
TYPICAL_PAGE = PageProfile(name="typical")

#: A heavy, media-rich page: more and larger objects.
HEAVY_PAGE = PageProfile(name="heavy", objects_mean=24.0,
                         object_median=32 * KB, object_sigma=1.5)


@dataclass
class PageLoadRecord:
    """Timing of one page load over one connection."""

    sizes: List[int]
    started_at: float
    first_object_at: Optional[float] = None
    completed_at: Optional[float] = None
    objects_loaded: int = 0

    @property
    def total_bytes(self) -> int:
        return sum(self.sizes)

    @property
    def complete(self) -> bool:
        return self.completed_at is not None

    @property
    def page_load_time(self) -> float:
        if self.completed_at is None:
            raise RuntimeError("page load has not completed")
        return self.completed_at - self.started_at

    @property
    def time_to_first_byte(self) -> float:
        if self.first_object_at is None:
            raise RuntimeError("nothing received yet")
        return self.first_object_at - self.started_at


class PageLoader:
    """Client side: fetches a page's objects sequentially over one
    persistent connection (HTTP/1.1 without pipelining).

    The matching server side is an
    :class:`~repro.app.http.HttpServerSession` built with
    :meth:`responder` and ``close_after=None``.
    """

    def __init__(self, sim: Simulator, transport: Transport,
                 sizes: List[int],
                 on_complete: Optional[
                     Callable[["PageLoadRecord"], None]] = None) -> None:
        if not sizes:
            raise ValueError("a page needs at least one object")
        self.sim = sim
        self.transport = transport
        self.record = PageLoadRecord(sizes=list(sizes),
                                     started_at=sim.now)
        self.on_complete = on_complete
        self._received_in_object = 0
        transport.on_established = self._request_next
        transport.on_receive = self._on_receive

    def responder(self) -> Callable[[int], Optional[int]]:
        sizes = list(self.record.sizes)

        def respond(index: int) -> Optional[int]:
            return sizes[index] if index < len(sizes) else None

        return respond

    def _request_next(self) -> None:
        if self.record.objects_loaded >= len(self.record.sizes):
            self.record.completed_at = self.sim.now
            self.transport.close()
            if self.on_complete is not None:
                self.on_complete(self.record)
            return
        self._received_in_object = 0
        self.transport.send(REQUEST_SIZE)

    def _on_receive(self, nbytes: int) -> None:
        # Sequential fetching: exactly one object is outstanding, so
        # arrivals always belong to sizes[objects_loaded].
        if self.record.complete:
            return
        if self.record.first_object_at is None:
            self.record.first_object_at = self.sim.now
        self._received_in_object += nbytes
        current = self.record.sizes[self.record.objects_loaded]
        if self._received_in_object >= current:
            self.record.objects_loaded += 1
            self._request_next()

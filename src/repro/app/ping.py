"""Ping: the paper's radio warm-up probe.

Section 3.2: "we send two ICMP ping packets to our server before each
measurement, and start the measurements immediately after the ping
responses are correctly received to ensure that the cellular antenna
is in the ready state."

The simulator carries only TCP-segment-shaped packets, so ping is
modeled as a minimal echo protocol on a dedicated port: the prober
sends a small datagram-like segment, an :class:`EchoResponder` bound
on the server reflects it, and RTTs are measured per probe.  Sending
the probe exercises the cellular RRC machine exactly like ICMP would:
the first probe triggers promotion and pays the promotion delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.netsim.host import Host
from repro.netsim.packet import Packet
from repro.sim.engine import Simulator
from repro.tcp.segment import Flags, Segment

#: Port conventionally used by the echo responder (RFC 862's echo is 7).
ECHO_PORT = 7

#: Payload bytes of one probe (a standard ping is 56 + 8 header).
PROBE_SIZE = 64


class EchoResponder:
    """Server side: reflects every packet arriving on the echo port."""

    def __init__(self, sim: Simulator, host: Host,
                 port: int = ECHO_PORT) -> None:
        self.sim = sim
        self.host = host
        self.port = port
        self.echoes = 0
        host.bind_listener(port, self)

    def handle_syn(self, packet: Packet, host: Host) -> None:
        # The listener interface delivers SYN-flagged packets; probes
        # are sent with SYN so they demux here without an endpoint.
        segment = packet.segment
        self.echoes += 1
        reply = Segment(src_port=self.port, dst_port=segment.src_port,
                        seq=segment.seq, ack=segment.seq + 1,
                        flags=Flags(syn=True, ack=True),
                        payload_len=segment.payload_len)
        host.send(Packet(packet.dst, packet.src, reply))


@dataclass
class PingResult:
    """Outcome of one probe sequence."""

    rtts: List[float] = field(default_factory=list)
    sent: int = 0

    @property
    def received(self) -> int:
        return len(self.rtts)

    @property
    def all_answered(self) -> bool:
        return self.received == self.sent


class Pinger:
    """Client side: sends N probes and collects the echo RTTs.

    The probes traverse the interface's RRC gate, so the first one
    pays (and absorbs) the promotion delay -- which is the entire
    point of the paper's warm-up procedure.
    """

    def __init__(self, sim: Simulator, host: Host, local_addr: str,
                 remote_addr: str, count: int = 2,
                 interval: float = 0.2, port: int = ECHO_PORT,
                 on_complete: Optional[Callable[[PingResult], None]]
                 = None) -> None:
        self.sim = sim
        self.host = host
        self.local_addr = local_addr
        self.remote_addr = remote_addr
        self.count = count
        self.interval = interval
        self.port = port
        self.on_complete = on_complete
        self.result = PingResult()
        self.local_port = host.ephemeral_port()
        self._send_times: dict = {}
        self._finished = False
        host.register_endpoint(
            (local_addr, self.local_port, remote_addr, port), self)

    def start(self) -> None:
        self._probe(0)

    def _probe(self, index: int) -> None:
        if index >= self.count:
            return
        segment = Segment(src_port=self.local_port, dst_port=self.port,
                          seq=index, flags=Flags(syn=True),
                          payload_len=PROBE_SIZE)
        self._send_times[index] = self.sim.now
        self.result.sent += 1
        self.host.send(Packet(self.local_addr, self.remote_addr, segment))
        self.sim.schedule(self.interval, self._probe, index + 1,
                          name="ping.probe")

    def handle_packet(self, packet: Packet) -> None:
        segment = packet.segment
        sent_at = self._send_times.pop(segment.seq, None)
        if sent_at is None:
            return
        self.result.rtts.append(self.sim.now - sent_at)
        if (not self._finished and self.result.sent >= self.count
                and self.result.all_answered):
            self._finished = True
            if self.on_complete is not None:
                self.on_complete(self.result)


def warm_up_with_pings(testbed, on_ready: Callable[[], None],
                       count: int = 2) -> Pinger:
    """The paper's procedure: ping the server over the cellular path,
    then start the measurement once the replies are in.

    Use with ``TestbedConfig(warm_radio=False)`` so the promotion delay
    is actually exercised (and absorbed) by the probes.
    """
    EchoResponder(testbed.sim, testbed.server)
    pinger = Pinger(testbed.sim, testbed.client, testbed.cellular_addr,
                    testbed.server_addrs[0], count=count,
                    on_complete=lambda result: on_ready())
    pinger.start()
    return pinger

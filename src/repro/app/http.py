"""The wget-over-HTTP workload of the paper's measurements.

Section 3.1: "The client uses wget to retrieve Web objects of
different sizes via all the available paths" from an Apache server on
port 8080 (AT&T's port-80 proxy strips MPTCP options, hence 8080 --
our simulated carriers are proxy-free but we keep the port).

Transport-agnostic: both :class:`repro.tcp.endpoint.TcpEndpoint` and
:class:`repro.core.connection.MptcpConnection` expose ``send(nbytes)``,
``close()`` and the ``on_receive`` / ``on_established`` callbacks this
module needs, so the same client/server session classes drive the
single-path baselines and the multipath runs.

Download time follows the paper's definition exactly: from the moment
the client sends its first SYN (``connect()``) to the arrival of the
last data byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Protocol

from repro.sim.engine import Simulator

#: Bytes in one HTTP GET request (headers included); the response to a
#: request begins once the server has received this many bytes.
REQUEST_SIZE = 180

#: The paper's server port (Apache on 8080, see module docstring).
HTTP_PORT = 8080


class Transport(Protocol):
    """The little facade both TCP and MPTCP objects satisfy."""

    on_receive: Optional[Callable[[int], None]]
    on_established: Optional[Callable[[], None]]

    def send(self, nbytes: int) -> None:  # pragma: no cover - protocol
        ...

    def close(self) -> None:  # pragma: no cover - protocol
        ...


class HttpServerSession:
    """Serves one connection: each full request gets one response.

    ``responder(index)`` returns the size in bytes of the response to
    the ``index``-th request, or ``None`` to refuse (close).  When
    ``close_after`` requests have been answered the server closes the
    connection (single-object downloads close after the first).
    """

    def __init__(self, transport: Transport,
                 responder: Callable[[int], Optional[int]],
                 request_size: int = REQUEST_SIZE,
                 close_after: Optional[int] = 1) -> None:
        self.transport = transport
        self.responder = responder
        self.request_size = request_size
        self.close_after = close_after
        self.requests_served = 0
        self._received = 0
        transport.on_receive = self._on_receive

    @classmethod
    def fixed(cls, transport: Transport, size: int,
              request_size: int = REQUEST_SIZE) -> "HttpServerSession":
        """A server session answering every request with ``size`` bytes."""
        return cls(transport, lambda index: size, request_size=request_size)

    def _on_receive(self, nbytes: int) -> None:
        self._received += nbytes
        while self._received >= self.request_size:
            self._received -= self.request_size
            size = self.responder(self.requests_served)
            if size is None:
                self.transport.close()
                return
            self.requests_served += 1
            self.transport.send(size)
            if (self.close_after is not None
                    and self.requests_served >= self.close_after):
                self.transport.close()
                return


@dataclass
class DownloadRecord:
    """Timing of one object download, per the paper's definition."""

    size: int
    started_at: float = 0.0
    established_at: Optional[float] = None
    completed_at: Optional[float] = None
    bytes_received: int = 0

    @property
    def complete(self) -> bool:
        return self.completed_at is not None

    @property
    def download_time(self) -> float:
        """First SYN to last data byte (seconds)."""
        if self.completed_at is None:
            raise RuntimeError("download has not completed")
        return self.completed_at - self.started_at


class HttpClient:
    """Downloads one object of a known size and records its timing."""

    def __init__(self, sim: Simulator, transport: Transport, size: int,
                 request_size: int = REQUEST_SIZE,
                 on_complete: Optional[
                     Callable[["DownloadRecord"], None]] = None,
                 ) -> None:
        self.sim = sim
        self.transport = transport
        self.request_size = request_size
        self.on_complete = on_complete
        self.record = DownloadRecord(size=size, started_at=sim.now)
        transport.on_established = self._on_established
        transport.on_receive = self._on_receive

    def start(self) -> None:
        """Mark the start time; call immediately before ``connect()``."""
        self.record.started_at = self.sim.now

    def _on_established(self) -> None:
        self.record.established_at = self.sim.now
        self.transport.send(self.request_size)

    def _on_receive(self, nbytes: int) -> None:
        self.record.bytes_received += nbytes
        if (self.record.bytes_received >= self.record.size
                and self.record.completed_at is None):
            self.record.completed_at = self.sim.now
            self.transport.close()
            if self.on_complete is not None:
                self.on_complete(self.record)


class PlainTcpAcceptor:
    """Binds a plain (single-path) TCP listener that serves HTTP.

    For every inbound SYN it creates a server endpoint and attaches an
    :class:`HttpServerSession` with the given responder.
    """

    def __init__(self, sim: Simulator, host, port: int, config,
                 controller_factory: Callable[[], object],
                 responder: Callable[[int], Optional[int]],
                 request_size: int = REQUEST_SIZE) -> None:
        from repro.tcp.endpoint import TcpEndpoint, TcpListener

        self.sessions: List[HttpServerSession] = []

        def accept(packet, accept_host):
            segment = packet.segment
            endpoint = TcpEndpoint(
                sim, accept_host, packet.dst, segment.dst_port,
                packet.src, segment.src_port, config,
                controller_factory(), name="http-server")
            session = HttpServerSession(endpoint, responder,
                                        request_size=request_size)
            self.sessions.append(session)
            endpoint.accept(packet)

        host.bind_listener(port, TcpListener(accept))

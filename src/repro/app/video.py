"""Streaming-video traffic model (Section 6, Table 7).

Rao et al. [CoNEXT'11] and the paper's own device measurements show
that mobile video streaming is a *prefetch* (one large download)
followed by *periodic block* downloads.  Table 7 gives the parameters
the authors measured for Netflix; the text gives YouTube's.  The
profiles below reproduce those numbers; :class:`VideoSession` drives
the request sequence over any transport and records per-block timings
plus playback-stall accounting -- the quantity the paper argues MPTCP's
reorder delay can endanger.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.app.http import REQUEST_SIZE, Transport
from repro.sim.engine import Simulator

MB = 1024 * 1024
KB = 1024


@dataclass(frozen=True)
class StreamingProfile:
    """Prefetch-then-periodic-blocks parameterization.

    Means and standard deviations follow Table 7 (Netflix) and the
    Section 6 text (YouTube).  Sizes in bytes, period in seconds.
    """

    name: str
    prefetch_mean: float
    prefetch_std: float
    block_mean: float
    block_std: float
    period_mean: float
    period_std: float

    def draw_prefetch(self, rng: random.Random) -> int:
        return max(int(rng.gauss(self.prefetch_mean, self.prefetch_std)), KB)

    def draw_block(self, rng: random.Random) -> int:
        return max(int(rng.gauss(self.block_mean, self.block_std)), KB)

    def draw_period(self, rng: random.Random) -> float:
        return max(rng.gauss(self.period_mean, self.period_std), 0.5)


#: Table 7, Android row: prefetch 40.6 +- 0.9 MB, block 5.2 +- 0.2 MB,
#: period 72.0 +- 10.1 s.
NETFLIX_ANDROID = StreamingProfile(
    name="netflix-android",
    prefetch_mean=40.6 * MB, prefetch_std=0.9 * MB,
    block_mean=5.2 * MB, block_std=0.2 * MB,
    period_mean=72.0, period_std=10.1,
)

#: Table 7, iPad row: prefetch 15.0 +- 2.6 MB, block 1.8 +- 0.5 MB,
#: period 10.2 +- 2.7 s.
NETFLIX_IPAD = StreamingProfile(
    name="netflix-ipad",
    prefetch_mean=15.0 * MB, prefetch_std=2.6 * MB,
    block_mean=1.8 * MB, block_std=0.5 * MB,
    period_mean=10.2, period_std=2.7,
)

#: Section 6 text: YouTube prefetches 10-15 MB then periodically
#: transfers blocks of 64 KB-512 KB.
YOUTUBE = StreamingProfile(
    name="youtube",
    prefetch_mean=12.5 * MB, prefetch_std=1.5 * MB,
    block_mean=288 * KB, block_std=128 * KB,
    period_mean=5.0, period_std=1.0,
)

PROFILES = {
    profile.name: profile
    for profile in (NETFLIX_ANDROID, NETFLIX_IPAD, YOUTUBE)
}


@dataclass
class BlockRecord:
    """One transfer (prefetch or periodic block) within a session."""

    kind: str            # "prefetch" or "block"
    size: int
    requested_at: float
    completed_at: Optional[float] = None

    @property
    def download_time(self) -> float:
        if self.completed_at is None:
            raise RuntimeError("block still in flight")
        return self.completed_at - self.requested_at


@dataclass
class SessionSummary:
    """What Table 7 reports, measured from a simulated session."""

    prefetch_bytes: int
    block_bytes_mean: float
    period_mean: float
    blocks: int
    stalls: int


class VideoSession:
    """Drives a prefetch + periodic-block workload over one transport.

    The transport must already have a server session attached that
    answers each :data:`REQUEST_SIZE`-byte request with the next block
    (see :meth:`responder`).  Blocks are requested on a timer; if a
    block has not finished when the next period elapses, the request is
    issued immediately on completion and a *stall* is counted.
    """

    def __init__(self, sim: Simulator, transport: Transport,
                 profile: StreamingProfile, rng: random.Random,
                 n_blocks: int = 5,
                 on_finished: Optional[
                     Callable[["VideoSession"], None]] = None,
                 ) -> None:
        self.sim = sim
        self.transport = transport
        self.profile = profile
        self.rng = rng
        self.n_blocks = n_blocks
        self.on_finished = on_finished
        self.blocks: List[BlockRecord] = []
        self._sizes = [profile.draw_prefetch(rng)]
        self._sizes += [profile.draw_block(rng) for _ in range(n_blocks)]
        self._periods = [profile.draw_period(rng) for _ in range(n_blocks)]
        self._received_in_block = 0
        self._next_due: Optional[float] = None
        self.stalls = 0
        self.finished = False
        transport.on_established = self._request_next
        transport.on_receive = self._on_receive

    def responder(self) -> Callable[[int], Optional[int]]:
        """Server-side responder matched to this session's draws."""
        sizes = list(self._sizes)

        def respond(index: int) -> Optional[int]:
            return sizes[index] if index < len(sizes) else None

        return respond

    # ------------------------------------------------------------------

    def _request_next(self) -> None:
        index = len(self.blocks)
        if index >= len(self._sizes):
            self.finished = True
            self.transport.close()
            if self.on_finished is not None:
                self.on_finished(self)
            return
        kind = "prefetch" if index == 0 else "block"
        self.blocks.append(BlockRecord(kind=kind, size=self._sizes[index],
                                       requested_at=self.sim.now))
        self._received_in_block = 0
        self.transport.send(REQUEST_SIZE)

    def _on_receive(self, nbytes: int) -> None:
        if not self.blocks or self.finished:
            return
        current = self.blocks[-1]
        self._received_in_block += nbytes
        if current.completed_at is None and \
                self._received_in_block >= current.size:
            current.completed_at = self.sim.now
            self._schedule_next()

    def _schedule_next(self) -> None:
        index = len(self.blocks)
        if index > self.n_blocks:
            self._request_next()  # emits the finish path
            return
        # Periods are anchored to the previous request time, as the
        # player's buffer drains in real time.
        period = self._periods[index - 1]
        due = self.blocks[-1].requested_at + period
        if due <= self.sim.now:
            self.stalls += 1
            self._request_next()
        else:
            self.sim.schedule(due - self.sim.now, self._request_next,
                              name="video.next-block")

    # ------------------------------------------------------------------

    def summary(self) -> SessionSummary:
        """Aggregate the session the way Table 7 reports it."""
        completed = [block for block in self.blocks
                     if block.completed_at is not None]
        prefetch = completed[0].size if completed else 0
        periodic = [block for block in completed if block.kind == "block"]
        block_mean = (sum(block.size for block in periodic) / len(periodic)
                      if periodic else 0.0)
        gaps = [later.requested_at - earlier.requested_at
                for earlier, later in zip(self.blocks[1:], self.blocks[2:])]
        period_mean = sum(gaps) / len(gaps) if gaps else 0.0
        return SessionSummary(
            prefetch_bytes=prefetch,
            block_bytes_mean=block_mean,
            period_mean=period_mean,
            blocks=len(periodic),
            stalls=self.stalls,
        )

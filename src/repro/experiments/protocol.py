"""Wire protocol for distributed campaign execution.

The coordinator/worker backend (:mod:`repro.experiments.distributed`)
spans processes *and machines*, so everything on the wire is plain
JSON: a 4-byte big-endian length prefix followed by one UTF-8 JSON
object.  No pickling — a worker built from a different checkout must
fail the version handshake, never deserialize garbage.

Two codecs live here next to the framing:

* :func:`descriptor_to_dict` / :func:`descriptor_from_dict` — a
  :class:`~repro.experiments.runner.RunDescriptor` as JSON.  Campaign
  descriptors are already plain data (the pool backend pickles them);
  the only non-JSON fields are the optional profile *objects*, which
  campaigns never set — a descriptor carrying one is rejected loudly
  rather than silently dropped.
* :func:`result_wrapper` / :func:`result_from_wrapper` — a completed
  :class:`~repro.experiments.runner.RunResult` as the *same*
  content-addressed object the run cache stores on disk
  (``{key, format_version, result}`` at full fidelity), so publishing
  a result over the wire and importing a cache object are one code
  path and one byte format.

The handshake pins both :data:`PROTOCOL_VERSION` (message shapes) and
the storage ``FORMAT_VERSION`` (result/cache semantics): a worker and
coordinator disagreeing on either could violate the byte-identity
guarantee, so they refuse to pair instead.
"""

from __future__ import annotations

import dataclasses
import json
import struct
from typing import Optional, Tuple

from repro.experiments import storage as _storage
from repro.experiments.config import FlowSpec
from repro.experiments.runner import RunDescriptor, RunResult
from repro.experiments.storage import result_from_dict, result_to_dict
from repro.wireless.profiles import TimeOfDay

#: Bump when message shapes change; mismatched peers refuse to pair.
PROTOCOL_VERSION = 1

#: Framing: one message is HEADER(length) + length bytes of JSON.
_HEADER = struct.Struct("!I")

#: A defensive ceiling, far above any real chunk of results (a full
#: fidelity 16 MB-transfer result is a few MB of JSON): a corrupt or
#: hostile length prefix must not trigger a giant allocation.
MAX_MESSAGE_BYTES = 512 * 1024 * 1024


class ProtocolError(RuntimeError):
    """A malformed frame, bad handshake, or mid-message disconnect."""


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------

def send_message(sock, payload: dict) -> None:
    """Send one length-prefixed JSON message (a single ``sendall``)."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    sock.sendall(_HEADER.pack(len(body)) + body)


def _recv_exact(sock, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes, or ``None`` on a clean EOF at a
    message boundary (``count`` unread bytes in)."""
    chunks = []
    got = 0
    while got < count:
        chunk = sock.recv(min(count - got, 1 << 20))
        if not chunk:
            if got:
                raise ProtocolError("connection closed mid-message")
            return None
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_message(sock) -> Optional[dict]:
    """Receive one message; ``None`` on clean EOF between messages."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the "
                            f"{MAX_MESSAGE_BYTES}-byte ceiling")
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed mid-message")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable frame: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError(f"expected a JSON object, got "
                            f"{type(payload).__name__}")
    return payload


def parse_address(text: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)``; bare ``":port"`` binds all
    interfaces, a missing port is an error."""
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    return (host or "0.0.0.0", int(port))


# ----------------------------------------------------------------------
# Descriptor codec
# ----------------------------------------------------------------------

def descriptor_to_dict(descriptor: RunDescriptor) -> dict:
    """One campaign cell as JSON-safe plain data."""
    if descriptor.wifi_profile is not None \
            or descriptor.cell_profile is not None:
        raise ProtocolError(
            "descriptors carrying live profile objects cannot travel "
            "over the wire; campaign descriptors resolve profiles from "
            "(period, path_pair) on the worker side")
    return {
        "index": descriptor.index,
        "spec": dataclasses.asdict(descriptor.spec),
        "size": descriptor.size,
        "seed": descriptor.seed,
        "period": descriptor.period.value,
        "timeout": descriptor.timeout,
        "capture_level": descriptor.capture_level,
        "trace": descriptor.trace,
        "trace_dir": descriptor.trace_dir,
        "metrics": descriptor.metrics,
    }


def descriptor_from_dict(data: dict) -> RunDescriptor:
    """Rebuild a descriptor on the worker side of the wire."""
    return RunDescriptor(
        index=data["index"],
        spec=FlowSpec(**data["spec"]),
        size=data["size"],
        seed=data["seed"],
        period=TimeOfDay(data["period"]),
        timeout=data.get("timeout"),
        capture_level=data.get("capture_level", "metrics-only"),
        trace=data.get("trace", "off"),
        trace_dir=data.get("trace_dir"),
        metrics=data.get("metrics", "off"),
    )


# ----------------------------------------------------------------------
# Result codec (the cache's content-addressed object format)
# ----------------------------------------------------------------------

def result_wrapper(key: str, result: RunResult) -> dict:
    """A completed run as the run cache's on-disk object payload."""
    return {
        "key": key,
        "format_version": _storage.FORMAT_VERSION,
        "result": result_to_dict(result, max_samples=None),
    }


def result_from_wrapper(wrapper: dict) -> RunResult:
    """Decode a published object; full fidelity, byte-exact rows."""
    if wrapper.get("format_version") != _storage.FORMAT_VERSION:
        raise ProtocolError(
            f"result published under format version "
            f"{wrapper.get('format_version')!r}, expected "
            f"{_storage.FORMAT_VERSION}")
    return result_from_dict(wrapper["result"])

"""Rendering: ASCII tables, text 'figures', CSV export.

The benchmarks print the same rows and series the paper's tables and
figures report; these helpers keep the formatting consistent and make
the output easy to diff against EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from repro.experiments.stats import FiveNumber

Cell = Union[str, float, int, None]

_KB = 1024
_MB = 1024 * 1024


def format_bytes(size: int) -> str:
    """'8 KB', '512 KB', '4 MB', matching the paper's size labels."""
    if size >= _MB and size % _MB == 0:
        return f"{size // _MB} MB"
    if size >= _KB and size % _KB == 0:
        return f"{size // _KB} KB"
    return f"{size} B"


def format_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value:.3f}s"


def format_ms(value: Optional[float]) -> str:
    """Seconds -> milliseconds text."""
    if value is None:
        return "-"
    return f"{value * 1000:.1f}"


def format_pct(value: Optional[float], digits: int = 2) -> str:
    """Fraction -> percent text; '~' for negligible, as the tables do."""
    if value is None:
        return "-"
    if 0 < value < 0.0003:
        return "~"
    return f"{value * 100:.{digits}f}"


def format_mean_stderr(mean: float, stderr: float, scale: float = 1.0,
                       digits: int = 2) -> str:
    """'126.01 +- 5.37' in the tables' mean +- standard-error style."""
    return f"{mean * scale:.{digits}f}+-{stderr * scale:.{digits}f}"


def format_five_number(summary: FiveNumber, scale: float = 1.0,
                       digits: int = 3) -> str:
    """Box plot as text: min [q1 | median | q3] max."""
    values = [value * scale for value in summary.as_tuple()]
    return (f"{values[0]:.{digits}f} [{values[1]:.{digits}f} | "
            f"{values[2]:.{digits}f} | {values[3]:.{digits}f}] "
            f"{values[4]:.{digits}f}")


def _cell_text(cell: Cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def render_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]],
                 title: Optional[str] = None) -> str:
    """A fixed-width ASCII table."""
    text_rows = [[_cell_text(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(header.ljust(width)
                            for header, width in zip(headers, widths)))
    lines.append(separator)
    for row in text_rows:
        lines.append(" | ".join(cell.ljust(width)
                                for cell, width in zip(row, widths)))
    return "\n".join(lines)


def write_csv(path: Union[str, Path], headers: Sequence[str],
              rows: Iterable[Sequence[Cell]]) -> None:
    """Export rows (the same ones the tables render) as CSV."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(["" if cell is None else cell for cell in row])


def csv_text(headers: Sequence[str], rows: Iterable[Sequence[Cell]]) -> str:
    """CSV as a string (for stdout piping)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    for row in rows:
        writer.writerow(["" if cell is None else cell for cell in row])
    return buffer.getvalue()

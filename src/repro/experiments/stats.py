"""Statistics used throughout the paper's presentation.

The paper reports three kinds of summaries:

* box-and-whisker plots (median, quartiles, min/max) for download
  times -- :func:`five_number`;
* "sample mean +- standard error" for loss rates, RTTs and OFO delays
  (Tables 2-6) -- :func:`mean_stderr`;
* complementary CDFs on log axes for RTT and OFO-delay tails
  (Figures 12/13) -- :func:`ccdf`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


def quantile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of unsorted ``samples``.

    ``q`` in [0, 1].  Matches numpy's default ('linear') method.
    """
    if not samples:
        raise ValueError("quantile of empty sample set")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile fraction {q!r} outside [0, 1]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return ordered[lower]
    weight = position - lower
    value = ordered[lower] * (1 - weight) + ordered[upper] * weight
    # Guard against float rounding pushing the interpolation outside
    # its bracket (observable with denormal inputs).
    return min(max(value, ordered[lower]), ordered[upper])


@dataclass(frozen=True)
class FiveNumber:
    """Box-and-whisker summary: whiskers at min/max as in the paper."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    count: int

    def as_tuple(self) -> Tuple[float, float, float, float, float]:
        return (self.minimum, self.q1, self.median, self.q3, self.maximum)


def five_number(samples: Sequence[float]) -> FiveNumber:
    """The paper's box plot: quartiles plus min/max whiskers."""
    if not samples:
        raise ValueError("five_number of empty sample set")
    return FiveNumber(
        minimum=min(samples),
        q1=quantile(samples, 0.25),
        median=quantile(samples, 0.5),
        q3=quantile(samples, 0.75),
        maximum=max(samples),
        count=len(samples),
    )


def mean_stderr(samples: Sequence[float]) -> Tuple[float, float]:
    """Sample mean and standard error of the mean.

    Returns ``(mean, 0.0)`` for a single sample (no spread estimate).
    """
    if not samples:
        raise ValueError("mean_stderr of empty sample set")
    n = len(samples)
    mean = sum(samples) / n
    if n == 1:
        return mean, 0.0
    variance = sum((value - mean) ** 2 for value in samples) / (n - 1)
    return mean, math.sqrt(variance / n)


def ccdf(samples: Sequence[float]) -> List[Tuple[float, float]]:
    """Complementary CDF points: (value, P[X > value]).

    One point per distinct sample value, ascending.  Suitable for the
    log-log tail plots of Figures 12 and 13.
    """
    if not samples:
        return []
    ordered = sorted(samples)
    n = len(ordered)
    points: List[Tuple[float, float]] = []
    index = 0
    while index < n:
        value = ordered[index]
        while index < n and ordered[index] == value:
            index += 1
        points.append((value, (n - index) / n))
    return points


def ccdf_fraction_above(samples: Sequence[float], threshold: float) -> float:
    """P[X > threshold] -- e.g. 'packets with OFO delay above 150 ms'."""
    if not samples:
        return 0.0
    return sum(1 for value in samples if value > threshold) / len(samples)


def jain_fairness(allocations: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 is perfectly fair, 1/n is worst.

    The standard metric for "does the MPTCP flow leave the background
    flow its share?" -- used by the fairness extension.
    """
    if not allocations:
        raise ValueError("jain_fairness of an empty allocation set")
    if any(value < 0 for value in allocations):
        raise ValueError("allocations must be non-negative")
    peak = max(allocations)
    if peak == 0:
        return 1.0  # everyone got zero: vacuously fair
    # The index is scale-invariant; normalizing by the peak keeps the
    # squares away from subnormal underflow (squaring ~1e-159 loses
    # precision and can push the ratio above 1).
    scaled = [value / peak for value in allocations]
    total = sum(scaled)
    squares = sum(value * value for value in scaled)
    return (total * total) / (len(allocations) * squares)


#: Two-sided 97.5% t quantiles for df = 1..30 (then the normal 1.96).
_T_975 = (12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
          2.262, 2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
          2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
          2.060, 2.056, 2.052, 2.048, 2.045, 2.042)


def confidence_interval_95(samples: Sequence[float]
                           ) -> Tuple[float, float]:
    """Two-sided 95% confidence interval for the mean (Student t)."""
    if len(samples) < 2:
        raise ValueError("need at least two samples for an interval")
    mean, stderr = mean_stderr(samples)
    df = len(samples) - 1
    t = _T_975[df - 1] if df <= len(_T_975) else 1.96
    return mean - t * stderr, mean + t * stderr


def ccdf_at_fractions(samples: Sequence[float],
                      fractions: Iterable[float]) -> List[Tuple[float, float]]:
    """Inverse view: for each survival fraction, the threshold value.

    Useful to tabulate a CCDF at fixed probabilities (a text rendering
    of Figures 12/13): returns ``(fraction, value)`` pairs where
    ``P[X > value] ~= fraction``.
    """
    if not samples:
        return [(fraction, float("nan")) for fraction in fractions]
    return [(fraction, quantile(samples, min(max(1.0 - fraction, 0.0), 1.0)))
            for fraction in fractions]

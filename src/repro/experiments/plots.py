"""Text-mode figures: box-and-whisker plots and CCDF charts.

The paper's figures are box plots and log-scale CCDFs; these renderers
draw recognisable ASCII versions in the terminal so `repro fig2 --plot`
gives the *shape* at a glance without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.experiments.stats import FiveNumber


def _scale(value: float, low: float, high: float, width: int) -> int:
    """Map value in [low, high] to a column in [0, width - 1]."""
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(max(int(round(position * (width - 1))), 0), width - 1)


def render_boxplot(rows: Sequence[Tuple[str, FiveNumber]],
                   width: int = 60,
                   unit: str = "s") -> str:
    """Horizontal box-and-whisker plot, one labelled row per summary.

    ``|`` marks whisker ends, ``[`` / ``]`` the quartiles, ``*`` the
    median; ``-`` fills the whiskers and ``=`` the box.
    """
    if not rows:
        return "(no data)"
    label_width = max(len(label) for label, _ in rows)
    low = min(summary.minimum for _, summary in rows)
    high = max(summary.maximum for _, summary in rows)
    lines: List[str] = []
    for label, summary in rows:
        canvas = [" "] * width
        left = _scale(summary.minimum, low, high, width)
        q1 = _scale(summary.q1, low, high, width)
        median = _scale(summary.median, low, high, width)
        q3 = _scale(summary.q3, low, high, width)
        right = _scale(summary.maximum, low, high, width)
        for column in range(left, right + 1):
            canvas[column] = "-"
        for column in range(q1, q3 + 1):
            canvas[column] = "="
        canvas[left] = "|"
        canvas[right] = "|"
        canvas[q1] = "["
        canvas[q3] = "]"
        canvas[median] = "*"
        lines.append(f"{label.rjust(label_width)} {''.join(canvas)} "
                     f"{summary.median:.3g}{unit}")
    axis = (f"{' ' * label_width} {low:.3g}{unit}"
            f"{' ' * max(width - 12, 1)}{high:.3g}{unit}")
    lines.append(axis)
    return "\n".join(lines)


def render_ccdf(series: Dict[str, Sequence[Tuple[float, float]]],
                width: int = 64, height: int = 16,
                log_x: bool = True,
                x_unit: str = "ms") -> str:
    """A CCDF chart: one symbol per series, log-x by default.

    ``series`` maps label -> [(value, survival_fraction), ...], the
    output of :func:`repro.experiments.stats.ccdf`.
    """
    points = [(value, fraction)
              for data in series.values() for value, fraction in data
              if fraction > 0 and value > 0]
    if not points:
        return "(no data)"
    xs = [value for value, _ in points]
    x_low, x_high = min(xs), max(xs)
    if log_x:
        x_low, x_high = math.log10(x_low), math.log10(x_high)
    grid = [[" "] * width for _ in range(height)]
    symbols = "*o+x#@%&"
    legend: List[str] = []
    for index, (label, data) in enumerate(sorted(series.items())):
        symbol = symbols[index % len(symbols)]
        legend.append(f"{symbol} {label}")
        for value, fraction in data:
            if fraction <= 0 or value <= 0:
                continue
            x = math.log10(value) if log_x else value
            column = _scale(x, x_low, x_high, width)
            # y axis: survival 1.0 at top, ~0 at bottom (log scale).
            y_fraction = -math.log10(max(fraction, 1e-3)) / 3.0
            row = _scale(y_fraction, 0.0, 1.0, height)
            grid[row][column] = symbol
    lines = ["P[X>x] (1.0 top, 0.001 bottom, log scale)"]
    lines += ["  |" + "".join(row) for row in grid]
    low_text = 10 ** x_low if log_x else x_low
    high_text = 10 ** x_high if log_x else x_high
    lines.append("  +" + "-" * width)
    lines.append(f"   {low_text:.3g}{x_unit}"
                 f"{' ' * max(width - 16, 1)}{high_text:.3g}{x_unit}"
                 f"{' (log x)' if log_x else ''}")
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)


def boxplot_from_samples(
        labelled_samples: Sequence[Tuple[str, Sequence[float]]],
        width: int = 60, unit: str = "s") -> str:
    """Convenience: five-number each sample set, then render."""
    from repro.experiments.stats import five_number
    rows = [(label, five_number(samples))
            for label, samples in labelled_samples if samples]
    return render_boxplot(rows, width=width, unit=unit)

"""Persisting measurement results.

A measurement study accumulates runs over days (the paper's campaigns
span March 20 - May 7); this module serializes :class:`RunResult`
objects as JSON lines so campaigns can be saved, reloaded, merged
across sessions, and re-aggregated by the same row extractors that
consume fresh results.

RTT sample lists can be large (tens of thousands of packets for a
32 MB transfer); ``max_samples`` thins them to evenly spaced quantiles
so stored files stay manageable while CCDF shapes — including the
exact minimum and maximum — survive.  Since format version 2, thinned
sample lists are *sorted quantile sketches*, not time series: temporal
order is deliberately traded for exact min/max retention.  (Version-1
files, whose thinned lists were time-ordered stride subsamples missing
the maximum, are still readable; every shipped consumer — CCDF,
quantile, mean — is order-insensitive.)

:class:`ResultJournal` is the resume cache behind parallel campaigns:
completed runs are streamed to a JSON-lines file keyed by
``(spec, size, seed, period)``, and an interrupted or re-invoked
campaign skips cells already recorded there.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import warnings

try:
    import fcntl
except ImportError:  # non-POSIX platform: advisory locking disabled
    fcntl = None
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.experiments.config import FlowSpec
from repro.experiments.runner import RunResult, descriptor_key
from repro.trace.analyzer import FlowAnalysis
from repro.trace.metrics import ConnectionMetrics
from repro.wireless.profiles import TimeOfDay

FORMAT_VERSION = 2

#: Version 1 differs only in thinning semantics (time-ordered stride
#: subsamples instead of sorted quantile sketches); structurally the
#: rows are identical, so old files stay loadable.
_READABLE_VERSIONS = frozenset({1, FORMAT_VERSION})


def _thin(samples: List[float], max_samples: Optional[int]) -> List[float]:
    """Thin a sample list to ``max_samples`` evenly spaced quantiles.

    Sorting first turns stride selection into a quantile sketch whose
    first and last picks are exactly the minimum and the maximum.  A
    naive ``samples[int(i * stride)]`` stride starts at index 0 and
    never visits the final index, silently dropping the largest sample
    — which is precisely the CCDF tail the paper plots in Figures
    12/13.
    """
    if max_samples is None or len(samples) <= max_samples:
        return list(samples)
    ordered = sorted(samples)
    last = len(ordered) - 1
    if max_samples == 1:
        return [ordered[last]]
    step = last / (max_samples - 1)
    return [ordered[min(last, round(index * step))]
            for index in range(max_samples)]


def _analysis_to_dict(analysis: FlowAnalysis,
                      max_samples: Optional[int]) -> dict:
    return {
        "local": list(analysis.local),
        "remote": list(analysis.remote),
        "data_packets_sent": analysis.data_packets_sent,
        "retransmitted_packets": analysis.retransmitted_packets,
        "payload_bytes": analysis.payload_bytes,
        "rtt_samples": _thin(analysis.rtt_samples, max_samples),
        "first_packet_time": analysis.first_packet_time,
        "last_packet_time": analysis.last_packet_time,
        "handshake_rtt": analysis.handshake_rtt,
    }


def _analysis_from_dict(data: dict) -> FlowAnalysis:
    analysis = FlowAnalysis(local=tuple(data["local"]),
                            remote=tuple(data["remote"]))
    analysis.data_packets_sent = data["data_packets_sent"]
    analysis.retransmitted_packets = data["retransmitted_packets"]
    analysis.payload_bytes = data["payload_bytes"]
    analysis.rtt_samples = list(data["rtt_samples"])
    analysis.first_packet_time = data["first_packet_time"]
    analysis.last_packet_time = data["last_packet_time"]
    analysis.handshake_rtt = data["handshake_rtt"]
    return analysis


def result_to_dict(result: RunResult,
                   max_samples: Optional[int] = 2000) -> dict:
    """Serialize one run (thinning long sample lists)."""
    metrics = result.metrics
    return {
        "version": FORMAT_VERSION,
        "spec": dataclasses.asdict(result.spec),
        "size": result.size,
        "seed": result.seed,
        "period": result.period.value,
        "completed": result.completed,
        "download_time": result.download_time,
        "established_at": result.established_at,
        "subflow_count": result.subflow_count,
        "world": result.world,
        "obs_metrics": result.obs_metrics,
        "metrics": {
            "download_time": metrics.download_time,
            "bytes_received": metrics.bytes_received,
            "cellular_fraction": metrics.cellular_fraction,
            "ofo_delays": _thin(metrics.ofo_delays, max_samples),
            "fallback": metrics.fallback,
            "per_path": {
                path: _analysis_to_dict(analysis, max_samples)
                for path, analysis in metrics.per_path.items()},
        },
    }


def result_from_dict(data: dict) -> RunResult:
    """Rebuild a run from its serialized form."""
    if data.get("version") not in _READABLE_VERSIONS:
        raise ValueError(
            f"unsupported result format version {data.get('version')!r}")
    metrics_data = data["metrics"]
    metrics = ConnectionMetrics(
        download_time=metrics_data["download_time"],
        bytes_received=metrics_data["bytes_received"],
        cellular_fraction=metrics_data["cellular_fraction"],
        per_path={path: _analysis_from_dict(analysis)
                  for path, analysis in metrics_data["per_path"].items()},
        ofo_delays=list(metrics_data["ofo_delays"]),
        fallback=metrics_data.get("fallback"),  # absent in old files
    )
    return RunResult(
        spec=FlowSpec(**data["spec"]),
        size=data["size"],
        seed=data["seed"],
        period=TimeOfDay(data["period"]),
        completed=data["completed"],
        download_time=data["download_time"],
        metrics=metrics,
        established_at=data["established_at"],
        subflow_count=data["subflow_count"],
        world=data.get("world"),  # absent in pre-world files
        obs_metrics=data.get("obs_metrics"),  # absent in pre-metrics files
    )


def _write_lines(handle, results: Iterable[RunResult],
                 max_samples: Optional[int]) -> int:
    count = 0
    for result in results:
        json.dump(result_to_dict(result, max_samples), handle,
                  separators=(",", ":"))
        handle.write("\n")
        count += 1
    return count


def save_results(path: Union[str, Path], results: Iterable[RunResult],
                 max_samples: Optional[int] = 2000,
                 append: bool = False) -> int:
    """Write results as JSON lines; returns the count written.

    Full (non-append) saves go through a temp file and ``os.replace``
    so a crash mid-write leaves the previous file intact instead of a
    truncated one that loses every prior row.
    """
    path = Path(path)
    if append:
        with open(path, "a") as handle:
            count = _write_lines(handle, results, max_samples)
            handle.flush()
        return count
    fd, tmp_name = tempfile.mkstemp(dir=path.parent or Path("."),
                                    prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            count = _write_lines(handle, results, max_samples)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return count


def _scan_results(path: Union[str, Path]) -> Tuple[List[RunResult], int]:
    """Parse a JSON-lines results file, tolerating a truncated tail.

    Returns ``(results, good_bytes)`` where ``good_bytes`` is the byte
    offset just past the last fully parsed line — the safe point to
    truncate to before appending more records.  A malformed *final*
    line — the signature of a writer killed mid-append — is skipped
    with a warning so the intact rows before it survive; corruption
    anywhere else still raises.
    """
    with open(path, "rb") as handle:
        raw = handle.read()
    lines = raw.splitlines(keepends=True)
    results: List[RunResult] = []
    offset = 0
    good = 0
    for lineno, line in enumerate(lines):
        offset += len(line)
        stripped = line.strip()
        if not stripped:
            good = offset
            continue
        try:
            data = json.loads(stripped)
        except json.JSONDecodeError:
            trailing = all(not later.strip()
                           for later in lines[lineno + 1:])
            if trailing:
                warnings.warn(
                    f"{path}: skipping truncated trailing line "
                    f"{lineno + 1} (interrupted write)", RuntimeWarning)
                break
            raise
        results.append(result_from_dict(data))
        good = offset
    return results, good


def load_results(path: Union[str, Path]) -> List[RunResult]:
    """Read a JSON-lines results file back into RunResult objects.

    A malformed *final* line — the signature of a writer killed
    mid-append — is skipped with a warning so the intact rows before it
    survive; corruption anywhere else still raises.
    """
    results, _ = _scan_results(path)
    return results


def merge_results(*paths: Union[str, Path]) -> List[RunResult]:
    """Concatenate several results files (multi-day campaigns)."""
    merged: List[RunResult] = []
    for path in paths:
        merged.extend(load_results(path))
    return merged


class JournalLockedError(RuntimeError):
    """Another live writer holds the journal's advisory lock."""


class ResultJournal:
    """Append-only resume cache of completed campaign cells.

    Each completed run is streamed to a JSON-lines file keyed by
    :func:`repro.experiments.runner.descriptor_key` — ``(spec, size,
    seed, period)`` — and flushed to disk immediately, so an
    interrupted campaign loses at most the run in flight.

    The journal is the *per-campaign crash-resume* layer; the
    *cross-campaign* layer is :class:`repro.cache.RunCache`.  Both are
    thin adapters over the same :func:`descriptor_key` function (see
    :meth:`key_of`), so a journal-resumed cell and a cache-hit cell can
    never disagree about which plan position they restore.  Re-opening
    the journal restores every completed cell; a partial trailing line
    left by a mid-write crash is truncated away on open, so subsequent
    appends land on a clean line boundary and the file stays loadable.

    Rows are stored at full fidelity (``max_samples=None``) by default:
    a resumed campaign must hand back *exactly* what a fresh run would
    compute, or the serial-equals-parallel determinism guarantee breaks.
    """

    def __init__(self, path: Union[str, Path],
                 max_samples: Optional[int] = None) -> None:
        self.path = Path(path)
        self.max_samples = max_samples
        self._results: Dict[str, RunResult] = {}
        # Open (and lock) eagerly, *before* the recovery scan: an
        # unwritable journal path must fail before any simulation work
        # is spent, and a second live appender must be rejected before
        # either process can truncate or append under the other.
        self._handle = open(self.path, "a")
        self._take_lock()
        unterminated = False
        if self.path.stat().st_size > 0:
            results, good = _scan_results(self.path)
            for result in results:
                self._results[self.key_of(result)] = result
            # A truncated tail must be cut off before appending — the
            # next record would otherwise concatenate onto the partial
            # line, corrupting the journal for every later load.
            if good < self.path.stat().st_size:
                os.truncate(self.path, good)
            # A valid last line missing its newline (crash between the
            # JSON text and the "\n") needs the newline restored, or
            # the first append glues onto it.
            if good > 0:
                with open(self.path, "rb") as handle:
                    handle.seek(good - 1)
                    unterminated = handle.read(1) != b"\n"
        #: Cells restored from a previous invocation.
        self.restored = len(self._results)
        if unterminated:
            self._handle.write("\n")
            self._handle.flush()

    def _take_lock(self) -> None:
        """Exclusive advisory ``flock`` for the journal's lifetime.

        Multi-host resume can point two campaign invocations at the
        same journal on a shared results directory; two live
        appenders would interleave partial lines and race the
        recovery truncation.  The lock is tied to the append handle
        (released automatically by :meth:`close` or process death —
        a SIGKILLed holder never wedges the file) and is skipped on
        platforms without ``fcntl``.
        """
        if fcntl is None:
            return
        try:
            fcntl.flock(self._handle.fileno(),
                        fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            self._handle.close()
            self._handle = None
            raise JournalLockedError(
                f"journal {self.path} is held by another live writer; "
                f"concurrent appenders would corrupt it — wait for the "
                f"other campaign or point --resume elsewhere") from None

    @staticmethod
    def key_of(result: RunResult) -> str:
        """The journal key of a completed run — by construction the
        same string the run cache keys on."""
        return descriptor_key(result.spec, result.size,
                              result.seed, result.period)

    def __contains__(self, key: str) -> bool:
        return key in self._results

    def __len__(self) -> int:
        return len(self._results)

    def get(self, key: str) -> Optional[RunResult]:
        return self._results.get(key)

    def record(self, result: RunResult) -> None:
        """Persist one completed run (idempotent per key)."""
        key = self.key_of(result)
        if key in self._results:
            return
        if self._handle is None:
            raise ValueError(f"journal {self.path} is closed")
        json.dump(result_to_dict(result, self.max_samples), self._handle,
                  separators=(",", ":"))
        self._handle.write("\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._results[key] = result

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResultJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

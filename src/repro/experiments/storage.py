"""Persisting measurement results.

A measurement study accumulates runs over days (the paper's campaigns
span March 20 - May 7); this module serializes :class:`RunResult`
objects as JSON lines so campaigns can be saved, reloaded, merged
across sessions, and re-aggregated by the same row extractors that
consume fresh results.

RTT sample lists can be large (tens of thousands of packets for a
32 MB transfer); ``max_samples`` thins them with a deterministic
stride so stored files stay manageable while CCDF shapes survive.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.experiments.config import FlowSpec
from repro.experiments.runner import RunResult
from repro.trace.analyzer import FlowAnalysis
from repro.trace.metrics import ConnectionMetrics
from repro.wireless.profiles import TimeOfDay

FORMAT_VERSION = 1


def _thin(samples: List[float], max_samples: Optional[int]) -> List[float]:
    if max_samples is None or len(samples) <= max_samples:
        return list(samples)
    stride = len(samples) / max_samples
    return [samples[int(index * stride)] for index in range(max_samples)]


def _analysis_to_dict(analysis: FlowAnalysis,
                      max_samples: Optional[int]) -> dict:
    return {
        "local": list(analysis.local),
        "remote": list(analysis.remote),
        "data_packets_sent": analysis.data_packets_sent,
        "retransmitted_packets": analysis.retransmitted_packets,
        "payload_bytes": analysis.payload_bytes,
        "rtt_samples": _thin(analysis.rtt_samples, max_samples),
        "first_packet_time": analysis.first_packet_time,
        "last_packet_time": analysis.last_packet_time,
        "handshake_rtt": analysis.handshake_rtt,
    }


def _analysis_from_dict(data: dict) -> FlowAnalysis:
    analysis = FlowAnalysis(local=tuple(data["local"]),
                            remote=tuple(data["remote"]))
    analysis.data_packets_sent = data["data_packets_sent"]
    analysis.retransmitted_packets = data["retransmitted_packets"]
    analysis.payload_bytes = data["payload_bytes"]
    analysis.rtt_samples = list(data["rtt_samples"])
    analysis.first_packet_time = data["first_packet_time"]
    analysis.last_packet_time = data["last_packet_time"]
    analysis.handshake_rtt = data["handshake_rtt"]
    return analysis


def result_to_dict(result: RunResult,
                   max_samples: Optional[int] = 2000) -> dict:
    """Serialize one run (thinning long sample lists)."""
    metrics = result.metrics
    return {
        "version": FORMAT_VERSION,
        "spec": dataclasses.asdict(result.spec),
        "size": result.size,
        "seed": result.seed,
        "period": result.period.value,
        "completed": result.completed,
        "download_time": result.download_time,
        "established_at": result.established_at,
        "subflow_count": result.subflow_count,
        "metrics": {
            "download_time": metrics.download_time,
            "bytes_received": metrics.bytes_received,
            "cellular_fraction": metrics.cellular_fraction,
            "ofo_delays": _thin(metrics.ofo_delays, max_samples),
            "per_path": {
                path: _analysis_to_dict(analysis, max_samples)
                for path, analysis in metrics.per_path.items()},
        },
    }


def result_from_dict(data: dict) -> RunResult:
    """Rebuild a run from its serialized form."""
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported result format version {data.get('version')!r}")
    metrics_data = data["metrics"]
    metrics = ConnectionMetrics(
        download_time=metrics_data["download_time"],
        bytes_received=metrics_data["bytes_received"],
        cellular_fraction=metrics_data["cellular_fraction"],
        per_path={path: _analysis_from_dict(analysis)
                  for path, analysis in metrics_data["per_path"].items()},
        ofo_delays=list(metrics_data["ofo_delays"]),
    )
    return RunResult(
        spec=FlowSpec(**data["spec"]),
        size=data["size"],
        seed=data["seed"],
        period=TimeOfDay(data["period"]),
        completed=data["completed"],
        download_time=data["download_time"],
        metrics=metrics,
        established_at=data["established_at"],
        subflow_count=data["subflow_count"],
    )


def save_results(path: Union[str, Path], results: Iterable[RunResult],
                 max_samples: Optional[int] = 2000,
                 append: bool = False) -> int:
    """Write results as JSON lines; returns the count written."""
    mode = "a" if append else "w"
    count = 0
    with open(path, mode) as handle:
        for result in results:
            json.dump(result_to_dict(result, max_samples), handle,
                      separators=(",", ":"))
            handle.write("\n")
            count += 1
    return count


def load_results(path: Union[str, Path]) -> List[RunResult]:
    """Read a JSON-lines results file back into RunResult objects."""
    results: List[RunResult] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                results.append(result_from_dict(json.loads(line)))
    return results


def merge_results(*paths: Union[str, Path]) -> List[RunResult]:
    """Concatenate several results files (multi-day campaigns)."""
    merged: List[RunResult] = []
    for path in paths:
        merged.extend(load_results(path))
    return merged

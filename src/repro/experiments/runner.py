"""Running measurements: one download, or a whole randomized campaign.

:class:`Measurement` reproduces one row of the paper's methodology
(Section 3.2): build a fresh environment, warm the cellular radio (the
paper's pre-measurement pings), start tcpdump at both ends, download
one object over the configured transport, and extract the metrics.

:class:`Campaign` reproduces the study structure: a matrix of
configurations x file sizes x repetitions across day periods, with the
*order randomized per round* exactly as the paper does to decorrelate
temporal effects.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.app.http import HTTP_PORT, HttpClient, HttpServerSession, \
    PlainTcpAcceptor
from repro.core.connection import MptcpConnection, MptcpListener
from repro.core.coupling import RenoController
from repro.experiments.config import FlowSpec
from repro.perf import NULL_INSTRUMENTATION
from repro.sim.rng import derive_seed
from repro.testbed import Testbed, TestbedConfig
from repro.trace.capture import CaptureLevel, PacketCapture
from repro.trace.metrics import ConnectionMetrics, connection_metrics
from repro.wireless.profiles import TimeOfDay

#: Events budget per data packet (handshake, data, ack, timers...), a
#: runaway guard for deadlocked runs rather than a tight bound.
_EVENTS_PER_PACKET = 60


def descriptor_key(spec: FlowSpec, size: int, seed: int,
                   period: TimeOfDay) -> str:
    """The canonical identity of one campaign cell.

    Built from the spec's full :attr:`FlowSpec.identity` so ablation
    specs sharing a label never collide.  This single function keys
    *both* persistence layers — the per-campaign resume journal
    (:class:`repro.experiments.storage.ResultJournal`) and the
    cross-campaign run cache (:class:`repro.cache.RunCache`) — so the
    two can never disagree about which cell a stored result belongs
    to.  The cache additionally folds the storage
    ``FORMAT_VERSION`` into its on-disk digest; the journal does not
    need to, because a journal file never outlives the campaign
    invocation cycle the way the shared cache does.
    """
    return f"{spec.identity}|{size}|{seed}|{period.value}"


#: Backwards-compatible alias (the journal grew this name first).
run_key = descriptor_key


@dataclass
class RunResult:
    """Everything one measurement yields."""

    spec: FlowSpec
    size: int
    seed: int
    period: TimeOfDay
    completed: bool
    download_time: Optional[float]
    metrics: ConnectionMetrics
    established_at: Optional[float] = None
    subflow_count: int = 0
    #: Shared-world background-traffic summary (flows started /
    #: completed, goodput, Jain index, ...) when the spec names a
    #: world; ``None`` for stand-alone runs.
    world: Optional[dict] = None
    #: Snapshot of the run's :class:`repro.obs.metrics.MetricsRegistry`
    #: (counters / gauges / histograms) when metrics were enabled;
    #: ``None`` otherwise.  Purely observational — never feeds back
    #: into results.
    obs_metrics: Optional[dict] = None

    @property
    def key(self) -> Tuple[FlowSpec, int]:
        return (self.spec, self.size)


class Measurement:
    """One object download in a fresh simulated environment."""

    def __init__(self, spec: FlowSpec, size: int, seed: int = 0,
                 period: TimeOfDay = TimeOfDay.AFTERNOON,
                 timeout: Optional[float] = None,
                 wifi_profile=None, cell_profile=None,
                 capture_level=CaptureLevel.METRICS_ONLY,
                 trace: str = "off", trace_path: Optional[str] = None,
                 trace_ring: int = 4096,
                 metrics: str = "off") -> None:
        self.spec = spec
        self.size = size
        self.seed = seed
        self.period = period
        self.timeout = timeout
        self.wifi_profile = wifi_profile
        self.cell_profile = cell_profile
        #: Capture fidelity for this run.  Campaigns only read the
        #: aggregate :class:`ConnectionMetrics`, so the default streams
        #: metrics without materializing per-packet records; pass
        #: ``"full"`` to keep the captures for DSS-level analysis.
        self.capture_level = CaptureLevel.coerce(capture_level)
        #: Protocol-event tracing mode: ``"off"`` (the null bus, free),
        #: ``"ring"`` (in-memory flight recorder, dumped to
        #: ``trace_path`` when the run raises), or ``"jsonl"`` (stream
        #: every event to ``trace_path``).  Tracing is passive: the
        #: metrics and the simulation are byte-identical in all modes.
        self.trace = trace
        self.trace_path = trace_path
        self.trace_ring = trace_ring
        #: Metrics mode: ``"off"`` (the null registry, free) or
        #: ``"on"`` (aggregate counters/histograms, snapshotted onto
        #: :attr:`RunResult.obs_metrics`).  Passive, like tracing.
        self.metrics = metrics
        #: The bus installed for the last :meth:`run` (query its
        #: retained events with ``trace_bus.events(...)``).
        self.trace_bus = None
        #: Where the flight recorder landed, when a run raised.
        self.flight_dump_path: Optional[str] = None

    def run(self, instrumentation=None) -> RunResult:
        inst = (instrumentation if instrumentation is not None
                else NULL_INSTRUMENTATION)
        spec = self.spec
        with inst.phase("setup"):
            wifi_profile, cell_profile = self._path_pair_profiles()
            testbed = Testbed(TestbedConfig(
                carrier=spec.carrier, wifi=spec.wifi,
                server_interfaces=spec.server_interfaces,
                period=self.period, seed=self.seed,
                wifi_profile=wifi_profile,
                cell_profile=cell_profile))
            trace_bus = self._install_trace(testbed)
            metrics_registry = self._install_metrics(testbed)
            server_capture = PacketCapture(testbed.server,
                                           level=self.capture_level)
            # The client side only feeds download time and per-path
            # byte shares, never sender-side flow analysis.
            client_capture = PacketCapture(testbed.client,
                                           level=self.capture_level,
                                           analyze_senders=False)
            self._install_middlebox(testbed)

            if spec.mode == "sp":
                client, connection = self._start_single_path(testbed)
            else:
                client, connection = self._start_mptcp(testbed)
            world = self._start_world(testbed, client)
            self._install_failure(testbed, connection)

        timeout = self.timeout
        if timeout is None:
            # Generous: even Sprint 3G at a deeply faded ~200 kbit/s
            # finishes within this, and stalls return early anyway.
            timeout = 120.0 + self.size / 12_500.0
        max_events = 200_000 + (self.size // 1448) * _EVENTS_PER_PACKET
        if world is not None:
            # Background contention stretches the foreground transfer
            # (residual capacity floors at 2% of nominal) and the
            # fluid kernel adds its own arrival/completion events.
            timeout *= 4.0
            max_events += 2_000_000
        try:
            with inst.phase("simulate"):
                testbed.run(until=timeout, max_events=max_events)
            inst.observe_simulator(testbed.sim)

            record = client.record
            ofo = []
            subflow_count = 0
            if connection is not None:
                ofo = connection.receive_buffer.metrics.delays()
                subflow_count = len(connection.subflows)
            with inst.phase("extract"):
                metrics = connection_metrics(server_capture,
                                             client_capture,
                                             ofo_delays=ofo)
            if connection is not None:
                metrics.fallback = connection.fallback_mode or "none"
            if record.complete:
                # Prefer the app-level timing (identical by
                # construction, but robust if trailing control packets
                # arrive later).
                metrics.download_time = record.download_time
            return RunResult(
                spec=spec, size=self.size, seed=self.seed,
                period=self.period,
                completed=record.complete,
                download_time=(record.download_time if record.complete
                               else None),
                metrics=metrics,
                established_at=record.established_at,
                subflow_count=subflow_count,
                world=(world.summary() if world is not None else None),
                obs_metrics=(metrics_registry.snapshot()
                             if metrics_registry is not None else None),
            )
        except BaseException:
            # The flight recorder's reason to exist: persist the last
            # events before propagating whatever went wrong.
            self._dump_flight(trace_bus)
            raise
        finally:
            if trace_bus is not None:
                trace_bus.close()

    # ------------------------------------------------------------------

    def _path_pair_profiles(self):
        """The access-profile overrides for this run.

        Explicit per-measurement overrides win; otherwise a non-default
        ``spec.path_pair`` maps its primary onto the testbed's WiFi
        slot and its secondary onto the cellular slot.  (Path *names*
        derive from interface addresses, so CSVs still label the
        primary ``wifi`` -- the pair swaps the physics, not the
        labels.)
        """
        wifi_profile = self.wifi_profile
        cell_profile = self.cell_profile
        if self.spec.path_pair != "default":
            from repro.wireless.profiles import PATH_PAIRS
            pair = PATH_PAIRS[self.spec.path_pair]
            if wifi_profile is None:
                wifi_profile = pair.primary
            if cell_profile is None:
                cell_profile = pair.secondary
        return wifi_profile, cell_profile

    def _install_trace(self, testbed: Testbed):
        """Build and install the trace bus on the fresh simulator.

        Must run before the protocol stack is constructed: hot-path
        components cache ``sim.trace`` at build time.
        """
        if self.trace == "off":
            return None
        from repro.obs.bus import make_trace_bus
        path = self.trace_path if self.trace == "jsonl" else None
        bus = make_trace_bus(self.trace, path=path,
                             ring_size=self.trace_ring)
        testbed.sim.trace = bus
        self.trace_bus = bus
        return bus

    def _install_metrics(self, testbed: Testbed):
        """Build and install the metrics registry on the simulator.

        Same contract as :meth:`_install_trace`: must run before the
        protocol stack is constructed, because hot-path components
        cache ``sim.metrics`` at build time.  Returns the registry when
        enabled (for the end-of-run snapshot), else ``None``.
        """
        if self.metrics == "off":
            return None
        from repro.obs.metrics import make_metrics
        registry = make_metrics(self.metrics)
        testbed.sim.metrics = registry
        # Links are built with the testbed itself, before this runs, so
        # their cached null registry must be rebound by hand (protocol
        # components are constructed later and pick it up naturally).
        for interface in testbed.network._interfaces.values():
            interface.up_link._metrics = registry
            interface.down_link._metrics = registry
        return registry

    def _install_failure(self, testbed: Testbed, connection) -> None:
        """Schedule the spec's injected failure, if any.

        With ``failure == "none"`` (every pre-existing spec) nothing is
        scheduled, so undisturbed runs replay bit-for-bit.  Otherwise
        an :class:`repro.wireless.mobility.InterfaceOutage` takes the
        chosen access interface down and (optionally) back up, wired to
        the MPTCP path manager's interface callbacks exactly as the
        handover benchmark does — so MP flows re-join on recovery while
        SP flows on the failed path simply stall.
        """
        spec = self.spec
        if spec.failure == "none":
            return
        from repro.experiments.config import parse_failure
        from repro.wireless.mobility import InterfaceOutage
        schedule = parse_failure(spec.failure)
        address = (testbed.client_addrs[0] if schedule["path"] == "wifi"
                   else testbed.cellular_addr)
        outage = InterfaceOutage(testbed.sim,
                                 testbed.client.interfaces[address])
        if connection is not None and connection.path_manager is not None:
            manager = connection.path_manager
            outage.on_down.append(
                lambda: manager.on_interface_down(address))
            outage.on_up.append(
                lambda: manager.on_interface_up(address))
        outage.schedule(schedule["down_at"], schedule["up_at"])

    def _dump_flight(self, trace_bus) -> None:
        if trace_bus is None:
            return
        from repro.obs.bus import ring_of
        ring = ring_of(trace_bus)
        if ring is None:
            trace_bus.flush()  # jsonl: everything is on disk already
            return
        path = self.trace_path or "flight-recorder.jsonl"
        try:
            ring.dump(path)
        except OSError:
            return  # never mask the original failure with an IO error
        self.flight_dump_path = path

    def _install_middlebox(self, testbed: Testbed) -> None:
        """Attach the spec's middlebox chain to the chosen access links.

        With ``middlebox == "none"`` (every pre-existing spec) nothing
        is built and no RNG stream is drawn, so existing runs replay
        bit-for-bit.
        """
        spec = self.spec
        if spec.middlebox == "none":
            return
        from repro.middlebox import build_chain, install_chain
        address = {
            "wifi": testbed.client_addrs[0],
            "cell": testbed.cellular_addr,
            "server": testbed.server_addrs[0],
        }[spec.middlebox_path]
        chain = build_chain(spec.middlebox,
                            rng=testbed.rng.stream("middlebox"),
                            probability=spec.middlebox_prob)
        install_chain(testbed.network, address, chain)

    def _start_world(self, testbed: Testbed, client):
        """Attach the spec's shared world, if any.

        With ``world == "none"`` (every pre-existing spec) nothing is
        built, no RNG stream is drawn and no event is scheduled, so
        stand-alone runs replay bit-for-bit.  Otherwise the foreground
        connection's client addresses claim fair shares on the world's
        bottlenecks and background arrivals run until the foreground
        record completes (so the event queue drains afterwards).
        """
        spec = self.spec
        if spec.world == "none":
            return None
        from repro.world import build_world
        world = build_world(testbed, spec.world)
        if spec.mode == "sp":
            addresses = [testbed.client_addrs[0] if spec.interface == "wifi"
                         else testbed.cellular_addr]
        else:
            addresses = list(testbed.client_addrs)
        world.attach_foreground(addresses)
        record = getattr(client, "record", None)
        stop_when = ((lambda: record.complete) if record is not None
                     else None)
        world.start(stop_when=stop_when)
        return world

    def _start_single_path(self, testbed: Testbed):
        from repro.tcp.endpoint import TcpEndpoint

        spec = self.spec
        tcp_config = spec.tcp_config()
        PlainTcpAcceptor(
            testbed.sim, testbed.server, HTTP_PORT, tcp_config,
            RenoController, responder=lambda index: self.size)
        local_addr = (testbed.client_addrs[0] if spec.interface == "wifi"
                      else testbed.cellular_addr)
        endpoint = TcpEndpoint(
            testbed.sim, testbed.client, local_addr,
            testbed.client.ephemeral_port(), testbed.server_addrs[0],
            HTTP_PORT, tcp_config, RenoController(), name="sp-client")
        client = HttpClient(testbed.sim, endpoint, self.size)
        client.start()
        endpoint.connect()
        return client, None

    def _start_mptcp(self, testbed: Testbed):
        spec = self.spec
        mptcp_config = spec.mptcp_config()
        size = self.size

        if spec.workload == "bulk":
            # The paper's measurement, byte-for-byte as before the
            # workload dimension existed.
            def on_connection(connection: MptcpConnection) -> None:
                HttpServerSession.fixed(connection, size)

            MptcpListener(testbed.sim, testbed.server, HTTP_PORT,
                          mptcp_config,
                          server_addrs=testbed.server_addrs,
                          on_connection=on_connection)
            connection = MptcpConnection.client(
                testbed.sim, testbed.client, testbed.client_addrs,
                testbed.server_addrs[0], HTTP_PORT, mptcp_config)
            client = HttpClient(testbed.sim, connection, size)
            client.start()
            connection.connect()
            return client, connection

        from repro.experiments.workloads import build_workload

        # The listener must exist before the client connects, but the
        # driver (which owns the server-side wiring) is built on the
        # client connection -- hand the accept callback through a
        # holder filled in below.  Accepts only happen once the
        # simulation runs, after the holder is populated.
        holder = {}

        MptcpListener(testbed.sim, testbed.server, HTTP_PORT, mptcp_config,
                      server_addrs=testbed.server_addrs,
                      on_connection=lambda server_conn:
                      holder["driver"].on_connection(server_conn))
        connection = MptcpConnection.client(
            testbed.sim, testbed.client, testbed.client_addrs,
            testbed.server_addrs[0], HTTP_PORT, mptcp_config)
        driver = build_workload(spec.workload, testbed.sim, connection,
                                seed=self.seed, size=size)
        holder["driver"] = driver
        driver.start()
        connection.connect()
        return driver, connection


@dataclass(frozen=True)
class RunDescriptor:
    """One campaign cell as plain picklable data.

    Worker processes receive these instead of live :class:`Measurement`
    objects; :meth:`run` rebuilds the measurement on the other side.
    ``index`` is the cell's position in the serial execution order, so
    out-of-order parallel completions can be reassembled exactly.
    """

    index: int
    spec: FlowSpec
    size: int
    seed: int
    period: TimeOfDay
    wifi_profile: Optional[object] = None
    cell_profile: Optional[object] = None
    timeout: Optional[float] = None
    #: Capture fidelity (a :class:`CaptureLevel` value string, kept as
    #: a plain string so descriptors stay trivially picklable).
    capture_level: str = CaptureLevel.METRICS_ONLY.value
    #: Protocol-event tracing mode (``off`` / ``ring`` / ``jsonl``) and
    #: the directory per-run trace files land in.  Strings, for the
    #: same picklability reason; they do not enter :attr:`key`, so
    #: traced and untraced campaigns share journal entries and seeds.
    trace: str = "off"
    trace_dir: Optional[str] = None
    #: Metrics mode (``off`` / ``on``); excluded from :attr:`key` like
    #: the trace mode — metrics are passive, so a metered and an
    #: unmetered campaign share journal entries and seeds.
    metrics: str = "off"

    @property
    def key(self) -> str:
        return descriptor_key(self.spec, self.size, self.seed, self.period)

    def trace_path(self) -> Optional[str]:
        """Per-run trace file: the event stream for ``jsonl`` mode, the
        flight-recorder dump target for ``ring`` mode."""
        if self.trace_dir is None or self.trace == "off":
            return None
        stem = "run" if self.trace == "jsonl" else "flight-run"
        return os.path.join(self.trace_dir,
                            f"{stem}-{self.index:04d}-{self.seed}.jsonl")

    def run(self, instrumentation=None) -> RunResult:
        measurement = Measurement(self.spec, self.size, seed=self.seed,
                                  period=self.period,
                                  timeout=self.timeout,
                                  wifi_profile=self.wifi_profile,
                                  cell_profile=self.cell_profile,
                                  capture_level=self.capture_level,
                                  trace=self.trace,
                                  trace_path=self.trace_path(),
                                  metrics=self.metrics)
        if instrumentation is None:
            return measurement.run()
        return measurement.run(instrumentation=instrumentation)


@dataclass(frozen=True)
class CampaignSpec:
    """A measurement matrix, Section 3.2 style."""

    name: str
    specs: Tuple[FlowSpec, ...]
    sizes: Tuple[int, ...]
    repetitions: int = 3
    periods: Tuple[TimeOfDay, ...] = (
        TimeOfDay.NIGHT, TimeOfDay.MORNING,
        TimeOfDay.AFTERNOON, TimeOfDay.EVENING)
    base_seed: int = 2013  # the paper's vintage

    def total_runs(self) -> int:
        return (len(self.specs) * len(self.sizes) * self.repetitions
                * len(self.periods))


class Campaign:
    """Runs a :class:`CampaignSpec`, randomizing order per round.

    ``jobs`` fans the measurements out over worker processes (each run
    builds a fresh, independently seeded testbed, so the results list
    is bit-for-bit identical to a serial run).  ``journal`` — a path or
    a :class:`repro.experiments.storage.ResultJournal` — streams every
    completed run to a JSON-lines file and skips cells already recorded
    there, making interrupted campaigns resumable.
    """

    def __init__(self, spec: CampaignSpec, progress=None,
                 jobs: int = 1, journal=None,
                 capture_level=CaptureLevel.METRICS_ONLY,
                 trace: str = "off", trace_dir: Optional[str] = None,
                 metrics: str = "off",
                 run_log: Optional[str] = None,
                 heartbeat_dir: Optional[str] = None,
                 instrumentation=None,
                 cache=None, cost_model=None,
                 dispatch: str = "ljf", chunk: int = 1,
                 window: int = 2,
                 backend: str = "pool",
                 hosts: Optional[Tuple[str, ...]] = None,
                 bind: str = "127.0.0.1:0",
                 advertise: Optional[str] = None,
                 lease_timeout: float = 60.0,
                 worker_cache: Optional[str] = None) -> None:
        self.spec = spec
        self.progress = progress
        self.jobs = jobs
        self.journal = journal
        #: Cross-campaign run cache (a directory path or an open
        #: :class:`repro.cache.RunCache`); cells already stored there
        #: are restored instead of recomputed, across campaigns.
        self.cache = cache
        #: Dispatch policy under ``jobs > 1``: cost model, submission
        #: order ("ljf" or "plan"), tiny-cell chunk size and the
        #: bounded in-flight submission window.  None of these can
        #: change a single result byte — only wall-clock.
        self.cost_model = cost_model
        self.dispatch = dispatch
        self.chunk = chunk
        self.window = window
        #: Execution backend: ``"pool"`` (single-host process pool) or
        #: a distributed backend (``"subprocess"`` / ``"ssh"`` /
        #: ``"tcp"``) where a TCP coordinator leases cells to ``repro
        #: worker`` processes — possibly on other machines — and
        #: results stay byte-identical to serial execution.
        self.backend = backend
        self.hosts = hosts
        self.bind = bind
        self.advertise = advertise
        self.lease_timeout = lease_timeout
        self.worker_cache = worker_cache
        #: Campaigns only consume aggregate metrics, so the cheapest
        #: capture level is the default; raise it to ``"full"`` when
        #: per-packet records are wanted for post-hoc analysis.
        self.capture_level = CaptureLevel.coerce(capture_level)
        #: Observability plumbing (all optional, all passive): per-run
        #: protocol traces, the campaign run log, worker heartbeats for
        #: ``--progress``, and the parent :class:`Instrumentation` that
        #: worker phase timers are merged into.
        self.trace = trace
        self.trace_dir = trace_dir
        self.metrics = metrics
        self.run_log = run_log
        self.heartbeat_dir = heartbeat_dir
        self.instrumentation = instrumentation
        self.results: List[RunResult] = []

    def plan(self) -> List["RunDescriptor"]:
        """The cells of this campaign, in serial execution order.

        The per-run seed is derived from the spec's full
        :attr:`FlowSpec.identity`, not just its label and carrier — two
        ablation specs differing only in scheduler or ssthresh must not
        share seeds, or their "independent" runs are correlated.
        """
        spec = self.spec
        shuffler = random.Random(derive_seed(spec.base_seed,
                                             f"{spec.name}.order"))
        descriptors: List[RunDescriptor] = []
        for repetition in range(spec.repetitions):
            for period in spec.periods:
                # One "round": every (config, size) once, in random
                # order, as the paper randomizes sequences per round.
                cells = [(flow, size) for flow in spec.specs
                         for size in spec.sizes]
                shuffler.shuffle(cells)
                for flow, size in cells:
                    seed = derive_seed(
                        spec.base_seed,
                        f"{spec.name}:{flow.identity}:"
                        f"{size}:{period.value}:{repetition}")
                    descriptors.append(RunDescriptor(
                        index=len(descriptors), spec=flow, size=size,
                        seed=seed, period=period,
                        capture_level=self.capture_level.value,
                        trace=self.trace, trace_dir=self.trace_dir,
                        metrics=self.metrics))
        return descriptors

    def run(self) -> List[RunResult]:
        from repro.experiments.parallel import execute_plan
        self.results = execute_plan(self.plan(), jobs=self.jobs,
                                    progress=self.progress,
                                    journal=self.journal,
                                    run_log=self.run_log,
                                    heartbeat_dir=self.heartbeat_dir,
                                    instrumentation=self.instrumentation,
                                    cache=self.cache,
                                    cost_model=self.cost_model,
                                    dispatch=self.dispatch,
                                    chunk=self.chunk,
                                    window=self.window,
                                    backend=self.backend,
                                    hosts=self.hosts,
                                    bind=self.bind,
                                    advertise=self.advertise,
                                    lease_timeout=self.lease_timeout,
                                    worker_cache=self.worker_cache)
        return self.results

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def group(self) -> Dict[Tuple[FlowSpec, int], List[RunResult]]:
        groups: Dict[Tuple[FlowSpec, int], List[RunResult]] = {}
        for result in self.results:
            groups.setdefault(result.key, []).append(result)
        return groups

    def download_times(self, flow: FlowSpec, size: int) -> List[float]:
        return [result.download_time for result in self.results
                if result.spec == flow and result.size == size
                and result.download_time is not None]

    def completed_fraction(self) -> float:
        if not self.results:
            return 1.0
        done = sum(1 for result in self.results if result.completed)
        return done / len(self.results)

"""Campaign definition files: experiments as data.

A measurement campaign -- which transports, which sizes, how many
repetitions, which day periods -- is configuration, not code.  This
module loads/saves :class:`CampaignSpec` as JSON so users can define
custom studies and run them with ``repro run-campaign FILE``:

.. code-block:: json

    {
      "name": "my-study",
      "repetitions": 5,
      "periods": ["night", "evening"],
      "sizes": ["64 KB", "4 MB"],
      "flows": [
        {"mode": "sp", "interface": "wifi"},
        {"mode": "mp", "carrier": "verizon", "controller": "olia",
         "paths": 4}
      ]
    }

Sizes accept integers (bytes) or the paper's human labels ("8 KB",
"2 MB").  Flow objects take any :class:`FlowSpec` field.
"""

from __future__ import annotations

import dataclasses
import json
import re
from pathlib import Path
from typing import Union

from repro.experiments.config import FlowSpec
from repro.experiments.runner import CampaignSpec
from repro.wireless.profiles import TimeOfDay

_SIZE_PATTERN = re.compile(
    r"^\s*(\d+(?:\.\d+)?)\s*(B|KB|MB|GB)?\s*$", re.IGNORECASE)
_UNIT = {"b": 1, "kb": 1024, "mb": 1024 ** 2, "gb": 1024 ** 3}


def parse_size(value: Union[int, str]) -> int:
    """'512 KB' / '4 MB' / 8192 -> bytes."""
    if isinstance(value, int):
        if value <= 0:
            raise ValueError(f"size must be positive, got {value}")
        return value
    match = _SIZE_PATTERN.match(value)
    if not match:
        raise ValueError(f"unparseable size {value!r}")
    number, unit = match.groups()
    return int(float(number) * _UNIT[(unit or "B").lower()])


def format_size(size: int) -> Union[int, str]:
    """Bytes -> the most readable JSON representation."""
    for unit, factor in (("MB", 1024 ** 2), ("KB", 1024)):
        if size % factor == 0 and size >= factor:
            return f"{size // factor} {unit}"
    return size


def campaign_from_dict(data: dict) -> CampaignSpec:
    """Build a CampaignSpec from a parsed JSON object."""
    unknown = set(data) - {"name", "flows", "sizes", "repetitions",
                           "periods", "base_seed"}
    if unknown:
        raise ValueError(f"unknown campaign keys: {sorted(unknown)}")
    if "name" not in data or "flows" not in data or "sizes" not in data:
        raise ValueError("a campaign needs 'name', 'flows' and 'sizes'")
    flows = tuple(FlowSpec(**flow) for flow in data["flows"])
    sizes = tuple(parse_size(size) for size in data["sizes"])
    kwargs = {}
    if "repetitions" in data:
        kwargs["repetitions"] = int(data["repetitions"])
    if "periods" in data:
        kwargs["periods"] = tuple(TimeOfDay(period)
                                  for period in data["periods"])
    if "base_seed" in data:
        kwargs["base_seed"] = int(data["base_seed"])
    return CampaignSpec(name=data["name"], specs=flows, sizes=sizes,
                        **kwargs)


def campaign_to_dict(spec: CampaignSpec) -> dict:
    """Serialize a CampaignSpec, dropping FlowSpec fields at default."""
    defaults = FlowSpec(mode="sp")
    flows = []
    for flow in spec.specs:
        entry = {"mode": flow.mode}
        for field in dataclasses.fields(FlowSpec):
            if field.name == "mode":
                continue
            value = getattr(flow, field.name)
            if value != getattr(defaults, field.name):
                entry[field.name] = value
        flows.append(entry)
    return {
        "name": spec.name,
        "repetitions": spec.repetitions,
        "periods": [period.value for period in spec.periods],
        "base_seed": spec.base_seed,
        "sizes": [format_size(size) for size in spec.sizes],
        "flows": flows,
    }


def load_campaign(path: Union[str, Path]) -> CampaignSpec:
    with open(path) as handle:
        return campaign_from_dict(json.load(handle))


def save_campaign(spec: CampaignSpec, path: Union[str, Path]) -> None:
    with open(path, "w") as handle:
        json.dump(campaign_to_dict(spec), handle, indent=2)
        handle.write("\n")

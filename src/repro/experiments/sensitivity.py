"""One-factor sensitivity sweeps.

The reproduction's calibration (docs/calibration.md) pins parameters
the paper only partially constrains; this harness answers "does the
conclusion survive if that parameter is off?"  A sweep varies one
factor -- a :class:`FlowSpec` field, or a path-profile field via the
testbed's override hook -- and measures a metric across seeds at each
value.

Example: how does MPTCP's advantage over the best single path depend
on the WiFi loss rate?  (`sweep_wifi_loss` below; the benchmark
``bench_ext_sensitivity.py`` prints it.)
"""

from __future__ import annotations

import dataclasses
import statistics
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.config import FlowSpec
from repro.experiments.runner import Measurement, RunResult
from repro.wireless.profiles import HOME_WIFI, PathProfile

Metric = Callable[[RunResult], float]


@dataclass
class SweepPoint:
    """All seeds' measurements at one parameter value."""

    value: object
    samples: List[float]

    @property
    def mean(self) -> float:
        return statistics.mean(self.samples)

    @property
    def median(self) -> float:
        return statistics.median(self.samples)


def _measure(spec: FlowSpec, size: int, seeds: Sequence[int],
             metric: Metric,
             wifi_profile: Optional[PathProfile] = None,
             cell_profile: Optional[PathProfile] = None) -> List[float]:
    samples = []
    for seed in seeds:
        result = Measurement(spec, size, seed=seed,
                             wifi_profile=wifi_profile,
                             cell_profile=cell_profile).run()
        if result.completed:
            samples.append(metric(result))
    return samples


def sweep_spec_field(base: FlowSpec, field: str, values: Sequence,
                     size: int, seeds: Sequence[int],
                     metric: Metric = lambda r: r.download_time,
                     ) -> List[SweepPoint]:
    """Vary one FlowSpec field (ssthresh, rcv_buffer, scheduler, ...)."""
    points = []
    for value in values:
        spec = base.with_(**{field: value})
        points.append(SweepPoint(value, _measure(spec, size, seeds,
                                                 metric)))
    return points


def sweep_profile_field(base: FlowSpec, profile: PathProfile,
                        which: str, field: str, values: Sequence,
                        size: int, seeds: Sequence[int],
                        metric: Metric = lambda r: r.download_time,
                        ) -> List[SweepPoint]:
    """Vary one field of a path profile (``which`` is 'wifi'/'cell')."""
    if which not in ("wifi", "cell"):
        raise ValueError("which must be 'wifi' or 'cell'")
    points = []
    for value in values:
        patched = dataclasses.replace(profile, **{field: value})
        kwargs = ({"wifi_profile": patched} if which == "wifi"
                  else {"cell_profile": patched})
        points.append(SweepPoint(value, _measure(
            base, size, seeds, metric, **kwargs)))
    return points


def sweep_wifi_loss(loss_rates: Sequence[float], size: int,
                    seeds: Sequence[int],
                    ) -> Dict[str, List[SweepPoint]]:
    """The headline sensitivity: MPTCP vs single paths as the WiFi
    degrades from pristine to hotspot-bad.

    Returns median download times per transport at each loss rate.
    """
    transports = {
        "SP-WiFi": FlowSpec.single_path("wifi"),
        "SP-LTE": FlowSpec.single_path("cell", carrier="att"),
        "MPTCP": FlowSpec.mptcp(carrier="att"),
    }
    curves: Dict[str, List[SweepPoint]] = {name: [] for name in transports}
    for loss in loss_rates:
        wifi = dataclasses.replace(HOME_WIFI, down_loss=loss)
        for name, spec in transports.items():
            samples = _measure(spec, size, seeds,
                               lambda r: r.download_time,
                               wifi_profile=wifi)
            curves[name].append(SweepPoint(loss, samples))
    return curves

"""Flow configurations: the labels on the paper's x-axes.

A :class:`FlowSpec` is everything about a measurement except the file
size and the random draw: single-path vs multipath, which carrier and
WiFi flavor, how many paths, which congestion controller, and the
protocol knobs the paper varies (simultaneous SYN) or we ablate
(scheduler, penalization, ssthresh, receive buffer).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

from repro.core.connection import MptcpConfig
from repro.tcp.endpoint import TcpConfig

_CARRIER_LABELS = {"att": "ATT", "verizon": "VZW", "sprint": "Sprint"}


def parse_failure(value: str) -> dict:
    """Parse a failure-schedule spec into its parameters.

    Grammar: ``outage:down=<seconds>,up=<seconds>|never[,path=wifi|cell]``
    — an interface outage window on one access path, the
    bench_ext_handover schedule as a first-class campaign knob.
    ``"none"`` raises (callers gate on it before parsing).
    """
    kind, _, params_text = value.partition(":")
    if kind != "outage":
        raise ValueError(f"unknown failure kind {kind!r}; known: outage")
    params = {}
    for item in filter(None, params_text.split(",")):
        name, sep, text = item.partition("=")
        if not sep:
            raise ValueError(f"bad failure parameter {item!r}")
        params[name] = text
    unknown = set(params) - {"down", "up", "path"}
    if unknown:
        raise ValueError(
            f"unknown failure parameters: {', '.join(sorted(unknown))}")
    if "down" not in params or "up" not in params:
        raise ValueError(
            f"failure spec {value!r} needs down=<s> and up=<s>|never")
    down_at = float(params["down"])
    up_at = (None if params["up"] == "never" else float(params["up"]))
    if down_at < 0.0:
        raise ValueError("outage down time must be >= 0")
    if up_at is not None and up_at <= down_at:
        raise ValueError("outage recovery must follow the outage")
    path = params.get("path", "wifi")
    if path not in ("wifi", "cell"):
        raise ValueError(f"bad failure path {path!r}")
    return {"kind": "outage", "down_at": down_at, "up_at": up_at,
            "path": path}


@dataclass(frozen=True)
class FlowSpec:
    """One transport configuration of the measurement study."""

    mode: str                      # "sp" (single path) or "mp" (MPTCP)
    carrier: str = "att"           # att | verizon | sprint
    wifi: str = "home"             # home | public
    interface: str = "wifi"        # sp only: wifi | cell
    controller: str = "coupled"    # reno | coupled | olia
    paths: int = 2                 # mp only: 2 or 4
    simultaneous_syn: bool = False
    #: Scheduler strategy spec (see
    #: :func:`repro.core.scheduler.make_scheduler`): a registry name
    #: such as ``minrtt`` / ``roundrobin`` / ``redundant`` / ``blest``
    #: / ``qoe``, optionally parameterized (``weighted:wifi=2,att=1``).
    scheduler: str = "minrtt"
    #: Path-manager strategy spec (mp only): ``fullmesh`` (default),
    #: ``primary-backup``, or ``ndiffports[:ports=N]``.
    path_manager: str = "fullmesh"
    penalization: bool = False
    ssthresh: int = 64 * 1024
    rcv_buffer: int = 8 * 1024 * 1024
    #: On-path middlebox profile ("none" or a name from
    #: :data:`repro.middlebox.PROFILES`), which interface's access
    #: links it sits on, and the per-packet mangling probability.
    middlebox: str = "none"
    middlebox_path: str = "wifi"   # wifi | cell | server
    middlebox_prob: float = 1.0
    #: Application workload driving the flow: ``bulk`` (HTTP download,
    #: the paper's measurement), ``pageload`` (app.web page fetch),
    #: ``video`` (periodic streaming blocks), ``realtime`` (fixed-rate
    #: frames, latency-sensitive).
    workload: str = "bulk"
    #: Access-network pair: ``default`` (the paper's WiFi + carrier
    #: testbed) or a name from
    #: :data:`repro.wireless.profiles.PATH_PAIRS` (e.g. ``dual-lte``).
    path_pair: str = "default"
    #: Shared-world background traffic: ``none`` (stand-alone flow,
    #: the paper's measurement) or a preset from
    #: :data:`repro.world.WORLDS` (``bg-light``, ``closed-32``, ...)
    #: filling the access links with fluid background flows.
    world: str = "none"
    #: Injected failure schedule: ``none`` (the paper's undisturbed
    #: runs) or a spec parsed by :func:`parse_failure`, e.g.
    #: ``outage:down=2,up=6`` for the bench_ext_handover window.
    failure: str = "none"

    def __post_init__(self) -> None:
        if self.mode not in ("sp", "mp"):
            raise ValueError(f"mode must be 'sp' or 'mp', not {self.mode!r}")
        if self.mode == "sp" and self.interface not in ("wifi", "cell"):
            raise ValueError(f"bad sp interface {self.interface!r}")
        if self.mode == "mp" and self.paths not in (2, 4):
            raise ValueError("MPTCP runs use 2 or 4 paths")
        if self.middlebox != "none":
            from repro.middlebox import PROFILES
            if self.middlebox not in PROFILES:
                raise ValueError(
                    f"unknown middlebox profile {self.middlebox!r}; "
                    f"known: none, {', '.join(sorted(PROFILES))}")
        if self.middlebox_path not in ("wifi", "cell", "server"):
            raise ValueError(
                f"bad middlebox path {self.middlebox_path!r}")
        if not 0.0 <= self.middlebox_prob <= 1.0:
            raise ValueError("middlebox_prob must be within [0, 1]")
        if self.workload not in ("bulk", "pageload", "video", "realtime"):
            raise ValueError(f"unknown workload {self.workload!r}")
        if self.workload != "bulk" and self.mode != "mp":
            raise ValueError(
                "non-bulk workloads are multipath measurements; "
                "use mode='mp'")
        from repro.core.path_manager import path_manager_names
        from repro.core.scheduler import parse_strategy, scheduler_names
        if parse_strategy(self.scheduler)[0] not in scheduler_names():
            raise ValueError(f"unknown scheduler {self.scheduler!r}; "
                             f"known: {', '.join(scheduler_names())}")
        if parse_strategy(self.path_manager)[0] not in path_manager_names():
            raise ValueError(
                f"unknown path manager {self.path_manager!r}; "
                f"known: {', '.join(path_manager_names())}")
        if self.path_pair != "default":
            from repro.wireless.profiles import PATH_PAIRS
            if self.path_pair not in PATH_PAIRS:
                raise ValueError(
                    f"unknown path pair {self.path_pair!r}; known: "
                    f"default, {', '.join(sorted(PATH_PAIRS))}")
        if self.world != "none":
            from repro.world import WORLDS
            if self.world not in WORLDS:
                raise ValueError(
                    f"unknown world {self.world!r}; known: "
                    f"none, {', '.join(sorted(WORLDS))}")
        if self.failure != "none":
            parse_failure(self.failure)  # raises on malformed specs

    # ------------------------------------------------------------------
    # Constructors matching the paper's vocabulary
    # ------------------------------------------------------------------

    @classmethod
    def single_path(cls, interface: str, carrier: str = "att",
                    wifi: str = "home", **kwargs) -> "FlowSpec":
        """SP-WiFi or SP-carrier."""
        return cls(mode="sp", interface=interface, carrier=carrier,
                   wifi=wifi, **kwargs)

    @classmethod
    def mptcp(cls, carrier: str = "att", controller: str = "coupled",
              paths: int = 2, wifi: str = "home", **kwargs) -> "FlowSpec":
        """MP-2 / MP-4 over WiFi plus one cellular carrier."""
        return cls(mode="mp", carrier=carrier, controller=controller,
                   paths=paths, wifi=wifi, **kwargs)

    def with_(self, **changes) -> "FlowSpec":
        """A modified copy (ablations)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Labels and derived configs
    # ------------------------------------------------------------------

    @property
    def label(self) -> str:
        """The figure label, e.g. 'SP-WiFi', 'MP-ATT', 'MP-4 (olia)'."""
        if self.mode == "sp":
            if self.interface == "wifi":
                return "SP-WiFi"
            return f"SP-{_CARRIER_LABELS[self.carrier]}"
        base = f"MP-{self.paths}"
        suffix = ("" if self.controller == "coupled"
                  else f" ({self.controller})")
        return f"{base}{suffix}"

    @property
    def carrier_label(self) -> str:
        return _CARRIER_LABELS[self.carrier]

    @property
    def identity(self) -> str:
        """Canonical string of *every* field, for seed derivation and
        resume-journal keys.

        ``label`` alone is ambiguous: an ablation can put two specs with
        the same label and carrier but different scheduler or ssthresh
        in one campaign, and anything keyed on the label would silently
        collide.

        The middlebox trio is included only when a middlebox is
        configured: every pre-existing spec must keep the identity (and
        hence the derived per-run seeds and journal keys) it had before
        middleboxes existed, or committed campaign outputs would shift.
        The scheduler-lab fields (``path_manager``, ``workload``,
        ``path_pair``), the shared-world field (``world``) and the
        failure schedule (``failure``) are gated the same way:
        defaulted values stay out of the identity string.
        """
        values = asdict(self)
        if values["middlebox"] == "none":
            for name in ("middlebox", "middlebox_path", "middlebox_prob"):
                del values[name]
        if values["path_manager"] == "fullmesh":
            del values["path_manager"]
        if values["workload"] == "bulk":
            del values["workload"]
        if values["path_pair"] == "default":
            del values["path_pair"]
        if values["world"] == "none":
            del values["world"]
        if values["failure"] == "none":
            del values["failure"]
        return ";".join(f"{name}={values[name]}" for name in sorted(values))

    @property
    def server_interfaces(self) -> int:
        return 2 if (self.mode == "mp" and self.paths == 4) else 1

    @property
    def cost_weight(self) -> float:
        """Relative simulation cost per transferred byte.

        The fallback input to :class:`repro.cache.CostModel` when no
        calibration data exists yet: MPTCP runs pay for DSS mapping,
        scheduler decisions and per-subflow ACK clocking on top of the
        single-path packet pipeline, and four subflows cost more than
        two.  The constants are deliberately coarse — dispatch ordering
        only needs the *ranking* of cells to be roughly right, and
        observed wall times replace this heuristic as soon as a run
        log or a live campaign provides them.

        Shared-world cells multiply on top: the fluid kernel itself is
        nearly free per background flow (hybrid packet/fluid), but the
        contention it creates slows the foreground transfer -- more
        simulated seconds, more solver pushes, and a bottleneck link
        pinned to the scalar pipeline that the vectorized core cannot
        batch.  Measured against the vectorized packet core the premium
        is modest (~20% at light contention, ~40% for large closed-loop
        populations) and almost flat in concurrency, so the multiplier
        is correspondingly gentle; it still guarantees a world cell
        outranks the equivalent stand-alone cell at the same size, so
        a mixed ``repro all`` + ``repro world`` plan fronts its world
        cells instead of parking them on the tail.
        """
        if self.mode == "sp":
            weight = 1.0
        else:
            weight = 1.8 if self.paths == 2 else 2.6
            if self.middlebox != "none":
                weight *= 1.1
        if self.world != "none":
            from repro.world import WORLDS
            concurrency = WORLDS[self.world].expected_concurrency
            weight *= 1.2 + min(0.25, 0.01 * concurrency)
        return weight

    def tcp_config(self) -> TcpConfig:
        return TcpConfig(initial_ssthresh=self.ssthresh,
                         rcv_buffer=self.rcv_buffer)

    def mptcp_config(self) -> MptcpConfig:
        if self.mode != "mp":
            raise RuntimeError("mptcp_config() on a single-path spec")
        return MptcpConfig(
            controller=self.controller,
            scheduler=self.scheduler,
            path_manager=self.path_manager,
            rcv_buffer=self.rcv_buffer,
            penalization=self.penalization,
            simultaneous_syn=self.simultaneous_syn,
            tcp=self.tcp_config(),
        )

    def __str__(self) -> str:
        return self.label

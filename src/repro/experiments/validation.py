"""Self-consistency validation: traces vs. protocol internals.

The measurement layer (captures + tcptrace analysis) and the protocol
layer (endpoint counters, receive-buffer accounting) observe the same
run independently.  If the simulator is healthy they must agree; after
modifying protocol code, running :func:`validate_transfer` is a quick
way to prove the observation pipeline still tells the truth.

Checks performed on one instrumented MPTCP download:

* download time from the client capture equals the application record;
* per-subflow retransmission counts from the server capture equal the
  sending endpoints' own counters (the loss-rate pipeline);
* data-packet counts agree between capture and endpoints;
* every payload byte is delivered exactly once (stream conservation);
* per-path byte shares agree between the client capture and the
  receive buffer's ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.app.http import HTTP_PORT, HttpClient, HttpServerSession
from repro.core.connection import MptcpConnection, \
    MptcpListener
from repro.experiments.config import FlowSpec
from repro.testbed import Testbed, TestbedConfig
from repro.trace.capture import PacketCapture
from repro.trace.metrics import bytes_by_client_path, \
    connection_metrics


@dataclass
class Check:
    name: str
    ok: bool
    detail: str


def validate_transfer(spec: FlowSpec = None, size: int = 1024 * 1024,
                      seed: int = 7) -> List[Check]:
    """Run one instrumented download and cross-check every ledger."""
    spec = spec or FlowSpec.mptcp(carrier="att")
    if spec.mode != "mp":
        raise ValueError("validation instruments an MPTCP transfer")
    testbed = Testbed(TestbedConfig(
        carrier=spec.carrier, wifi=spec.wifi,
        server_interfaces=spec.server_interfaces, seed=seed))
    server_capture = PacketCapture(testbed.server)
    client_capture = PacketCapture(testbed.client)
    config = spec.mptcp_config()
    server_side = {}

    def on_connection(server_conn):
        server_side["conn"] = server_conn
        HttpServerSession.fixed(server_conn, size)

    MptcpListener(testbed.sim, testbed.server, HTTP_PORT, config,
                  server_addrs=testbed.server_addrs,
                  on_connection=on_connection)
    connection = MptcpConnection.client(
        testbed.sim, testbed.client, testbed.client_addrs,
        testbed.server_addrs[0], HTTP_PORT, config)
    client = HttpClient(testbed.sim, connection, size)
    client.start()
    connection.connect()
    testbed.run(until=120.0 + size / 12_500.0)

    checks: List[Check] = []

    def check(name: str, ok: bool, detail: str) -> None:
        checks.append(Check(name, ok, detail))

    record = client.record
    check("completed", record.complete,
          f"bytes_received={record.bytes_received}/{size}")
    if not record.complete:
        return checks

    metrics = connection_metrics(server_capture, client_capture,
                                 ofo_delays=connection.receive_buffer
                                 .metrics.delays())
    capture_time = metrics.download_time
    app_time = record.download_time
    check("download-time",
          abs(capture_time - app_time) < 1e-6,
          f"capture {capture_time:.6f}s vs app {app_time:.6f}s")

    server_conn = server_side["conn"]
    for subflow in server_conn.subflows:
        endpoint = subflow.endpoint
        analysis = metrics.per_path.get(subflow.path_name)
        if analysis is None:
            check(f"path-{subflow.path_name}",
                  endpoint.stats.data_packets_sent == 0,
                  "no capture flow, endpoint must be silent")
            continue
        check(f"retransmits-{subflow.path_name}",
              analysis.retransmitted_packets
              == endpoint.stats.retransmitted_packets,
              f"capture {analysis.retransmitted_packets} vs endpoint "
              f"{endpoint.stats.retransmitted_packets}")
        check(f"data-packets-{subflow.path_name}",
              analysis.data_packets_sent
              == endpoint.stats.data_packets_sent,
              f"capture {analysis.data_packets_sent} vs endpoint "
              f"{endpoint.stats.data_packets_sent}")

    delivered = connection.receive_buffer.metrics.delivered_bytes
    check("stream-conservation", delivered == size,
          f"delivered {delivered} of {size} exactly once")

    ledger = connection.receive_buffer.metrics.bytes_by_path
    capture_split = bytes_by_client_path(client_capture)
    for path, ledger_bytes in sorted(ledger.items()):
        seen = capture_split.get(path, 0)
        # The capture counts every arriving payload byte including
        # duplicates; the ledger counts unique accepted bytes.
        check(f"share-{path}", seen >= ledger_bytes,
              f"capture {seen} >= unique {ledger_bytes}")
    return checks


def render_checks(checks: List[Check]) -> str:
    lines = []
    for check in checks:
        status = "ok " if check.ok else "FAIL"
        lines.append(f"[{status}] {check.name}: {check.detail}")
    passed = sum(1 for check in checks if check.ok)
    lines.append(f"{passed}/{len(checks)} consistency checks passed")
    return "\n".join(lines)

"""The reproduction scorecard: check every headline claim, live.

``repro scorecard`` runs a compact measurement set and grades each of
the paper's headline findings (Section 1's contribution list) against
it, printing PASS/FAIL with the numbers.  It is the user-facing
counterpart of ``tests/integration/test_paper_claims.py``: same
claims, smaller samples, readable output.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.experiments.config import FlowSpec
from repro.experiments.runner import Measurement, RunResult
from repro.experiments.stats import ccdf_fraction_above

KB = 1024
MB = 1024 * 1024


@dataclass
class ClaimResult:
    claim_id: str
    description: str
    passed: bool
    detail: str


class _Lab:
    """Runs and caches measurements for the claim checks."""

    def __init__(self, seeds: Sequence[int]) -> None:
        self.seeds = list(seeds)
        self._cache: Dict[Tuple[FlowSpec, int, int], RunResult] = {}

    def result(self, spec: FlowSpec, size: int, seed: int) -> RunResult:
        key = (spec, size, seed)
        if key not in self._cache:
            self._cache[key] = Measurement(spec, size, seed=seed).run()
        return self._cache[key]

    def mean(self, spec: FlowSpec, size: int,
             metric: Callable[[RunResult], float]) -> float:
        values = []
        for seed in self.seeds:
            run = self.result(spec, size, seed)
            if run.completed:
                values.append(metric(run))
        return statistics.mean(values)

    def mean_time(self, spec: FlowSpec, size: int) -> float:
        # Median, despite the name: robust to a single unlucky RTO in
        # small samples (tiny flows especially), like the paper's
        # box-plot medians.
        values = [self.result(spec, size, seed).download_time
                  for seed in self.seeds
                  if self.result(spec, size, seed).completed]
        return statistics.median(values)


def _check_robustness(lab: _Lab) -> ClaimResult:
    size = 2 * MB
    worst_ratio = 0.0
    for carrier in ("att", "verizon", "sprint"):
        best = min(lab.mean_time(FlowSpec.single_path("wifi"), size),
                   lab.mean_time(FlowSpec.single_path("cell",
                                                      carrier=carrier),
                                 size))
        mptcp = lab.mean_time(FlowSpec.mptcp(carrier=carrier), size)
        worst_ratio = max(worst_ratio, mptcp / best)
    return ClaimResult(
        "robustness",
        "MPTCP stays close to the best single path (every carrier)",
        worst_ratio < 1.5,
        f"worst MPTCP/best-single-path ratio at 2 MB: {worst_ratio:.2f}")


def _check_small_flows(lab: _Lab) -> ClaimResult:
    wifi = lab.mean_time(FlowSpec.single_path("wifi"), 8 * KB)
    att = lab.mean_time(FlowSpec.single_path("cell"), 8 * KB)
    mptcp = lab.mean_time(FlowSpec.mptcp(), 8 * KB)
    ok = wifi < att and mptcp < att
    return ClaimResult(
        "small-flows",
        "small flows are RTT-bound: WiFi wins, MPTCP tracks WiFi",
        ok,
        f"8 KB means: WiFi {wifi:.3f}s, LTE {att:.3f}s, "
        f"MPTCP {mptcp:.3f}s")


def _check_large_flows(lab: _Lab) -> ClaimResult:
    size = 16 * MB
    wifi = lab.mean_time(FlowSpec.single_path("wifi"), size)
    att = lab.mean_time(FlowSpec.single_path("cell"), size)
    mptcp = lab.mean_time(FlowSpec.mptcp(), size)
    ok = att < wifi and mptcp < att * 1.05
    return ClaimResult(
        "large-flows",
        "large flows: loss-free LTE beats WiFi; MPTCP beats both",
        ok,
        f"16 MB means: WiFi {wifi:.1f}s, LTE {att:.1f}s, "
        f"MPTCP {mptcp:.1f}s")


def _check_offload(lab: _Lab) -> ClaimResult:
    fractions = {
        size: lab.mean(FlowSpec.mptcp(), size,
                       lambda run: run.metrics.cellular_fraction)
        for size in (64 * KB, 512 * KB, 4 * MB)}
    ok = (fractions[64 * KB] < 0.25
          and fractions[64 * KB] <= fractions[512 * KB]
          <= fractions[4 * MB] and fractions[4 * MB] > 0.5)
    text = ", ".join(f"{size // KB}KB: {frac:.0%}"
                     for size, frac in sorted(fractions.items()))
    return ClaimResult(
        "offload",
        "traffic offloads to cellular as size grows (>50% by 4 MB)",
        ok, text)


def _check_subflow_count(lab: _Lab) -> ClaimResult:
    size = 512 * KB
    two = lab.mean_time(FlowSpec.mptcp(paths=2), size)
    four = lab.mean_time(FlowSpec.mptcp(paths=4), size)
    return ClaimResult(
        "four-paths",
        "4-path MPTCP outperforms 2-path",
        four < two * 1.1,
        f"512 KB means: MP-2 {two:.3f}s, MP-4 {four:.3f}s")


def _check_bufferbloat(lab: _Lab) -> ClaimResult:
    spec = FlowSpec.single_path("cell", carrier="verizon")
    small = lab.mean(spec, 64 * KB,
                     lambda run: run.metrics.mean_rtt("verizon"))
    large = lab.mean(spec, 16 * MB,
                     lambda run: run.metrics.mean_rtt("verizon"))
    return ClaimResult(
        "bufferbloat",
        "cellular RTT inflates with flow size (bufferbloat)",
        large > small * 1.15,
        f"Verizon mean RTT: {small * 1000:.0f} ms at 64 KB -> "
        f"{large * 1000:.0f} ms at 16 MB")


def _check_reordering(lab: _Lab) -> ClaimResult:
    size = 8 * MB

    def tail(run: RunResult) -> float:
        return ccdf_fraction_above(run.metrics.ofo_delays, 0.150)

    att = lab.mean(FlowSpec.mptcp(carrier="att"), size, tail)
    sprint = lab.mean(FlowSpec.mptcp(carrier="sprint"), size, tail)
    return ClaimResult(
        "reordering",
        "3G pairing reorders past the 150 ms real-time budget",
        sprint > att and sprint > 0.05,
        f"packets waiting >150 ms: AT&T {att:.1%}, Sprint {sprint:.1%}")


def _check_controllers(lab: _Lab) -> ClaimResult:
    size = 8 * MB
    coupled = lab.mean_time(FlowSpec.mptcp(controller="coupled"), size)
    reno = lab.mean_time(FlowSpec.mptcp(controller="reno"), size)
    olia = lab.mean_time(FlowSpec.mptcp(controller="olia"), size)
    ok = reno < coupled * 1.02 and olia < coupled * 1.1
    return ClaimResult(
        "controllers",
        "reno fastest (unfair); olia competitive with coupled",
        ok,
        f"8 MB means: reno {reno:.2f}s, olia {olia:.2f}s, "
        f"coupled {coupled:.2f}s")


CLAIM_CHECKS = (
    _check_robustness,
    _check_small_flows,
    _check_large_flows,
    _check_offload,
    _check_subflow_count,
    _check_bufferbloat,
    _check_reordering,
    _check_controllers,
)


def run_scorecard(seeds: Sequence[int] = (71, 72, 73)
                  ) -> List[ClaimResult]:
    """Run every claim check; returns the graded list."""
    lab = _Lab(seeds)
    return [check(lab) for check in CLAIM_CHECKS]


def render_scorecard(results: Sequence[ClaimResult]) -> str:
    lines = ["Paper reproduction scorecard", "=" * 60]
    for result in results:
        status = "PASS" if result.passed else "FAIL"
        lines.append(f"[{status}] {result.claim_id}: {result.description}")
        lines.append(f"       {result.detail}")
    passed = sum(1 for result in results if result.passed)
    lines.append("=" * 60)
    lines.append(f"{passed}/{len(results)} headline claims reproduced")
    return "\n".join(lines)

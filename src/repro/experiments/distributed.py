"""Distributed campaign execution: a coordinator/worker backend.

The run cache made campaign cells location-independent — a cell is a
pure function of its :class:`RunDescriptor` and its result is a
content-addressed object — so scaling beyond one machine needs only an
execution backend: this module extends
:func:`repro.experiments.parallel.execute_plan` with a TCP
coordinator that leases descriptor chunks to ``repro worker``
processes anywhere, collects the published result objects into the
shared store, and reassembles the plan in serial order, byte-identical
to single-host execution.

Topology
--------

::

    execute_plan(backend="subprocess" | "ssh" | "tcp")
        └── Coordinator (TCP server, one thread per worker connection)
              ├── LeaseQueue   crash-safe chunk leases with expiry
              ├── run cache    content-addressed objects/ store
              └── run_log      lifecycle + failover records
    repro worker --connect host:port      (local, ssh-spawned, or manual)
        └── leases a chunk → runs cells → offers digests → publishes
            only the objects the coordinator does not already have

Lease semantics
---------------

A lease is one dispatch task (a chunk of plan positions, built by the
same cost-model LJF pipeline the pool backend uses) granted to one
worker with a deadline.  Workers renew after every completed cell;
a worker that dies (SIGKILL, network partition, host loss) simply
stops renewing, the coordinator expires the lease, logs a
``lease_expired`` failover record to the run log, and *refronts* the
chunk so the next idle worker re-runs it.  Results are delivered
idempotently by plan position — a presumed-dead worker that comes
back and publishes anyway is harmless, because a filled slot is never
overwritten and never re-counted.

Crash safety is layered: worker death is handled here (lease expiry);
coordinator death is handled by the existing persistence layers — the
journal and the run cache already hold every delivered cell, so a
re-invoked campaign restores them before leasing anything.

Determinism
-----------

The oracle is the determinism guard: whichever host runs whichever
cell, results travel as the cache's full-fidelity object format
(:func:`repro.experiments.protocol.result_wrapper`), are reassembled
by plan position, and must be byte-identical to serial execution.
Nothing in this module can reorder, rescale or re-thin a row.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    descriptor_from_dict,
    descriptor_to_dict,
    parse_address,
    recv_message,
    result_from_wrapper,
    result_wrapper,
    send_message,
)
from repro.experiments import storage as _storage

#: Default lease lifetime.  Workers renew after every completed cell,
#: so the timeout only has to exceed the *longest single cell* plus
#: network slack, not the whole chunk.
DEFAULT_LEASE_TIMEOUT_S = 60.0

#: How long a worker sleeps when told to wait (all work leased out).
_WAIT_S = 0.25

#: Test hook: a worker SIGKILLs itself after executing this many cells
#: (before publishing them), simulating mid-chunk host death.
_KILL_AFTER_ENV = "REPRO_WORKER_KILL_AFTER"


class DistributedExecutionError(RuntimeError):
    """A worker reported a failed cell, or the backend misbehaved."""


# ----------------------------------------------------------------------
# The lease queue
# ----------------------------------------------------------------------

class Lease:
    """One granted chunk: worker, plan positions, renewal deadline."""

    __slots__ = ("lease_id", "worker", "positions", "deadline")

    def __init__(self, lease_id: int, worker: str,
                 positions: List[int], deadline: float) -> None:
        self.lease_id = lease_id
        self.worker = worker
        self.positions = positions
        self.deadline = deadline


class LeaseQueue:
    """Crash-safe bookkeeping over a campaign's dispatch tasks.

    Purely in-memory and single-locked by the coordinator: durability
    of *results* lives in the journal/cache, so the queue only has to
    guarantee that no pending chunk is ever lost — a lease either
    completes (released) or expires (refronted for reassignment).
    """

    def __init__(self, tasks: Sequence[Sequence[int]],
                 lease_timeout: float) -> None:
        self._pending = deque(list(task) for task in tasks)
        self._timeout = lease_timeout
        self._leases: Dict[int, Lease] = {}
        self._next_id = 1
        #: Chunks reassigned after their worker stopped renewing.
        self.expired = 0

    def lease(self, worker: str, now: float,
              skip: Callable[[int], bool]) -> Optional[Lease]:
        """Grant the next chunk to ``worker``, dropping positions that
        were filled since the task was built (late duplicate
        deliveries, cache restores)."""
        while self._pending:
            positions = [position for position in self._pending.popleft()
                         if not skip(position)]
            if not positions:
                continue
            lease = Lease(self._next_id, worker, positions,
                          now + self._timeout)
            self._next_id += 1
            self._leases[lease.lease_id] = lease
            return lease
        return None

    def renew(self, lease_id: int, now: float) -> bool:
        """Extend a lease's deadline; ``False`` if it already expired
        (the chunk is being re-run elsewhere — the renewing worker may
        still publish, idempotently)."""
        lease = self._leases.get(lease_id)
        if lease is None:
            return False
        lease.deadline = now + self._timeout
        return True

    def release(self, lease_id: int) -> Optional[Lease]:
        """Complete a lease (after its results were delivered)."""
        return self._leases.pop(lease_id, None)

    def expire(self, now: float) -> List[Lease]:
        """Expire overdue leases, refronting their chunks so the
        oldest (most-delayed) work is re-granted first."""
        overdue = [lease for lease in self._leases.values()
                   if lease.deadline <= now]
        for lease in overdue:
            del self._leases[lease.lease_id]
            self._pending.appendleft(list(lease.positions))
            self.expired += 1
        return overdue

    def abandon(self, worker: str) -> List[Lease]:
        """Release every lease held by a disconnected worker at once
        (faster than waiting out the timeout)."""
        dropped = [lease for lease in self._leases.values()
                   if lease.worker == worker]
        for lease in dropped:
            del self._leases[lease.lease_id]
            self._pending.appendleft(list(lease.positions))
            self.expired += 1
        return dropped

    @property
    def outstanding(self) -> int:
        return len(self._leases)

    @property
    def drained(self) -> bool:
        return not self._pending and not self._leases


# ----------------------------------------------------------------------
# The coordinator
# ----------------------------------------------------------------------

class Coordinator:
    """TCP work server for one campaign's pending cells.

    Owns the lease queue, accepts worker connections (one handler
    thread each), restores/imports published results through the
    ``finish`` callback provided by :func:`execute_plan` (which
    journals, caches and fires the progress callback), and records
    worker lifecycle — joins, departures, lease failovers — in the
    campaign run log.
    """

    def __init__(self, plan: Sequence, tasks: Sequence[Sequence[int]],
                 *, total: int,
                 is_filled: Callable[[int], bool],
                 finish: Callable[[int, object], None],
                 observe: Optional[Callable[[int, float], None]] = None,
                 lease_timeout: float = DEFAULT_LEASE_TIMEOUT_S,
                 bind: str = "127.0.0.1:0",
                 run_log: Optional[str] = None,
                 heartbeat_dir: Optional[str] = None) -> None:
        self._plan = plan
        self._total = total
        self._is_filled = is_filled
        self._finish = finish
        self._observe = observe
        self._queue = LeaseQueue(tasks, lease_timeout)
        self._lease_timeout = lease_timeout
        self._cond = threading.Condition()
        self._failure: Optional[BaseException] = None
        self._closing = False
        self._threads: List[threading.Thread] = []
        self._workers_seen = 0
        self._heartbeat_dir = heartbeat_dir
        self._run_log = None
        if run_log is not None:
            from repro.obs.telemetry import RunLog
            self._run_log = RunLog(run_log)
        if heartbeat_dir:
            os.makedirs(heartbeat_dir, exist_ok=True)

        host, port = parse_address(bind)
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "Coordinator":
        accept = threading.Thread(target=self._accept_loop,
                                  name="repro-coordinator-accept",
                                  daemon=True)
        accept.start()
        self._threads.append(accept)
        return self

    def wait(self, timeout: Optional[float] = None) -> None:
        """Block until every pending cell is delivered.

        Doubles as the lease watchdog: each tick expires overdue
        leases, logs the failover, and refronts their chunks.
        Raises :class:`DistributedExecutionError` if a worker reported
        a failed cell or ``timeout`` elapses first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        tick = max(0.05, min(1.0, self._lease_timeout / 4.0))
        with self._cond:
            while True:
                for lease in self._queue.expire(time.monotonic()):
                    self._log("lease_expired", worker=lease.worker,
                              lease=lease.lease_id,
                              cells=[self._plan[position].key
                                     for position in lease.positions])
                if self._failure is not None:
                    raise DistributedExecutionError(
                        str(self._failure)) from self._failure
                if self._queue.drained:
                    return
                if deadline is not None and time.monotonic() >= deadline:
                    raise DistributedExecutionError(
                        f"campaign did not drain within {timeout}s "
                        f"({self._queue.outstanding} leases outstanding)")
                self._cond.wait(tick)

    def close(self) -> None:
        with self._cond:
            self._closing = True
            self._cond.notify_all()
        try:
            self._listener.close()
        except OSError:
            pass
        for thread in self._threads:
            thread.join(timeout=2.0)
        if self._run_log is not None:
            self._run_log.close()
            self._run_log = None

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals ------------------------------------------------------

    def _log(self, event: str, **fields) -> None:
        if self._run_log is not None:
            self._run_log.log(event, **fields)

    def _beat(self, worker: str, **fields) -> None:
        if self._heartbeat_dir:
            from repro.obs.telemetry import write_heartbeat
            write_heartbeat(self._heartbeat_dir, worker,
                            total=self._total, **fields)

    def _accept_loop(self) -> None:
        while True:
            with self._cond:
                if self._closing:
                    return
            try:
                conn, addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed
            handler = threading.Thread(
                target=self._serve, args=(conn, addr),
                name=f"repro-coordinator-{addr[0]}:{addr[1]}",
                daemon=True)
            handler.start()
            self._threads.append(handler)

    def _serve(self, conn: socket.socket, addr) -> None:
        worker = f"{addr[0]}:{addr[1]}"
        joined = False
        try:
            with conn:
                hello = recv_message(conn)
                if hello is None or hello.get("type") != "hello":
                    return
                if hello.get("protocol") != PROTOCOL_VERSION or \
                        hello.get("format_version") != \
                        _storage.FORMAT_VERSION:
                    send_message(conn, {
                        "type": "error",
                        "error": f"version mismatch: coordinator speaks "
                                 f"protocol {PROTOCOL_VERSION} / format "
                                 f"{_storage.FORMAT_VERSION}, worker "
                                 f"offered {hello.get('protocol')!r} / "
                                 f"{hello.get('format_version')!r}"})
                    return
                worker = str(hello.get("worker") or worker)
                joined = True
                with self._cond:
                    self._workers_seen += 1
                self._log("worker_joined", worker=worker,
                          jobs=hello.get("jobs"), addr=addr[0])
                self._beat(worker, done=0, current=None)
                send_message(conn, {"type": "welcome",
                                    "protocol": PROTOCOL_VERSION,
                                    "format_version":
                                        _storage.FORMAT_VERSION,
                                    "total": self._total})
                while True:
                    message = recv_message(conn)
                    if message is None:
                        return
                    reply = self._handle(worker, message)
                    send_message(conn, reply)
                    if reply["type"] in ("drained", "abort", "error"):
                        return
        except (ProtocolError, OSError) as error:
            self._log("worker_error", worker=worker, error=repr(error))
        finally:
            dropped: List[Lease] = []
            with self._cond:
                dropped = self._queue.abandon(worker)
                self._cond.notify_all()
            if joined:
                for lease in dropped:
                    self._log("lease_expired", worker=worker,
                              lease=lease.lease_id, reason="disconnect",
                              cells=[self._plan[position].key
                                     for position in lease.positions])
                self._log("worker_left", worker=worker,
                          leases_dropped=len(dropped))

    def _handle(self, worker: str, message: dict) -> dict:
        kind = message.get("type")
        if kind == "lease":
            return self._handle_lease(worker, message)
        if kind == "renew":
            return self._handle_renew(worker, message)
        if kind == "offer":
            return self._handle_offer(worker, message)
        if kind == "publish":
            return self._handle_publish(worker, message)
        if kind == "failed":
            return self._handle_failed(worker, message)
        if kind == "bye":
            return {"type": "drained"}
        raise ProtocolError(f"unknown message type {kind!r}")

    def _handle_lease(self, worker: str, message: dict) -> dict:
        with self._cond:
            if self._failure is not None:
                return {"type": "abort"}
            if self._queue.drained:
                # Checked before _closing: a worker that asks for more
                # work while the coordinator is shutting down after a
                # successful drain should exit 0, not abort.
                return {"type": "drained"}
            if self._closing:
                return {"type": "abort"}
            lease = self._queue.lease(worker, time.monotonic(),
                                      skip=self._is_filled)
            if lease is not None:
                cells = [descriptor_to_dict(self._plan[position])
                         for position in lease.positions]
                positions = list(lease.positions)
                lease_id = lease.lease_id
            elif self._queue.drained:
                return {"type": "drained"}
            else:
                return {"type": "wait", "seconds": _WAIT_S}
        self._log("lease", worker=worker, lease=lease_id,
                  cells=len(positions))
        return {"type": "work", "lease": lease_id,
                "positions": positions, "cells": cells}

    def _handle_renew(self, worker: str, message: dict) -> dict:
        with self._cond:
            valid = self._queue.renew(int(message.get("lease", -1)),
                                      time.monotonic())
        self._beat(worker, done=message.get("done", 0),
                   current=message.get("current"),
                   events_per_sec=message.get("events_per_sec"))
        return {"type": "ok", "valid": valid}

    def _handle_offer(self, worker: str, message: dict) -> dict:
        """Content negotiation: of the digests the worker holds, name
        the ones the coordinator still needs (hash-keyed, so a warm
        worker-local cache or a duplicate re-run transfers nothing)."""
        want = []
        with self._cond:
            self._queue.renew(int(message.get("lease", -1)),
                              time.monotonic())
            for row in message.get("rows", ()):
                if not self._is_filled(int(row["position"])):
                    want.append(row["digest"])
        return {"type": "want", "digests": want}

    def _handle_publish(self, worker: str, message: dict) -> dict:
        imported = 0
        with self._cond:
            for row in message.get("rows", ()):
                position = int(row["position"])
                if self._is_filled(position):
                    continue  # duplicate delivery after reassignment
                result = result_from_wrapper(row["object"])
                descriptor = self._plan[position]
                if self._observe is not None and "wall_s" in row:
                    self._observe(position, float(row["wall_s"]))
                self._finish(position, result)
                imported += 1
                self._log("finish", key=descriptor.key,
                          seed=descriptor.seed,
                          spec=descriptor.spec.identity,
                          size=descriptor.size,
                          duration_s=row.get("wall_s"),
                          events=row.get("events", 0),
                          completed=result.completed,
                          download_time=result.download_time,
                          worker=worker)
            self._queue.release(int(message.get("lease", -1)))
            self._cond.notify_all()
        self._beat(worker, done=message.get("done", 0), current=None)
        return {"type": "ok", "imported": imported}

    def _handle_failed(self, worker: str, message: dict) -> dict:
        position = message.get("position")
        error = message.get("error", "unknown worker failure")
        descriptor = (self._plan[int(position)]
                      if position is not None else None)
        if descriptor is not None:
            self._log("fail", key=descriptor.key, seed=descriptor.seed,
                      spec=descriptor.spec.identity,
                      size=descriptor.size, error=error, worker=worker)
        with self._cond:
            self._failure = DistributedExecutionError(
                f"worker {worker} failed "
                f"{'cell ' + descriptor.key if descriptor else 'a cell'}"
                f": {error}")
            self._cond.notify_all()
        return {"type": "abort"}


# ----------------------------------------------------------------------
# The worker
# ----------------------------------------------------------------------

def _connect(address: Tuple[str, int], retry_s: float,
             interval: float = 0.2) -> socket.socket:
    """Dial the coordinator, retrying briefly: an ssh-spawned worker
    can win the race against the coordinator's listener."""
    deadline = time.monotonic() + retry_s
    while True:
        try:
            return socket.create_connection(address, timeout=30.0)
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(interval)


def run_worker(connect: str, jobs: int = 1,
               cache_dir: Optional[str] = None,
               label: Optional[str] = None,
               retry_s: float = 10.0,
               stream=None) -> int:
    """The ``repro worker`` daemon: lease, execute, publish, repeat.

    Returns a shell exit status: 0 when the coordinator drained its
    plan, 1 on abort/failure.  ``jobs`` > 1 fans a leased chunk out
    over a local process pool (0 = affinity-aware core count, the
    same :func:`~repro.experiments.parallel.default_jobs` the pool
    backend uses); ``cache_dir`` opens a worker-local run cache so
    previously computed cells are served — and offered to the
    coordinator by digest — without re-execution.
    """
    from repro.cache import RunCache
    from repro.experiments.parallel import default_jobs

    stream = stream if stream is not None else sys.stderr
    label = label or f"{socket.gethostname()}-{os.getpid()}"
    if jobs is None or jobs <= 0:
        jobs = default_jobs()
    kill_after = int(os.environ.get(_KILL_AFTER_ENV, "0") or 0)
    cache = RunCache(cache_dir) if cache_dir else None
    sock = _connect(parse_address(connect), retry_s)
    done = 0
    executed = 0
    try:
        send_message(sock, {"type": "hello", "worker": label,
                            "jobs": jobs,
                            "protocol": PROTOCOL_VERSION,
                            "format_version": _storage.FORMAT_VERSION})
        welcome = recv_message(sock)
        if welcome is None or welcome.get("type") != "welcome":
            error = (welcome or {}).get("error", "handshake rejected")
            print(f"[worker {label}] {error}", file=stream, flush=True)
            return 1
        while True:
            send_message(sock, {"type": "lease"})
            grant = recv_message(sock)
            if grant is None:
                print(f"[worker {label}] coordinator vanished",
                      file=stream, flush=True)
                return 1
            kind = grant.get("type")
            if kind == "wait":
                time.sleep(float(grant.get("seconds", _WAIT_S)))
                continue
            if kind == "drained":
                return 0
            if kind != "work":
                print(f"[worker {label}] {grant.get('error', kind)}",
                      file=stream, flush=True)
                return 1

            lease_id = grant["lease"]
            cells = list(zip(grant["positions"],
                             (descriptor_from_dict(data)
                              for data in grant["cells"])))
            rows = _execute_chunk(sock, lease_id, label, cells, jobs,
                                  cache, kill_after, executed, stream)
            if rows is None:
                return 1  # a cell failed; coordinator told us to abort
            executed += sum(1 for row in rows if not row["cached"])
            done += len(rows)

            # Offer digests first: the coordinator names what it still
            # needs, so duplicates and warm worker-cache hits ship
            # nothing but a hash.
            send_message(sock, {
                "type": "offer", "lease": lease_id,
                "rows": [{"position": row["position"],
                          "key": row["key"],
                          "digest": row["digest"]} for row in rows]})
            want = recv_message(sock)
            if want is None or want.get("type") != "want":
                return 1
            wanted = set(want.get("digests", ()))
            send_message(sock, {
                "type": "publish", "lease": lease_id, "done": done,
                "rows": [{"position": row["position"],
                          "digest": row["digest"],
                          "wall_s": row["wall_s"],
                          "events": row["events"],
                          "object": row["object"]}
                         for row in rows if row["digest"] in wanted]})
            ack = recv_message(sock)
            if ack is None or ack.get("type") == "abort":
                return 1
    finally:
        try:
            sock.close()
        except OSError:
            pass
        if cache is not None:
            cache.close()


def _execute_chunk(sock, lease_id: int, label: str,
                   cells: Sequence[Tuple[int, object]], jobs: int,
                   cache, kill_after: int, executed_before: int,
                   stream) -> Optional[List[dict]]:
    """Run one leased chunk; returns publishable rows or ``None`` if a
    cell failed (after reporting it).  Renews the lease after every
    completed cell so slow chunks never expire under a live worker."""
    from repro.cache.store import cache_digest
    from repro.experiments.parallel import execute_descriptor_ex

    def renew(current: Optional[str]) -> None:
        send_message(sock, {"type": "renew", "lease": lease_id,
                            "done": executed_before, "current": current})
        reply = recv_message(sock)
        if reply is None:
            raise ProtocolError("coordinator vanished during renewal")
        # An invalid lease (expired, reassigned) is *not* fatal: the
        # results remain deliverable idempotently.

    rows: List[dict] = []
    executed = executed_before

    def row_for(position: int, descriptor, result, wall: float,
                events: int, cached: bool) -> dict:
        key = descriptor.key
        return {"position": position, "key": key,
                "digest": cache_digest(key, _storage.FORMAT_VERSION),
                "wall_s": round(wall, 6), "events": events,
                "cached": cached,
                "object": result_wrapper(key, result)}

    pending: List[Tuple[int, object]] = []
    for position, descriptor in cells:
        hit = cache.get(descriptor.key) if cache is not None else None
        if hit is not None:
            rows.append(row_for(position, descriptor, hit, 0.0, 0, True))
        else:
            pending.append((position, descriptor))

    try:
        if jobs > 1 and len(pending) > 1:
            from concurrent.futures import ProcessPoolExecutor, \
                as_completed
            with ProcessPoolExecutor(
                    max_workers=min(jobs, len(pending))) as pool:
                futures = {pool.submit(execute_descriptor_ex, descriptor):
                           (position, descriptor)
                           for position, descriptor in pending}
                for future in as_completed(futures):
                    position, descriptor = futures[future]
                    result, _report, wall = future.result()
                    executed += 1
                    if cache is not None:
                        cache.put(result)
                    rows.append(row_for(position, descriptor, result,
                                        wall, 0, False))
                    if kill_after and executed >= kill_after:
                        os.kill(os.getpid(), signal.SIGKILL)
                    renew(f"{descriptor.spec.identity}:{descriptor.size}")
        else:
            for position, descriptor in pending:
                result, _report, wall = execute_descriptor_ex(descriptor)
                executed += 1
                if cache is not None:
                    cache.put(result)
                rows.append(row_for(position, descriptor, result,
                                    wall, 0, False))
                if kill_after and executed >= kill_after:
                    os.kill(os.getpid(), signal.SIGKILL)
                renew(f"{descriptor.spec.identity}:{descriptor.size}")
    except ProtocolError:
        raise
    except BaseException as error:
        position = pending[0][0] if pending else None
        print(f"[worker {label}] cell failed: {error!r}",
              file=stream, flush=True)
        try:
            send_message(sock, {"type": "failed", "lease": lease_id,
                                "position": position,
                                "error": repr(error)})
            recv_message(sock)
        except (ProtocolError, OSError):
            pass
        return None
    rows.sort(key=lambda row: row["position"])
    return rows


# ----------------------------------------------------------------------
# Worker spawners (the subprocess / ssh backends)
# ----------------------------------------------------------------------

def _repro_pythonpath() -> str:
    """PYTHONPATH that lets a spawned ``python -m repro.cli`` find this
    checkout, prepended to whatever the environment already has."""
    import repro
    src = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))
    existing = os.environ.get("PYTHONPATH", "")
    return src + (os.pathsep + existing if existing else "")


def spawn_subprocess_workers(address: Tuple[str, int], count: int,
                             jobs_per_worker: int = 1,
                             cache_dir: Optional[str] = None,
                             extra_env: Optional[dict] = None,
                             ) -> List[subprocess.Popen]:
    """Launch ``count`` localhost ``repro worker`` processes."""
    host, port = address
    env = dict(os.environ)
    env["PYTHONPATH"] = _repro_pythonpath()
    if extra_env:
        env.update(extra_env)
    command = [sys.executable, "-m", "repro.cli", "worker",
               "--connect", f"{host}:{port}",
               "--jobs", str(jobs_per_worker)]
    if cache_dir:
        command += ["--cache", cache_dir]
    return [subprocess.Popen(command, env=env) for _ in range(count)]


def spawn_ssh_workers(address: Tuple[str, int],
                      hosts: Sequence[str],
                      jobs_per_worker: int = 0,
                      remote_command: str = "repro",
                      advertise: Optional[str] = None,
                      ) -> List[subprocess.Popen]:
    """Launch one ``repro worker`` per ssh host.

    ``advertise`` is the coordinator address as *remote* hosts reach
    it (defaults to this machine's hostname — a coordinator bound to
    127.0.0.1 must pass an externally visible bind/advertise pair).
    ``remote_command`` is the repro entry point on the remote host
    (e.g. ``"cd ~/repro && PYTHONPATH=src python -m repro.cli"``).
    """
    host = advertise or socket.gethostname()
    port = address[1]
    workers = []
    for target in hosts:
        remote = (f"{remote_command} worker "
                  f"--connect {host}:{port} "
                  f"--jobs {jobs_per_worker}")
        workers.append(subprocess.Popen(
            ["ssh", "-o", "BatchMode=yes", target, remote]))
    return workers


def _reap(workers: Sequence[subprocess.Popen],
          grace_s: float = 5.0) -> None:
    """Terminate any spawned worker that outlived the campaign."""
    for worker in workers:
        if worker.poll() is None:
            worker.terminate()
    deadline = time.monotonic() + grace_s
    for worker in workers:
        remaining = max(0.1, deadline - time.monotonic())
        try:
            worker.wait(timeout=remaining)
        except subprocess.TimeoutExpired:
            worker.kill()
            worker.wait()


# ----------------------------------------------------------------------
# The execute_plan backend entry point
# ----------------------------------------------------------------------

def execute_distributed(plan: Sequence, pending: Sequence[int], *,
                        total: int,
                        is_filled: Callable[[int], bool],
                        finish: Callable[[int, object], None],
                        observe: Optional[Callable] = None,
                        cost_model=None, dispatch: str = "ljf",
                        chunk: int = 1, jobs: int = 2,
                        backend: str = "subprocess",
                        hosts: Optional[Sequence[str]] = None,
                        bind: str = "127.0.0.1:0",
                        advertise: Optional[str] = None,
                        lease_timeout: float = DEFAULT_LEASE_TIMEOUT_S,
                        worker_cache: Optional[str] = None,
                        run_log: Optional[str] = None,
                        heartbeat_dir: Optional[str] = None,
                        drain_timeout: Optional[float] = None,
                        announce=None) -> None:
    """Run ``pending`` plan positions through a coordinator + workers.

    ``backend`` picks where workers come from: ``"subprocess"`` spawns
    ``jobs`` localhost worker processes, ``"ssh"`` spawns one per host
    in ``hosts``, and ``"tcp"`` only listens — attach workers by hand
    with ``repro worker --connect host:port``.  Results flow through
    ``finish`` exactly as pool execution does, so journal, cache,
    progress and plan-order reassembly are untouched.
    """
    if backend not in ("subprocess", "ssh", "tcp"):
        raise ValueError(f"unknown distributed backend {backend!r}; "
                         f"expected 'subprocess', 'ssh' or 'tcp'")
    if backend == "ssh" and not hosts:
        raise ValueError("backend 'ssh' needs at least one --hosts entry")

    from repro.cache import CostModel, build_tasks
    if cost_model is None:
        cost_model = CostModel()
    slots = (len(hosts) if backend == "ssh"
             else max(1, jobs) if backend == "subprocess" else
             max(1, jobs))
    tasks = build_tasks(list(pending), plan, cost_model, dispatch,
                        chunk, slots)

    def observe_position(position: int, wall_s: float) -> None:
        if observe is not None:
            observe(position, wall_s)

    coordinator = Coordinator(
        plan, tasks, total=total, is_filled=is_filled, finish=finish,
        observe=observe_position, lease_timeout=lease_timeout,
        bind=bind, run_log=run_log, heartbeat_dir=heartbeat_dir)
    workers: List[subprocess.Popen] = []
    try:
        coordinator.start()
        if announce is not None:
            announce(coordinator.address)
        if backend == "subprocess":
            workers = spawn_subprocess_workers(
                coordinator.address, count=max(1, jobs),
                cache_dir=worker_cache)
        elif backend == "ssh":
            workers = spawn_ssh_workers(
                coordinator.address, hosts,
                advertise=advertise)
        coordinator.wait(timeout=drain_timeout)
    finally:
        coordinator.close()
        _reap(workers)

"""Parallel, resumable, cache-warmed campaign execution.

The paper's methodology (Section 3.2) is a large measurement matrix —
configurations x file sizes x repetitions x day periods — and every
cell builds a fresh, independently seeded :class:`Testbed` that shares
no state with any other.  That makes a campaign embarrassingly
parallel: :func:`execute_plan` fans the cells of a
:meth:`Campaign.plan` out over a :class:`ProcessPoolExecutor` and
reassembles the results in serial order.

Three properties are guaranteed:

* **Determinism** — each run is a pure function of its picklable
  :class:`RunDescriptor` (spec, size, seed, period, profiles), so the
  reassembled results list is bit-for-bit equal to what the serial
  loop produces, whatever the worker count, dispatch order, chunking
  or cache state.
* **Resumability** — with a :class:`ResultJournal`, every completed
  run is streamed to disk before the next progress tick, and cells
  already journaled are restored instead of recomputed.  Killing a
  campaign after k runs and re-invoking it executes exactly the
  remaining ``total - k`` cells.
* **Cache warm-starts** — with a :class:`repro.cache.RunCache`, cells
  stored by *any* previous campaign (same descriptor key and storage
  format version) are restored instead of recomputed, so campaigns
  that share configuration cells — fig2/fig3/tab2 all run the same
  "baseline" matrix — compute each unique cell exactly once.

Dispatch is cost-aware: pending cells are submitted longest-job-first
(a :class:`repro.cache.CostModel` calibrated from run-log wall times,
falling back to a size x config heuristic) so the pool never ends
tail-bound on a straggler, tiny cells are batched into chunks to
amortize pickling/IPC overhead, and submission is streamed through a
bounded in-flight window (``jobs x window`` futures) instead of
materializing every pickled descriptor and future upfront.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.runner import RunDescriptor, RunResult
from repro.experiments.storage import ResultJournal

#: ``progress(completed_count, total, result)`` — the same callback
#: signature :class:`Campaign` has always used; under parallel
#: execution results arrive in completion order, not plan order.
ProgressFn = Callable[[int, int, RunResult], None]

#: Pool construction hook; tests swap in an instrumented executor to
#: assert submission-window bounds without real worker processes.
_pool_factory = ProcessPoolExecutor


def default_jobs() -> int:
    """Worker count when the caller asks for 'all cores' (``jobs=0``).

    Respects CPU affinity where the platform exposes it: in a
    container or cgroup pinned to a subset of the machine,
    ``os.cpu_count()`` still reports every installed core and would
    oversubscribe the pool.

    ``--jobs`` counts *campaign cells*, never flows: one cell is one
    worker process running one event engine, and a shared-world cell
    simulates its thousands of background flows inside that single
    engine.  A world campaign at ``--jobs 8`` therefore runs 8
    concurrent worlds -- the fluid kernel is O(log n) per flow event,
    so a many-flow world stays a one-core job and the affinity-derived
    default needs no scaling down.  The ``REPRO_JOBS`` environment
    variable caps the default for the exception: worlds so large that
    per-process memory, not CPU, is the binding resource.
    """
    try:
        affinity = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        affinity = 0
    jobs = affinity or os.cpu_count() or 1
    cap = os.environ.get("REPRO_JOBS", "")
    try:
        capped = int(cap)
    except ValueError:
        return jobs
    if capped > 0:
        jobs = min(jobs, capped)
    return jobs


def execute_descriptor(descriptor: RunDescriptor) -> RunResult:
    """Worker entry point; must be a module-level name to pickle."""
    return descriptor.run()


def execute_chunk(descriptors: Sequence[RunDescriptor]
                  ) -> List[RunResult]:
    """Worker entry point for a batched task of tiny cells.

    One submission, one pickle round-trip, ``len(descriptors)`` runs;
    results come back in task order.
    """
    return [descriptor.run() for descriptor in descriptors]


# ----------------------------------------------------------------------
# Telemetry-carrying execution (the ``--progress`` / ``--profile`` path)
# ----------------------------------------------------------------------
#
# Worker processes cannot share objects with the parent, so telemetry
# state is per-process module globals seeded by the pool initializer.
# The same pair of functions also serves the serial path, so one code
# path produces run logs, heartbeats and instrumentation everywhere.

_WORKER_TELEMETRY = None
_WORKER_PROFILED = False


def _init_worker(run_log_path: Optional[str],
                 heartbeat_dir: Optional[str],
                 total: int, profiled: bool) -> None:
    """Pool initializer: build this process's telemetry state."""
    global _WORKER_TELEMETRY, _WORKER_PROFILED
    if run_log_path is not None or heartbeat_dir is not None:
        from repro.obs.telemetry import WorkerTelemetry
        _WORKER_TELEMETRY = WorkerTelemetry(run_log_path, heartbeat_dir,
                                            total=total)
    _WORKER_PROFILED = profiled


def _reset_worker() -> None:
    """Tear down telemetry state (serial path runs in the parent)."""
    global _WORKER_TELEMETRY, _WORKER_PROFILED
    if _WORKER_TELEMETRY is not None:
        _WORKER_TELEMETRY.close()
    _WORKER_TELEMETRY = None
    _WORKER_PROFILED = False


def execute_descriptor_ex(descriptor: RunDescriptor
                          ) -> Tuple[RunResult, Optional[dict], float]:
    """Worker entry point with telemetry and instrumentation.

    Returns ``(result, report, wall_s)``: ``report`` is the run's
    :meth:`Instrumentation.report` for parent-side merging (``None``
    unless profiling was requested) and ``wall_s`` is the run's wall
    time, surfaced to the parent as a live cost-model calibration
    sample.  A run that raises leaves a ``fail`` record -- naming the
    seed and FlowSpec identity -- in the shared run log before the
    exception propagates to the parent.
    """
    from repro.perf.instrumentation import Instrumentation
    telemetry = _WORKER_TELEMETRY
    inst = Instrumentation()
    started = time.perf_counter()
    if telemetry is not None:
        telemetry.run_started(descriptor)
    try:
        result = descriptor.run(instrumentation=inst)
    except BaseException as error:
        if telemetry is not None:
            telemetry.run_failed(descriptor,
                                 time.perf_counter() - started, error)
        raise
    wall = time.perf_counter() - started
    if telemetry is not None:
        events = int(inst.counters.get("events_processed", 0))
        telemetry.run_finished(descriptor, result, wall, events)
    return result, (inst.report() if _WORKER_PROFILED else None), wall


def execute_chunk_ex(descriptors: Sequence[RunDescriptor]
                     ) -> List[Tuple[RunResult, Optional[dict], float]]:
    """Telemetry-carrying variant of :func:`execute_chunk`."""
    return [execute_descriptor_ex(descriptor)
            for descriptor in descriptors]


def _default_cost_model(run_log: Optional[str]):
    """A cost model for one campaign: run-log calibrated when a
    previous invocation left finish records, heuristic otherwise."""
    from repro.cache import CostModel
    if run_log is not None and os.path.exists(run_log):
        return CostModel.from_run_log(run_log)
    return CostModel()


def execute_plan(plan: Sequence[RunDescriptor],
                 jobs: Optional[int] = 1,
                 progress: Optional[ProgressFn] = None,
                 journal: Union[None, str, Path, ResultJournal] = None,
                 run_log: Optional[str] = None,
                 heartbeat_dir: Optional[str] = None,
                 instrumentation=None,
                 cache=None,
                 cost_model=None,
                 dispatch: str = "ljf",
                 chunk: int = 1,
                 window: int = 2,
                 backend: str = "pool",
                 hosts: Optional[Sequence[str]] = None,
                 bind: str = "127.0.0.1:0",
                 advertise: Optional[str] = None,
                 lease_timeout: float = 60.0,
                 worker_cache: Optional[str] = None,
                 drain_timeout: Optional[float] = None,
                 ) -> List[RunResult]:
    """Execute campaign cells, serially or across worker processes.

    ``jobs`` <= 1 runs in-process in plan order (the historical serial
    behaviour); ``jobs`` = 0 or None means one worker per available
    CPU (affinity-aware).  ``journal`` may be a path (opened and
    closed here) or an existing :class:`ResultJournal`.  ``cache`` may
    be a directory path (opened and closed here) or an existing
    :class:`repro.cache.RunCache`; cells found in either store are
    restored instead of recomputed, cache hits are mirrored into the
    journal (so crash-resume still sees a complete record) and journal
    hits are mirrored into the cache (so old journals warm the shared
    store).  The returned list is always in plan order, bit-identical
    to serial execution regardless of any of these knobs.

    Dispatch under ``jobs > 1`` is cost-aware: ``dispatch`` picks the
    submission order ("ljf" longest-job-first, or "plan"),
    ``cost_model`` (a :class:`repro.cache.CostModel`; default:
    calibrated from ``run_log`` if one exists) supplies the estimates,
    ``chunk`` > 1 batches tiny cells into one task, and at most
    ``jobs x window`` submitted tasks are in flight at once — the rest
    of the plan stays unsubmitted until a slot frees, capping
    parent-side memory.

    ``run_log`` (a path) streams start/finish/fail records for every
    run; ``heartbeat_dir`` makes each worker publish live heartbeat
    files for a :class:`repro.obs.telemetry.ProgressRenderer`;
    ``instrumentation`` (a parent-process :class:`Instrumentation`)
    receives every worker's merged phase timers and counters, which is
    what makes ``--profile`` meaningful under ``--jobs N``.

    ``backend`` selects *where* workers run: ``"pool"`` (the default
    single-host process pool), or a distributed backend served by a
    TCP coordinator (:mod:`repro.experiments.distributed`) —
    ``"subprocess"`` spawns ``jobs`` localhost ``repro worker``
    processes, ``"ssh"`` spawns one per entry in ``hosts``, ``"tcp"``
    only listens so workers can be attached by hand.  Whatever host
    runs whatever cell, results are reassembled by plan position and
    stay byte-identical to serial execution; journal, cache, run log
    and progress plumbing are shared with the pool path.
    """
    plan = list(plan)
    total = len(plan)
    if jobs is None or jobs == 0:
        jobs = default_jobs()
    telemetered = (run_log is not None or heartbeat_dir is not None
                   or instrumentation is not None)
    owns_journal = isinstance(journal, (str, Path))
    if owns_journal:
        journal = ResultJournal(journal)
    owns_cache = isinstance(cache, (str, Path))
    if owns_cache:
        from repro.cache import RunCache
        cache = RunCache(cache)
    try:
        slots: List[Optional[RunResult]] = [None] * total
        pending: List[int] = []
        done = 0
        for position, descriptor in enumerate(plan):
            key = descriptor.key
            restored = journal.get(key) if journal is not None else None
            if restored is not None and cache is not None:
                cache.put(restored)   # old journals warm the cache
            elif restored is None and cache is not None:
                restored = cache.get(key)
                if restored is not None and journal is not None:
                    journal.record(restored)   # keep resume complete
            if restored is not None:
                slots[position] = restored
                done += 1
                if progress is not None:
                    progress(done, total, restored)
            else:
                pending.append(position)

        def finish(position: int, result: RunResult) -> None:
            nonlocal done
            if journal is not None:
                journal.record(result)
            if cache is not None:
                cache.put(result)
            slots[position] = result
            done += 1
            if progress is not None:
                progress(done, total, result)

        def merge(report: Optional[dict]) -> None:
            if instrumentation is not None and report:
                instrumentation.merge_report(report)

        if cost_model is None:
            cost_model = _default_cost_model(run_log)

        if backend != "pool":
            if instrumentation is not None:
                raise ValueError(
                    "--profile is not supported under distributed "
                    "backends: worker instrumentation does not travel "
                    "over the wire")
            if pending:
                from repro.experiments.distributed import \
                    execute_distributed
                execute_distributed(
                    plan, pending, total=total,
                    is_filled=lambda position: slots[position] is not None,
                    finish=finish,
                    observe=lambda position, wall:
                        cost_model.observe(plan[position], wall),
                    cost_model=cost_model, dispatch=dispatch,
                    chunk=chunk, jobs=jobs, backend=backend,
                    hosts=hosts, bind=bind, advertise=advertise,
                    lease_timeout=lease_timeout,
                    worker_cache=worker_cache,
                    run_log=run_log, heartbeat_dir=heartbeat_dir,
                    drain_timeout=drain_timeout)
        elif jobs <= 1 or len(pending) <= 1:
            if telemetered:
                _init_worker(run_log, heartbeat_dir, total,
                             instrumentation is not None)
                try:
                    for position in pending:
                        result, report, wall = execute_descriptor_ex(
                            plan[position])
                        merge(report)
                        cost_model.observe(plan[position], wall)
                        finish(position, result)
                finally:
                    _reset_worker()
            else:
                for position in pending:
                    finish(position, plan[position].run())
        else:
            from repro.cache import build_tasks
            workers = min(jobs, len(pending))
            tasks = deque(build_tasks(pending, plan, cost_model,
                                      dispatch, chunk, workers))
            max_inflight = workers * max(1, window)
            inflight: Dict[object, List[int]] = {}
            entry = (execute_chunk_ex if telemetered else execute_chunk)
            pool_kwargs = {}
            if telemetered:
                pool_kwargs = dict(
                    initializer=_init_worker,
                    initargs=(run_log, heartbeat_dir, total,
                              instrumentation is not None))

            try:
                with _pool_factory(max_workers=workers,
                                   **pool_kwargs) as pool:

                    def top_up() -> None:
                        while tasks and len(inflight) < max_inflight:
                            positions = tasks.popleft()
                            future = pool.submit(
                                entry,
                                [plan[position] for position in positions])
                            inflight[future] = positions

                    top_up()
                    while inflight:
                        completed, _ = wait(inflight,
                                            return_when=FIRST_COMPLETED)
                        for future in completed:
                            positions = inflight.pop(future)
                            payloads = future.result()
                            for position, payload in zip(positions,
                                                         payloads):
                                if telemetered:
                                    result, report, wall = payload
                                    merge(report)
                                    cost_model.observe(plan[position],
                                                       wall)
                                else:
                                    result = payload
                                finish(position, result)
                        top_up()
            except BaseException:
                # Pool shutdown has drained the siblings by now; runs
                # that finished but were never consumed from their
                # futures must still reach the journal (and cache), or
                # a failed worker throws away their completed work on
                # resume.  (Cells that finished *inside* a failing
                # chunk are lost with it — the chunk's future carries
                # only the exception.)
                if journal is not None or cache is not None:
                    for future, positions in inflight.items():
                        if not (future.done() and not future.cancelled()
                                and future.exception() is None):
                            continue
                        for position, payload in zip(positions,
                                                     future.result()):
                            if slots[position] is not None:
                                continue
                            result = (payload[0] if telemetered
                                      else payload)
                            if journal is not None:
                                journal.record(result)
                            if cache is not None:
                                cache.put(result)
                raise

        missing = [position for position, result in enumerate(slots)
                   if result is None]
        if missing:
            # Not an assert: this must fail fast even under python -O,
            # e.g. if a journal key ever collided with a different cell.
            raise RuntimeError(
                f"execute_plan left {len(missing)} of {total} cells "
                f"unfilled (first at plan position {missing[0]})")
        return slots
    finally:
        if owns_journal:
            journal.close()
        if owns_cache:
            cache.close()

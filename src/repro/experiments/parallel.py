"""Parallel, resumable campaign execution.

The paper's methodology (Section 3.2) is a large measurement matrix —
configurations x file sizes x repetitions x day periods — and every
cell builds a fresh, independently seeded :class:`Testbed` that shares
no state with any other.  That makes a campaign embarrassingly
parallel: :func:`execute_plan` fans the cells of a
:meth:`Campaign.plan` out over a :class:`ProcessPoolExecutor` and
reassembles the results in serial order.

Two properties are guaranteed:

* **Determinism** — each run is a pure function of its picklable
  :class:`RunDescriptor` (spec, size, seed, period, profiles), so the
  reassembled results list is bit-for-bit equal to what the serial
  loop produces, whatever the worker count or completion order.
* **Resumability** — with a :class:`ResultJournal`, every completed
  run is streamed to disk before the next progress tick, and cells
  already journaled are restored instead of recomputed.  Killing a
  campaign after k runs and re-invoking it executes exactly the
  remaining ``total - k`` cells.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.experiments.runner import RunDescriptor, RunResult
from repro.experiments.storage import ResultJournal

#: ``progress(completed_count, total, result)`` — the same callback
#: signature :class:`Campaign` has always used; under parallel
#: execution results arrive in completion order, not plan order.
ProgressFn = Callable[[int, int, RunResult], None]


def default_jobs() -> int:
    """Worker count when the caller asks for 'all cores' (``jobs=0``)."""
    return os.cpu_count() or 1


def execute_descriptor(descriptor: RunDescriptor) -> RunResult:
    """Worker entry point; must be a module-level name to pickle."""
    return descriptor.run()


# ----------------------------------------------------------------------
# Telemetry-carrying execution (the ``--progress`` / ``--profile`` path)
# ----------------------------------------------------------------------
#
# Worker processes cannot share objects with the parent, so telemetry
# state is per-process module globals seeded by the pool initializer.
# The same pair of functions also serves the serial path, so one code
# path produces run logs, heartbeats and instrumentation everywhere.

_WORKER_TELEMETRY = None
_WORKER_PROFILED = False


def _init_worker(run_log_path: Optional[str],
                 heartbeat_dir: Optional[str],
                 total: int, profiled: bool) -> None:
    """Pool initializer: build this process's telemetry state."""
    global _WORKER_TELEMETRY, _WORKER_PROFILED
    if run_log_path is not None or heartbeat_dir is not None:
        from repro.obs.telemetry import WorkerTelemetry
        _WORKER_TELEMETRY = WorkerTelemetry(run_log_path, heartbeat_dir,
                                            total=total)
    _WORKER_PROFILED = profiled


def _reset_worker() -> None:
    """Tear down telemetry state (serial path runs in the parent)."""
    global _WORKER_TELEMETRY, _WORKER_PROFILED
    if _WORKER_TELEMETRY is not None:
        _WORKER_TELEMETRY.close()
    _WORKER_TELEMETRY = None
    _WORKER_PROFILED = False


def execute_descriptor_ex(descriptor: RunDescriptor
                          ) -> Tuple[RunResult, Optional[dict]]:
    """Worker entry point with telemetry and instrumentation.

    Returns ``(result, report)`` where ``report`` is the run's
    :meth:`Instrumentation.report` for parent-side merging (``None``
    unless profiling was requested).  A run that raises leaves a
    ``fail`` record -- naming the seed and FlowSpec identity -- in the
    shared run log before the exception propagates to the parent.
    """
    from repro.perf.instrumentation import Instrumentation
    telemetry = _WORKER_TELEMETRY
    inst = Instrumentation()
    started = time.perf_counter()
    if telemetry is not None:
        telemetry.run_started(descriptor)
    try:
        result = descriptor.run(instrumentation=inst)
    except BaseException as error:
        if telemetry is not None:
            telemetry.run_failed(descriptor,
                                 time.perf_counter() - started, error)
        raise
    if telemetry is not None:
        events = int(inst.counters.get("events_processed", 0))
        telemetry.run_finished(descriptor, result,
                               time.perf_counter() - started, events)
    return result, (inst.report() if _WORKER_PROFILED else None)


def execute_plan(plan: Sequence[RunDescriptor],
                 jobs: Optional[int] = 1,
                 progress: Optional[ProgressFn] = None,
                 journal: Union[None, str, Path, ResultJournal] = None,
                 run_log: Optional[str] = None,
                 heartbeat_dir: Optional[str] = None,
                 instrumentation=None,
                 ) -> List[RunResult]:
    """Execute campaign cells, serially or across worker processes.

    ``jobs`` <= 1 runs in-process in plan order (the historical serial
    behaviour); ``jobs`` = 0 or None means one worker per CPU core.
    ``journal`` may be a path (opened and closed here) or an existing
    :class:`ResultJournal`.  The returned list is always in plan order.

    ``run_log`` (a path) streams start/finish/fail records for every
    run; ``heartbeat_dir`` makes each worker publish live heartbeat
    files for a :class:`repro.obs.telemetry.ProgressRenderer`;
    ``instrumentation`` (a parent-process :class:`Instrumentation`)
    receives every worker's merged phase timers and counters, which is
    what makes ``--profile`` meaningful under ``--jobs N``.
    """
    plan = list(plan)
    total = len(plan)
    if jobs is None or jobs == 0:
        jobs = default_jobs()
    telemetered = (run_log is not None or heartbeat_dir is not None
                   or instrumentation is not None)
    owns_journal = isinstance(journal, (str, Path))
    if owns_journal:
        journal = ResultJournal(journal)
    try:
        slots: List[Optional[RunResult]] = [None] * total
        pending: List[int] = []
        done = 0
        for position, descriptor in enumerate(plan):
            cached = (journal.get(descriptor.key)
                      if journal is not None else None)
            if cached is not None:
                slots[position] = cached
                done += 1
                if progress is not None:
                    progress(done, total, cached)
            else:
                pending.append(position)

        def finish(position: int, result: RunResult) -> None:
            nonlocal done
            if journal is not None:
                journal.record(result)
            slots[position] = result
            done += 1
            if progress is not None:
                progress(done, total, result)

        def merge(report: Optional[dict]) -> None:
            if instrumentation is not None and report:
                instrumentation.merge_report(report)

        if jobs <= 1 or len(pending) <= 1:
            if telemetered:
                _init_worker(run_log, heartbeat_dir, total,
                             instrumentation is not None)
                try:
                    for position in pending:
                        result, report = execute_descriptor_ex(
                            plan[position])
                        merge(report)
                        finish(position, result)
                finally:
                    _reset_worker()
            else:
                for position in pending:
                    finish(position, plan[position].run())
        else:
            workers = min(jobs, len(pending))
            futures = {}
            entry = (execute_descriptor_ex if telemetered
                     else execute_descriptor)
            pool_kwargs = {}
            if telemetered:
                pool_kwargs = dict(
                    initializer=_init_worker,
                    initargs=(run_log, heartbeat_dir, total,
                              instrumentation is not None))
            try:
                with ProcessPoolExecutor(max_workers=workers,
                                         **pool_kwargs) as pool:
                    futures = {pool.submit(entry,
                                           plan[position]): position
                               for position in pending}
                    for future in as_completed(futures):
                        if telemetered:
                            result, report = future.result()
                            merge(report)
                        else:
                            result = future.result()
                        finish(futures[future], result)
            except BaseException:
                # Pool shutdown has drained the siblings by now; runs
                # that finished but were never yielded by as_completed
                # must still reach the journal, or a failed worker
                # throws away their completed work on resume.
                if journal is not None:
                    for future, position in futures.items():
                        if (slots[position] is None and future.done()
                                and not future.cancelled()
                                and future.exception() is None):
                            payload = future.result()
                            journal.record(payload[0] if telemetered
                                           else payload)
                raise

        missing = [position for position, result in enumerate(slots)
                   if result is None]
        if missing:
            # Not an assert: this must fail fast even under python -O,
            # e.g. if a journal key ever collided with a different cell.
            raise RuntimeError(
                f"execute_plan left {len(missing)} of {total} cells "
                f"unfilled (first at plan position {missing[0]})")
        return slots
    finally:
        if owns_journal:
            journal.close()

"""Parallel, resumable campaign execution.

The paper's methodology (Section 3.2) is a large measurement matrix —
configurations x file sizes x repetitions x day periods — and every
cell builds a fresh, independently seeded :class:`Testbed` that shares
no state with any other.  That makes a campaign embarrassingly
parallel: :func:`execute_plan` fans the cells of a
:meth:`Campaign.plan` out over a :class:`ProcessPoolExecutor` and
reassembles the results in serial order.

Two properties are guaranteed:

* **Determinism** — each run is a pure function of its picklable
  :class:`RunDescriptor` (spec, size, seed, period, profiles), so the
  reassembled results list is bit-for-bit equal to what the serial
  loop produces, whatever the worker count or completion order.
* **Resumability** — with a :class:`ResultJournal`, every completed
  run is streamed to disk before the next progress tick, and cells
  already journaled are restored instead of recomputed.  Killing a
  campaign after k runs and re-invoking it executes exactly the
  remaining ``total - k`` cells.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

from repro.experiments.runner import RunDescriptor, RunResult
from repro.experiments.storage import ResultJournal

#: ``progress(completed_count, total, result)`` — the same callback
#: signature :class:`Campaign` has always used; under parallel
#: execution results arrive in completion order, not plan order.
ProgressFn = Callable[[int, int, RunResult], None]


def default_jobs() -> int:
    """Worker count when the caller asks for 'all cores' (``jobs=0``)."""
    return os.cpu_count() or 1


def execute_descriptor(descriptor: RunDescriptor) -> RunResult:
    """Worker entry point; must be a module-level name to pickle."""
    return descriptor.run()


def execute_plan(plan: Sequence[RunDescriptor],
                 jobs: Optional[int] = 1,
                 progress: Optional[ProgressFn] = None,
                 journal: Union[None, str, Path, ResultJournal] = None,
                 ) -> List[RunResult]:
    """Execute campaign cells, serially or across worker processes.

    ``jobs`` <= 1 runs in-process in plan order (the historical serial
    behaviour); ``jobs`` = 0 or None means one worker per CPU core.
    ``journal`` may be a path (opened and closed here) or an existing
    :class:`ResultJournal`.  The returned list is always in plan order.
    """
    plan = list(plan)
    total = len(plan)
    if jobs is None or jobs == 0:
        jobs = default_jobs()
    owns_journal = isinstance(journal, (str, Path))
    if owns_journal:
        journal = ResultJournal(journal)
    try:
        slots: List[Optional[RunResult]] = [None] * total
        pending: List[int] = []
        done = 0
        for position, descriptor in enumerate(plan):
            cached = (journal.get(descriptor.key)
                      if journal is not None else None)
            if cached is not None:
                slots[position] = cached
                done += 1
                if progress is not None:
                    progress(done, total, cached)
            else:
                pending.append(position)

        def finish(position: int, result: RunResult) -> None:
            nonlocal done
            if journal is not None:
                journal.record(result)
            slots[position] = result
            done += 1
            if progress is not None:
                progress(done, total, result)

        if jobs <= 1 or len(pending) <= 1:
            for position in pending:
                finish(position, plan[position].run())
        else:
            workers = min(jobs, len(pending))
            futures = {}
            try:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = {pool.submit(execute_descriptor,
                                           plan[position]): position
                               for position in pending}
                    for future in as_completed(futures):
                        finish(futures[future], future.result())
            except BaseException:
                # Pool shutdown has drained the siblings by now; runs
                # that finished but were never yielded by as_completed
                # must still reach the journal, or a failed worker
                # throws away their completed work on resume.
                if journal is not None:
                    for future, position in futures.items():
                        if (slots[position] is None and future.done()
                                and not future.cancelled()
                                and future.exception() is None):
                            journal.record(future.result())
                raise

        missing = [position for position, result in enumerate(slots)
                   if result is None]
        if missing:
            # Not an assert: this must fail fast even under python -O,
            # e.g. if a journal key ever collided with a different cell.
            raise RuntimeError(
                f"execute_plan left {len(missing)} of {total} cells "
                f"unfilled (first at plan position {missing[0]})")
        return slots
    finally:
        if owns_journal:
            journal.close()

"""Experiment harness: configurations, campaigns, statistics, reports.

* :mod:`repro.experiments.config` -- :class:`FlowSpec` describes one
  transport configuration (SP-WiFi, SP-carrier, MP-2/MP-4 with a
  congestion controller, ...), exactly the labels the paper's figures
  use.
* :mod:`repro.experiments.runner` -- :class:`Measurement` runs one
  download in a fresh testbed and extracts all metrics;
  :class:`Campaign` runs a randomized measurement matrix the way
  Section 3.2 does (shuffled configuration order per round, multiple
  day periods).
* :mod:`repro.experiments.parallel` -- fans campaign cells out over
  worker processes and reassembles them in serial order
  (deterministic), with a resume journal that skips completed cells.
* :mod:`repro.experiments.stats` -- five-number (box-and-whisker)
  summaries, mean +- standard error, and CCDFs.
* :mod:`repro.experiments.report` -- ASCII tables / text "figures" and
  CSV export.
* :mod:`repro.experiments.scenarios` -- one canned campaign per paper
  table and figure.
"""

from repro.experiments.config import FlowSpec
from repro.experiments.parallel import execute_plan
from repro.experiments.runner import (
    Campaign,
    CampaignSpec,
    Measurement,
    RunDescriptor,
    RunResult,
    descriptor_key,
    run_key,
)
from repro.experiments.stats import (
    FiveNumber,
    ccdf,
    ccdf_fraction_above,
    confidence_interval_95,
    five_number,
    jain_fairness,
    mean_stderr,
    quantile,
)
from repro.experiments.plots import (
    boxplot_from_samples,
    render_boxplot,
    render_ccdf,
)
from repro.experiments.report import (
    format_bytes,
    format_ms,
    format_pct,
    format_seconds,
    render_table,
    write_csv,
)
from repro.experiments.storage import (
    ResultJournal,
    load_results,
    merge_results,
    save_results,
)

__all__ = [
    "FlowSpec",
    "Measurement",
    "RunResult",
    "RunDescriptor",
    "descriptor_key",
    "run_key",
    "Campaign",
    "CampaignSpec",
    "execute_plan",
    "ResultJournal",
    "FiveNumber",
    "five_number",
    "mean_stderr",
    "quantile",
    "ccdf",
    "ccdf_fraction_above",
    "confidence_interval_95",
    "jain_fairness",
    "render_table",
    "write_csv",
    "format_bytes",
    "format_ms",
    "format_pct",
    "format_seconds",
    "render_boxplot",
    "render_ccdf",
    "boxplot_from_samples",
    "save_results",
    "load_results",
    "merge_results",
]

"""Canned campaigns and row extractors: one per paper table/figure.

Each ``*_campaign`` function builds the measurement matrix of one
evaluation artifact; each ``*_rows`` function turns campaign results
into exactly the rows/series that artifact reports.  The benchmarks in
``benchmarks/`` are thin wrappers that run a campaign and print/export
these rows.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.config import FlowSpec
from repro.experiments.runner import Campaign, CampaignSpec, RunResult
from repro.experiments.stats import (
    ccdf_at_fractions,
    five_number,
    mean_stderr,
)
from repro.experiments.report import (
    format_bytes,
    format_mean_stderr,
    format_pct,
)
from repro.wireless.profiles import TimeOfDay

KB = 1024
MB = 1024 * 1024

CARRIERS = ("att", "verizon", "sprint")

#: Reduced period set for quick runs; full campaigns use all four.
QUICK_PERIODS = (TimeOfDay.AFTERNOON,)


# ----------------------------------------------------------------------
# Campaign builders
# ----------------------------------------------------------------------

def baseline_campaign(repetitions: int = 3,
                      periods: Tuple[TimeOfDay, ...] = QUICK_PERIODS,
                      base_seed: int = 2013) -> CampaignSpec:
    """Figures 2/3 and Table 2: every carrier, SP vs MP, 4 sizes."""
    specs: List[FlowSpec] = [FlowSpec.single_path("wifi")]
    for carrier in CARRIERS:
        specs.append(FlowSpec.single_path("cell", carrier=carrier))
    for carrier in CARRIERS:
        specs.append(FlowSpec.mptcp(carrier=carrier, controller="coupled"))
    return CampaignSpec(
        name="baseline", specs=tuple(specs),
        sizes=(64 * KB, 512 * KB, 2 * MB, 16 * MB),
        repetitions=repetitions, periods=periods, base_seed=base_seed)


def small_flows_campaign(repetitions: int = 3,
                         periods: Tuple[TimeOfDay, ...] = QUICK_PERIODS,
                         base_seed: int = 2013) -> CampaignSpec:
    """Figures 4/5 and Table 3: AT&T, all controllers, 2 vs 4 paths."""
    specs: List[FlowSpec] = [
        FlowSpec.single_path("wifi"),
        FlowSpec.single_path("cell", carrier="att"),
    ]
    for paths in (2, 4):
        for controller in ("coupled", "olia", "reno"):
            specs.append(FlowSpec.mptcp(carrier="att",
                                        controller=controller, paths=paths))
    return CampaignSpec(
        name="small-flows", specs=tuple(specs),
        sizes=(8 * KB, 64 * KB, 512 * KB, 4 * MB),
        repetitions=repetitions, periods=periods, base_seed=base_seed)


def coffee_shop_campaign(repetitions: int = 3,
                         periods: Tuple[TimeOfDay, ...] = (
                             TimeOfDay.AFTERNOON,),
                         base_seed: int = 2013) -> CampaignSpec:
    """Figures 6/7 and Table 4: busy public hotspot (no olia, as in
    the paper: 'for the sake of time, we did not measure olia')."""
    specs: List[FlowSpec] = [
        FlowSpec.single_path("wifi", wifi="public"),
        FlowSpec.single_path("cell", carrier="att", wifi="public"),
    ]
    for paths in (2, 4):
        for controller in ("coupled", "reno"):
            specs.append(FlowSpec.mptcp(carrier="att", wifi="public",
                                        controller=controller, paths=paths))
    return CampaignSpec(
        name="coffee-shop", specs=tuple(specs),
        sizes=(8 * KB, 64 * KB, 512 * KB, 4 * MB),
        repetitions=repetitions, periods=periods, base_seed=base_seed)


def simultaneous_syn_campaign(repetitions: int = 6,
                              periods: Tuple[TimeOfDay, ...] = QUICK_PERIODS,
                              base_seed: int = 2013) -> CampaignSpec:
    """Figure 8: delayed vs simultaneous SYN, MP-2 coupled on AT&T."""
    specs = (
        FlowSpec.mptcp(carrier="att", controller="coupled"),
        FlowSpec.mptcp(carrier="att", controller="coupled",
                       simultaneous_syn=True),
    )
    return CampaignSpec(
        name="simultaneous-syn", specs=specs,
        sizes=(64 * KB, 512 * KB, 2 * MB),
        repetitions=repetitions, periods=periods, base_seed=base_seed)


def large_flows_campaign(repetitions: int = 2,
                         periods: Tuple[TimeOfDay, ...] = QUICK_PERIODS,
                         base_seed: int = 2013) -> CampaignSpec:
    """Figures 9/10 and Table 5: 4-32 MB, all controllers, 2/4 paths."""
    specs: List[FlowSpec] = [
        FlowSpec.single_path("wifi"),
        FlowSpec.single_path("cell", carrier="att"),
    ]
    for paths in (2, 4):
        for controller in ("coupled", "olia", "reno"):
            specs.append(FlowSpec.mptcp(carrier="att",
                                        controller=controller, paths=paths))
    return CampaignSpec(
        name="large-flows", specs=tuple(specs),
        sizes=(4 * MB, 8 * MB, 16 * MB, 32 * MB),
        repetitions=repetitions, periods=periods, base_seed=base_seed)


def backlog_campaign(size: int = 32 * MB, repetitions: int = 3,
                     base_seed: int = 2013) -> CampaignSpec:
    """Figure 11: ~infinite backlog, MP-2/MP-4 x coupled/reno.

    The paper transfers 512 MB ("approximate infinite backlog", 10
    iterations); the default here scales to 32 MB so the suite stays
    minutes-scale -- pass ``size=512 * MB`` for the full experiment.
    """
    specs = tuple(
        FlowSpec.mptcp(carrier="att", controller=controller, paths=paths)
        for paths in (2, 4) for controller in ("coupled", "reno"))
    return CampaignSpec(
        name="backlog", specs=specs, sizes=(size,),
        repetitions=repetitions, periods=(TimeOfDay.NIGHT,),
        base_seed=base_seed)


#: Middlebox profiles the fallback study sweeps, from "drops every
#: MPTCP option" down to "only breaks the data-plane mappings".
FALLBACK_PROFILES = ("strip-all", "strip-capable", "strip-join",
                     "strip-dss", "rewrite-seq", "proxy")


def fallback_campaign(repetitions: int = 3,
                      periods: Tuple[TimeOfDay, ...] = QUICK_PERIODS,
                      base_seed: int = 2013,
                      profiles: Tuple[str, ...] = FALLBACK_PROFILES,
                      ) -> CampaignSpec:
    """Middlebox interference: MP-2 behind each interfering box.

    The paper measures MPTCP where it actually worked; RFC 6824's
    fallback machinery exists for the networks where it would not
    have.  This campaign puts each middlebox profile on the WiFi
    access links (the coffee-shop topology of Section 4.3) plus a
    clean control run, so the rows show what each class of
    interference costs relative to undisturbed MPTCP.
    """
    specs: List[FlowSpec] = [FlowSpec.mptcp(carrier="att",
                                            controller="coupled")]
    for profile in profiles:
        # MP_JOIN travels over the *cellular* path (the join targets
        # the second interface), so a join-stripping box only matters
        # there; everything else interferes at the WiFi access links.
        path = "cell" if profile == "strip-join" else "wifi"
        specs.append(FlowSpec.mptcp(carrier="att", controller="coupled",
                                    middlebox=profile,
                                    middlebox_path=path))
    return CampaignSpec(
        name="fallback", specs=tuple(specs),
        sizes=(64 * KB, 512 * KB, 2 * MB),
        repetitions=repetitions, periods=periods, base_seed=base_seed)


#: The scheduler policies the lab sweeps (registry specs; see
#: :mod:`repro.core.scheduler`).  The weighted entry targets the
#: testbed's path names -- note both access slots keep their
#: address-derived names ("wifi"/"att") even under a non-default
#: path pair.
LAB_SCHEDULERS = ("minrtt", "roundrobin", "redundant",
                  "weighted:wifi=2,att=1", "blest", "cheapest", "qoe")

#: Access-network pairs the lab sweeps: the paper's WiFi+LTE testbed
#: and the dual-LTE pair of PATH_PAIRS.
LAB_PATH_PAIRS = ("default", "dual-lte")


def scheduler_lab_campaign(repetitions: int = 2,
                           periods: Tuple[TimeOfDay, ...] = QUICK_PERIODS,
                           base_seed: int = 2013,
                           schedulers: Tuple[str, ...] = LAB_SCHEDULERS,
                           workloads: Optional[Tuple[str, ...]] = None,
                           path_pairs: Tuple[str, ...] = LAB_PATH_PAIRS,
                           ) -> CampaignSpec:
    """Scheduler lab: every policy x workload x path pair, MP-2 coupled.

    The paper fixes the scheduler to minRTT (its Section 2 describes
    the default policy); this campaign asks how much that choice
    matters by sweeping the registry's policies over the workload
    shapes the paper discusses and over two access-network pairs.
    :func:`scheduler_regret_rows` reduces the matrix to regret vs the
    per-(workload, pair) oracle.
    """
    if workloads is None:
        from repro.experiments.workloads import WORKLOADS
        workloads = WORKLOADS
    specs: List[FlowSpec] = []
    for pair in path_pairs:
        for workload in workloads:
            for scheduler in schedulers:
                specs.append(FlowSpec.mptcp(
                    carrier="att", controller="coupled",
                    scheduler=scheduler, workload=workload,
                    path_pair=pair))
    return CampaignSpec(
        name="scheduler-lab", specs=tuple(specs),
        sizes=(512 * KB,),
        repetitions=repetitions, periods=periods, base_seed=base_seed)


#: Background-traffic levels the world campaign sweeps, light to heavy.
WORLD_LEVELS = ("bg-none", "bg-light", "bg-medium", "bg-heavy")


def world_campaign(repetitions: int = 2,
                   periods: Tuple[TimeOfDay, ...] = QUICK_PERIODS,
                   base_seed: int = 2013,
                   worlds: Tuple[str, ...] = WORLD_LEVELS,
                   size: int = 2 * MB) -> CampaignSpec:
    """Shared-bottleneck fairness: foreground vs fluid background.

    The paper measures MPTCP against real cross-traffic on shared
    WiFi/LTE access links; this campaign reproduces that contention
    with the :mod:`repro.world` kernel.  For each background level a
    single-path WiFi flow and an MP-2 flow download the same object
    through the same populated world; :func:`world_fairness_rows`
    reports foreground slowdown and background-population fairness
    side by side.
    """
    specs: List[FlowSpec] = []
    for world in worlds:
        specs.append(FlowSpec.single_path("wifi", world=world))
        specs.append(FlowSpec.mptcp(carrier="att", controller="coupled",
                                    world=world))
    return CampaignSpec(
        name="world", specs=tuple(specs), sizes=(size,),
        repetitions=repetitions, periods=periods, base_seed=base_seed)


#: The bench_ext_handover outage window: WiFi drops at t=2s, returns
#: at t=6s -- long enough to force MP_FAIL handover and SP-WiFi RTO
#: stalls, short enough that every flow can still complete.
SLA_OUTAGE = "outage:down=2,up=6"


def sla_report_campaign(repetitions: int = 2,
                        periods: Tuple[TimeOfDay, ...] = QUICK_PERIODS,
                        base_seed: int = 2013,
                        size: int = 8 * MB) -> CampaignSpec:
    """The ``repro report`` matrix: SLA cohorts with and without a
    mid-transfer WiFi outage.

    Fig. 2-style baselines (SP-WiFi, SP-ATT, MP-2) run undisturbed and
    again through :data:`SLA_OUTAGE`; at 8 MB every transfer is still
    in flight when WiFi drops at t=2s, so the failure cohort exercises
    handover (MP) and RTO stall-and-recover (SP).  Runs execute with
    the metrics registry on; :class:`repro.obs.analytics.AnalyticsStore`
    turns the results into percentile ladders, stall distributions,
    path shares and survival curves.
    """
    specs: List[FlowSpec] = [
        FlowSpec.single_path("wifi"),
        FlowSpec.single_path("cell", carrier="att"),
        FlowSpec.mptcp(carrier="att", controller="coupled"),
        FlowSpec.single_path("wifi", failure=SLA_OUTAGE),
        FlowSpec.mptcp(carrier="att", controller="coupled",
                       failure=SLA_OUTAGE),
    ]
    return CampaignSpec(
        name="sla-report", specs=tuple(specs), sizes=(size,),
        repetitions=repetitions, periods=periods, base_seed=base_seed)


def latency_campaign(repetitions: int = 2,
                     periods: Tuple[TimeOfDay, ...] = QUICK_PERIODS,
                     base_seed: int = 2013) -> CampaignSpec:
    """Figures 12/13 and Table 6: MPTCP RTT / OFO tails, 4-32 MB."""
    specs = tuple(FlowSpec.mptcp(carrier=carrier, controller="coupled")
                  for carrier in CARRIERS)
    return CampaignSpec(
        name="latency", specs=specs,
        sizes=(4 * MB, 8 * MB, 16 * MB, 32 * MB),
        repetitions=repetitions, periods=periods, base_seed=base_seed)


# ----------------------------------------------------------------------
# Row extractors
# ----------------------------------------------------------------------

def _group(results: Iterable[RunResult]
           ) -> Dict[Tuple[FlowSpec, int], List[RunResult]]:
    groups: Dict[Tuple[FlowSpec, int], List[RunResult]] = {}
    for result in results:
        groups.setdefault((result.spec, result.size), []).append(result)
    return groups


def _spec_column_label(spec: FlowSpec) -> str:
    """Disambiguate per-carrier MPTCP columns, like 'MP-ATT'."""
    if spec.mode == "mp":
        return f"MP-{spec.carrier_label}" if spec.paths == 2 else spec.label
    return spec.label


def download_time_rows(results: Sequence[RunResult],
                       label_by_carrier: bool = False
                       ) -> Tuple[List[str], List[List[str]]]:
    """Box-plot figure as rows: one row per (size, config)."""
    groups = _group(results)
    headers = ["size", "config", "n",
               "min", "q1", "median", "q3", "max"]
    rows: List[List[str]] = []
    for (spec, size), bucket in sorted(
            groups.items(), key=lambda item: (item[0][1],
                                              item[0][0].label)):
        times = [result.download_time for result in bucket
                 if result.download_time is not None]
        if not times:
            continue
        summary = five_number(times)
        label = (_spec_column_label(spec) if label_by_carrier
                 else spec.label)
        rows.append([format_bytes(size), label, str(summary.count)]
                    + [f"{value:.3f}" for value in summary.as_tuple()])
    return headers, rows


def traffic_share_rows(results: Sequence[RunResult],
                       label_by_carrier: bool = False
                       ) -> Tuple[List[str], List[List[str]]]:
    """Figures 3/5/7/10: mean cellular fraction per (size, config)."""
    groups = _group(results)
    headers = ["size", "config", "n", "cellular fraction"]
    rows: List[List[str]] = []
    for (spec, size), bucket in sorted(
            groups.items(), key=lambda item: (item[0][1],
                                              item[0][0].label)):
        if spec.mode != "mp":
            continue
        fractions = [result.metrics.cellular_fraction for result in bucket
                     if result.completed]
        if not fractions:
            continue
        mean, stderr = mean_stderr(fractions)
        label = (_spec_column_label(spec) if label_by_carrier
                 else spec.label)
        rows.append([format_bytes(size), label, str(len(fractions)),
                     format_mean_stderr(mean, stderr, digits=3)])
    return headers, rows


def path_characteristics_rows(results: Sequence[RunResult],
                              ) -> Tuple[List[str], List[List[str]]]:
    """Tables 2/3/4/5: per-connection loss % and RTT, SP runs only.

    Loss and RTT are per-connection values (connection loss rate,
    connection mean RTT), summarized mean +- stderr across runs -- the
    tables' stated methodology.
    """
    groups = _group(results)
    headers = ["size", "path", "n", "loss (%)", "RTT (ms)"]
    rows: List[List[str]] = []
    for (spec, size), bucket in sorted(
            groups.items(), key=lambda item: (item[0][1],
                                              item[0][0].label)):
        if spec.mode != "sp":
            continue
        path = "wifi" if spec.interface == "wifi" else spec.carrier
        losses, rtts = [], []
        for result in bucket:
            if not result.completed:
                continue
            analysis = result.metrics.per_path.get(path) or \
                result.metrics.per_path.get("public-wifi")
            if analysis is None:
                continue
            losses.append(analysis.loss_rate)
            if analysis.rtt_samples:
                rtts.append(analysis.mean_rtt)
        if not losses:
            continue
        loss_mean, loss_stderr = mean_stderr(losses)
        label = "WiFi" if spec.interface == "wifi" else spec.carrier_label
        loss_text = ("~" if loss_mean < 0.0003 else
                     format_mean_stderr(loss_mean, loss_stderr, scale=100))
        rtt_text = "-"
        if rtts:
            rtt_mean, rtt_stderr = mean_stderr(rtts)
            rtt_text = format_mean_stderr(rtt_mean, rtt_stderr, scale=1000)
        rows.append([format_bytes(size), label, str(len(losses)),
                     loss_text, rtt_text])
    return headers, rows


#: Survival fractions at which the CCDF figures are tabulated.
CCDF_FRACTIONS = (0.9, 0.75, 0.5, 0.25, 0.1, 0.02)


def rtt_ccdf_rows(results: Sequence[RunResult]
                  ) -> Tuple[List[str], List[List[str]]]:
    """Figure 12: packet-RTT CCDF per (carrier path, size), in ms.

    Columns give the RTT below which (1 - fraction) of packets fall,
    i.e. the value at survival probability ``f``.
    """
    headers = (["carrier", "path", "size", "samples"]
               + [f"P>{fraction:g}" for fraction in CCDF_FRACTIONS])
    pooled: Dict[Tuple[str, str, int], List[float]] = {}
    for result in results:
        if result.spec.mode != "mp" or not result.completed:
            continue
        for path in ("wifi", "public-wifi", result.spec.carrier):
            samples = result.metrics.rtt_samples(path)
            if samples:
                key = (result.spec.carrier, path, result.size)
                pooled.setdefault(key, []).extend(samples)
    rows: List[List[str]] = []
    for (carrier, path, size), samples in sorted(pooled.items()):
        points = ccdf_at_fractions(samples, CCDF_FRACTIONS)
        rows.append([carrier, path, format_bytes(size), str(len(samples))]
                    + [f"{value * 1000:.1f}" for _, value in points])
    return headers, rows


def ofo_ccdf_rows(results: Sequence[RunResult]
                  ) -> Tuple[List[str], List[List[str]]]:
    """Figure 13: out-of-order delay CCDF per (carrier, size), in ms."""
    headers = (["carrier", "size", "samples", "in-order %"]
               + [f"P>{fraction:g}" for fraction in CCDF_FRACTIONS])
    pooled: Dict[Tuple[str, int], List[float]] = {}
    for result in results:
        if result.spec.mode != "mp" or not result.completed:
            continue
        key = (result.spec.carrier, result.size)
        pooled.setdefault(key, []).extend(result.metrics.ofo_delays)
    rows: List[List[str]] = []
    for (carrier, size), delays in sorted(pooled.items()):
        in_order = sum(1 for delay in delays if delay <= 1e-9)
        points = ccdf_at_fractions(delays, CCDF_FRACTIONS)
        rows.append([carrier, format_bytes(size), str(len(delays)),
                     f"{100 * in_order / len(delays):.1f}"]
                    + [f"{value * 1000:.1f}" for _, value in points])
    return headers, rows


def mptcp_rtt_ofo_rows(results: Sequence[RunResult]
                       ) -> Tuple[List[str], List[List[str]]]:
    """Table 6: MPTCP per-path RTT and OFO delay, mean +- stderr."""
    headers = ["size", "carrier", "path RTT (ms)", "WiFi RTT (ms)",
               "OFO (ms)"]
    groups = _group(results)
    rows: List[List[str]] = []
    for (spec, size), bucket in sorted(
            groups.items(), key=lambda item: (item[0][1],
                                              item[0][0].carrier)):
        if spec.mode != "mp":
            continue
        cell_rtts, wifi_rtts, ofo_means = [], [], []
        for result in bucket:
            if not result.completed:
                continue
            cell_samples = result.metrics.rtt_samples(spec.carrier)
            if cell_samples:
                cell_rtts.append(sum(cell_samples) / len(cell_samples))
            wifi_samples = (result.metrics.rtt_samples("wifi")
                            or result.metrics.rtt_samples("public-wifi"))
            if wifi_samples:
                wifi_rtts.append(sum(wifi_samples) / len(wifi_samples))
            if result.metrics.ofo_delays:
                ofo_means.append(sum(result.metrics.ofo_delays)
                                 / len(result.metrics.ofo_delays))
        def text(values: List[float]) -> str:
            if not values:
                return "-"
            mean, stderr = mean_stderr(values)
            return format_mean_stderr(mean, stderr, scale=1000, digits=1)
        rows.append([format_bytes(size), spec.carrier_label,
                     text(cell_rtts), text(wifi_rtts), text(ofo_means)])
    return headers, rows


def fallback_rows(results: Sequence[RunResult]
                  ) -> Tuple[List[str], List[List[str]]]:
    """Fallback study: completion, fallback rate, and goodput per
    (size, middlebox profile).

    ``fallback rate`` is the fraction of connections that abandoned
    MPTCP (plain-TCP fallback or infinite mapping); ``goodput`` is the
    application-level mean over completed runs.  A profile that breaks
    MPTCP must still show 100% completion — that is the whole point of
    RFC 6824 Section 3.6.
    """
    groups = _group(results)
    headers = ["size", "middlebox", "n", "completed", "fallback rate",
               "plain", "infinite", "mean time (s)", "goodput (Mbit/s)"]
    rows: List[List[str]] = []
    for (spec, size), bucket in sorted(
            groups.items(), key=lambda item: (item[0][1],
                                              item[0][0].middlebox)):
        if spec.mode != "mp":
            continue
        modes = [result.metrics.fallback for result in bucket]
        plain = sum(1 for mode in modes if mode == "plain")
        infinite = sum(1 for mode in modes if mode == "infinite")
        completed = sum(1 for result in bucket if result.completed)
        times = [result.download_time for result in bucket
                 if result.download_time is not None]
        time_text = goodput_text = "-"
        if times:
            mean_time = sum(times) / len(times)
            time_text = f"{mean_time:.3f}"
            goodput = sum(size * 8 / time for time in times) / len(times)
            goodput_text = f"{goodput / 1e6:.3f}"
        rows.append([format_bytes(size), spec.middlebox, str(len(bucket)),
                     f"{completed / len(bucket):.2f}",
                     f"{(plain + infinite) / len(bucket):.2f}",
                     str(plain), str(infinite), time_text, goodput_text])
    return headers, rows


def scheduler_regret_rows(results: Sequence[RunResult]
                          ) -> Tuple[List[str], List[List[str]]]:
    """Scheduler lab: per-policy regret vs the per-cell oracle.

    Every (workload, path pair) cell defines an *oracle*: the lowest
    mean quality metric any swept scheduler achieved there (download
    time, page-load time, mean block time or mean frame latency --
    lower is always better).  A policy's regret is how far above the
    oracle its own mean lands, as a percentage; the oracle row itself
    shows 0.0.  ``completion`` is the fraction of runs that finished,
    reported separately because an incomplete run contributes no
    metric sample.
    """
    headers = ["workload", "path pair", "scheduler", "n",
               "mean metric (s)", "oracle (s)", "regret (%)",
               "completion"]
    cells: Dict[Tuple[str, str], Dict[str, List[RunResult]]] = {}
    for result in results:
        spec = result.spec
        if spec.mode != "mp":
            continue
        cell = cells.setdefault((spec.workload, spec.path_pair), {})
        cell.setdefault(spec.scheduler, []).append(result)
    rows: List[List[str]] = []
    for (workload, pair), by_scheduler in sorted(cells.items()):
        means: Dict[str, float] = {}
        for scheduler, bucket in by_scheduler.items():
            times = [result.download_time for result in bucket
                     if result.download_time is not None]
            if times:
                means[scheduler] = sum(times) / len(times)
        oracle = min(means.values()) if means else None
        for scheduler, bucket in sorted(by_scheduler.items()):
            completed = sum(1 for result in bucket if result.completed)
            completion = f"{completed / len(bucket):.2f}"
            mean = means.get(scheduler)
            if mean is None or oracle is None:
                rows.append([workload, pair, scheduler, "0",
                             "-", "-", "-", completion])
                continue
            regret = mean / oracle - 1.0
            count = sum(1 for result in bucket
                        if result.download_time is not None)
            rows.append([workload, pair, scheduler, str(count),
                         f"{mean:.3f}", f"{oracle:.3f}",
                         f"{100 * regret:.1f}", completion])
    return headers, rows


def world_fairness_rows(results: Sequence[RunResult]
                        ) -> Tuple[List[str], List[List[str]]]:
    """Shared-bottleneck fairness: foreground cost of a busy world.

    One row per (world, config): the foreground download time against
    the background population it shared the access links with --
    completed flows, aggregate goodput, mean flow-completion time,
    peak concurrency, and Jain's fairness index over per-flow
    throughput.  Slowdown is each config's mean download time over its
    own ``bg-none`` mean, isolating contention from protocol effects.
    """
    headers = ["world", "config", "n", "download time (s)", "slowdown",
               "bg flows", "bg goodput (Mbit/s)", "bg mean fct (s)",
               "peak bg", "jain"]
    cells: Dict[Tuple[str, str], List[RunResult]] = {}
    for result in results:
        cells.setdefault((result.spec.world, result.spec.label),
                         []).append(result)
    baselines: Dict[str, float] = {}
    for (world, label), bucket in cells.items():
        if world != "bg-none":
            continue
        times = [result.download_time for result in bucket
                 if result.download_time is not None]
        if times:
            baselines[label] = sum(times) / len(times)
    rows: List[List[str]] = []
    for (world, label), bucket in sorted(cells.items()):
        times = [result.download_time for result in bucket
                 if result.download_time is not None]
        mean = sum(times) / len(times) if times else None
        baseline = baselines.get(label)
        if mean is None:
            time_text, slowdown = "-", "-"
        else:
            time_text = f"{mean:.3f}"
            slowdown = (f"{mean / baseline:.2f}x"
                        if baseline else "-")
        worlds = [result.world for result in bucket
                  if result.world is not None]
        if worlds:
            count = len(worlds)
            flows = sum(w["flows_completed"] for w in worlds) / count
            goodput = sum(w["bg_goodput_bps"] for w in worlds) / count
            fct = sum(w["mean_fct"] for w in worlds) / count
            peak = max(w["peak_concurrent"] for w in worlds)
            jain = sum(w["jain"] for w in worlds) / count
            tail = [f"{flows:.1f}", f"{goodput / 1e6:.3f}",
                    f"{fct:.3f}", str(peak), f"{jain:.3f}"]
        else:
            tail = ["-", "-", "-", "-", "-"]
        rows.append([world, label, str(len(bucket)), time_text,
                     slowdown] + tail)
    return headers, rows


def download_time_plot(results: Sequence[RunResult],
                       label_by_carrier: bool = False) -> str:
    """ASCII box plots of download times, one chart per file size."""
    from repro.experiments.plots import boxplot_from_samples
    groups = _group(results)
    by_size: Dict[int, List[Tuple[str, List[float]]]] = {}
    for (spec, size), bucket in sorted(
            groups.items(), key=lambda item: (item[0][1],
                                              item[0][0].label)):
        times = [result.download_time for result in bucket
                 if result.download_time is not None]
        if not times:
            continue
        label = (_spec_column_label(spec) if label_by_carrier
                 else spec.label)
        by_size.setdefault(size, []).append((label, times))
    sections = []
    for size, labelled in sorted(by_size.items()):
        sections.append(f"--- {format_bytes(size)} ---")
        sections.append(boxplot_from_samples(labelled))
    return "\n".join(sections)


def rtt_ccdf_plot(results: Sequence[RunResult],
                  size: Optional[int] = None) -> str:
    """ASCII CCDF chart of packet RTTs (ms) per carrier path."""
    from repro.experiments.plots import render_ccdf
    from repro.experiments.stats import ccdf
    pooled: Dict[str, List[float]] = {}
    sizes = {result.size for result in results if result.completed}
    target = size if size is not None else max(sizes, default=0)
    for result in results:
        if (result.spec.mode != "mp" or not result.completed
                or result.size != target):
            continue
        for path in ("wifi", "public-wifi", result.spec.carrier):
            samples = result.metrics.rtt_samples(path)
            if samples:
                label = (path if path.endswith("wifi")
                         else f"{result.spec.carrier}")
                pooled.setdefault(label, []).extend(
                    [value * 1000 for value in samples])
    series = {label: ccdf(samples) for label, samples in pooled.items()}
    title = f"packet RTT CCDF at {format_bytes(target)}"
    return f"{title}\n{render_ccdf(series)}"


def ofo_ccdf_plot(results: Sequence[RunResult],
                  size: Optional[int] = None) -> str:
    """ASCII CCDF chart of OFO delays (ms) per carrier."""
    from repro.experiments.plots import render_ccdf
    from repro.experiments.stats import ccdf
    pooled: Dict[str, List[float]] = {}
    sizes = {result.size for result in results if result.completed}
    target = size if size is not None else max(sizes, default=0)
    for result in results:
        if (result.spec.mode != "mp" or not result.completed
                or result.size != target):
            continue
        delays = [value * 1000 for value in result.metrics.ofo_delays
                  if value > 0]
        if delays:
            pooled.setdefault(result.spec.carrier, []).extend(delays)
    series = {label: ccdf(samples) for label, samples in pooled.items()}
    title = f"out-of-order delay CCDF at {format_bytes(target)} (>0 only)"
    return f"{title}\n{render_ccdf(series)}"


def syn_comparison_rows(results: Sequence[RunResult]
                        ) -> Tuple[List[str], List[List[str]]]:
    """Figure 8: mean download time, delayed vs simultaneous SYN."""
    groups = _group(results)
    headers = ["size", "mode", "n", "mean (s)", "stderr (s)"]
    by_size: Dict[int, Dict[bool, Tuple[float, float, int]]] = {}
    rows: List[List[str]] = []
    for (spec, size), bucket in sorted(
            groups.items(),
            key=lambda item: (item[0][1], item[0][0].simultaneous_syn)):
        times = [result.download_time for result in bucket
                 if result.download_time is not None]
        if not times:
            continue
        mean, stderr = mean_stderr(times)
        by_size.setdefault(size, {})[spec.simultaneous_syn] = (
            mean, stderr, len(times))
        mode = "simultaneous" if spec.simultaneous_syn else "delayed"
        rows.append([format_bytes(size), mode, str(len(times)),
                     f"{mean:.3f}", f"{stderr:.3f}"])
    for size, modes in sorted(by_size.items()):
        if True in modes and False in modes:
            delayed_mean = modes[False][0]
            simultaneous_mean = modes[True][0]
            if delayed_mean > 0:
                gain = 1.0 - simultaneous_mean / delayed_mean
                rows.append([format_bytes(size), "reduction", "",
                             format_pct(gain, digits=1) + "%", ""])
    return headers, rows

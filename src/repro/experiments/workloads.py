"""Application workloads for campaign measurements.

The paper's measurement is one wget download (``bulk``); the
scheduler-lab campaign also cares how policies behave under the
*other* traffic shapes the paper discusses -- multi-object page loads
(Section 1), streaming video (Section 6) and latency-sensitive
real-time streams (Section 5.2).  Each workload here adapts one
:mod:`repro.app` driver to the measurement runner's contract: a
driver exposes ``record`` (with ``complete`` / ``download_time`` /
``established_at``), a ``start()`` hook called before ``connect()``,
and ``on_connection(server_conn)`` wiring the server side when the
listener accepts.

``download_time`` carries each workload's *quality metric* so every
campaign cell aggregates through the same CSV machinery:

============  =====================================================
``bulk``      download time of one ``size``-byte object (seconds)
``pageload``  page load time of one drawn page (seconds)
``video``     mean download time of the periodic streaming blocks
``realtime``  mean per-frame delivery latency (seconds; includes
              the reorder wait behind a slow path)
============  =====================================================

Workload randomness (page composition, block sizes) is drawn from a
dedicated RNG stream derived from the run seed, so campaigns remain
pure functions of (spec identity, size, seed, period).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.app.http import HttpClient, HttpServerSession
from repro.app.realtime import RealtimeProfile, RealtimeSink, RealtimeStream
from repro.app.video import StreamingProfile, VideoSession
from repro.app.web import TYPICAL_PAGE, PageLoader
from repro.sim.rng import derive_seed

KB = 1024

#: A lab-sized streaming profile: the same prefetch-then-periodic-block
#: shape as Table 7 but small enough for a campaign cell (the Netflix
#: numbers would make every cell a multi-minute transfer).
LAB_STREAM = StreamingProfile(
    name="lab-stream",
    prefetch_mean=256 * KB, prefetch_std=32 * KB,
    block_mean=96 * KB, block_std=16 * KB,
    period_mean=1.0, period_std=0.2,
)

#: A lab-sized interactive stream: 30 frames/s of 4 KB for 3 seconds.
LAB_REALTIME = RealtimeProfile(name="lab-call", frame_bytes=4096,
                               interval=1.0 / 30.0, frames=90)

#: Periodic blocks per video cell (plus the prefetch).
LAB_VIDEO_BLOCKS = 6


@dataclass
class WorkloadRecord:
    """The runner-facing record for the non-bulk workloads."""

    complete: bool = False
    download_time: Optional[float] = None
    established_at: Optional[float] = None


class BulkWorkload:
    """The paper's workload: one fixed-size HTTP download."""

    name = "bulk"

    def __init__(self, sim, connection, rng: random.Random,
                 size: int) -> None:
        self.size = size
        self._client = HttpClient(sim, connection, size)

    @property
    def record(self):
        return self._client.record

    def start(self) -> None:
        self._client.start()

    def on_connection(self, server_conn) -> None:
        HttpServerSession.fixed(server_conn, self.size)


class PageloadWorkload:
    """Sequential multi-object page fetch over one connection."""

    name = "pageload"

    def __init__(self, sim, connection, rng: random.Random,
                 size: int) -> None:
        self.record = WorkloadRecord()
        self._sizes = TYPICAL_PAGE.draw_page(rng)
        self._loader = PageLoader(sim, connection, self._sizes,
                                  on_complete=self._finish)
        # PageLoader owns on_established to fire the first request;
        # interpose to stamp the establishment time the runner reports.
        inner = connection.on_established

        def stamp() -> None:
            self.record.established_at = sim.now
            inner()

        connection.on_established = stamp

    def _finish(self, page_record) -> None:
        self.record.complete = True
        self.record.download_time = page_record.page_load_time

    def start(self) -> None:
        pass

    def on_connection(self, server_conn) -> None:
        HttpServerSession(server_conn, self._loader.responder(),
                          close_after=None)


class VideoWorkload:
    """Prefetch + periodic streaming blocks (lab-sized Table 7 shape)."""

    name = "video"

    def __init__(self, sim, connection, rng: random.Random,
                 size: int) -> None:
        self.record = WorkloadRecord()
        self._session = VideoSession(sim, connection, LAB_STREAM, rng,
                                     n_blocks=LAB_VIDEO_BLOCKS,
                                     on_finished=self._finish)
        inner = connection.on_established

        def stamp() -> None:
            self.record.established_at = sim.now
            inner()

        connection.on_established = stamp

    def _finish(self, session) -> None:
        blocks = [block for block in session.blocks
                  if block.kind == "block"
                  and block.completed_at is not None]
        self.record.complete = bool(blocks)
        if blocks:
            self.record.download_time = (
                sum(block.download_time for block in blocks) / len(blocks))

    def start(self) -> None:
        pass

    def on_connection(self, server_conn) -> None:
        HttpServerSession(server_conn, self._session.responder(),
                          close_after=None)


class RealtimeWorkload:
    """Server-to-client constant-rate frames; metric is frame latency.

    The stream runs in the download direction (like every other
    workload): the server pushes frames as soon as its side of the
    connection establishes, the client-side sink timestamps each
    in-order frame delivery.
    """

    name = "realtime"

    def __init__(self, sim, connection, rng: random.Random,
                 size: int) -> None:
        self.sim = sim
        self.connection = connection
        self.record = WorkloadRecord()
        self.report = None
        connection.on_established = self._on_established

    def _on_established(self) -> None:
        self.record.established_at = self.sim.now

    def start(self) -> None:
        pass

    def on_connection(self, server_conn) -> None:
        stream = RealtimeStream(self.sim, server_conn, LAB_REALTIME)
        server_conn.on_established = stream.start
        RealtimeSink(self.sim, self.connection, stream,
                     on_finished=self._finish)

    def _finish(self, sink) -> None:
        self.report = sink.report
        self.record.complete = True
        self.record.download_time = sink.report.mean_latency()


_WORKLOADS = {
    cls.name: cls for cls in (BulkWorkload, PageloadWorkload,
                              VideoWorkload, RealtimeWorkload)}

#: The workload names, in campaign-matrix order.
WORKLOADS = ("bulk", "pageload", "video", "realtime")


def build_workload(name: str, sim, connection, seed: int, size: int):
    """Build the named workload driver over ``connection``.

    The driver's RNG stream is derived from the run seed and the
    workload name, so adding a workload to a campaign never perturbs
    the draws of any other cell.
    """
    cls = _WORKLOADS.get(name)
    if cls is None:
        raise ValueError(f"unknown workload {name!r}; known: "
                         f"{', '.join(sorted(_WORKLOADS))}")
    rng = random.Random(derive_seed(seed, f"workload.{name}"))
    return cls(sim, connection, rng, size)

"""repro.obs -- observability: event tracing, pcap export, telemetry.

Three layers (see docs/observability.md):

* :mod:`repro.obs.bus` -- the :class:`TraceBus` protocol-event bus and
  its sinks (flight-recorder ring, JSONL stream, in-memory), plus the
  slotted no-op :data:`NULL_TRACE_BUS` installed on every simulator by
  default.
* :mod:`repro.obs.pcap` -- serialize a captured run to a valid
  little-endian pcap with synthesized Ethernet/IPv4/TCP headers and
  RFC 6824 MPTCP option wire encoding, openable in Wireshark/tcptrace.
* :mod:`repro.obs.telemetry` -- live campaign telemetry: per-worker
  heartbeats, the per-campaign ``run_log.jsonl``, and the parent-side
  progress renderer.

``pcap`` and ``telemetry`` are imported lazily so that the simulation
engine (which imports this package for the null bus) never pulls the
protocol stack back in.
"""

from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    make_metrics,
)
from repro.obs.bus import (
    NULL_TRACE_BUS,
    JsonlSink,
    MemorySink,
    NullTraceBus,
    RingSink,
    TraceBus,
    TraceEvent,
    make_trace_bus,
    read_jsonl,
    ring_of,
)

__all__ = [
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "make_metrics",
    "NULL_TRACE_BUS",
    "JsonlSink",
    "MemorySink",
    "NullTraceBus",
    "RingSink",
    "TraceBus",
    "TraceEvent",
    "make_trace_bus",
    "read_jsonl",
    "ring_of",
    "PathHealth",
    "PathMetricsTap",
    "ensure_path_metrics",
    "metrics_tap",
    "WireTap",
    "write_pcap",
    "read_pcap",
    "RunLog",
    "Heartbeat",
    "ProgressRenderer",
]

_LAZY = {
    "PathHealth": "repro.obs.pathmetrics",
    "PathMetricsTap": "repro.obs.pathmetrics",
    "ensure_path_metrics": "repro.obs.pathmetrics",
    "metrics_tap": "repro.obs.pathmetrics",
    "WireTap": "repro.obs.pcap",
    "write_pcap": "repro.obs.pcap",
    "read_pcap": "repro.obs.pcap",
    "RunLog": "repro.obs.telemetry",
    "Heartbeat": "repro.obs.telemetry",
    "ProgressRenderer": "repro.obs.telemetry",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)

"""Typed metrics: counters, gauges and log-bucketed histograms.

The metrics registry is the aggregating sibling of the
:class:`~repro.obs.bus.TraceBus`: where the bus streams every protocol
*event*, the registry keeps cheap running *aggregates* (how many RTOs
fired, the distribution of link queue depths) that one
:meth:`MetricsRegistry.snapshot` call turns into a small deterministic
dict at the end of a run.

It follows the exact null-object discipline of the bus: the simulator
carries :data:`NULL_METRICS` by default (slotted, ``enabled = False``),
hot components cache ``sim.metrics`` at construction time, and every
observation site guards with ``if metrics.enabled:`` so a disabled
registry costs one attribute load and one branch per site.  Metrics are
strictly passive — no events scheduled, no RNG drawn, no control flow
altered — so enabling them leaves simulation results bit-identical
(the determinism guard pins this).

Histograms use *fixed* log-scaled bucket edges (a 1-2-5 series per
decade, built from exact decimal literals) rather than adapting to the
data, so two runs observing the same values always produce the same
bucket keys and snapshot digests.

Instrument name prefixes mirror the trace-kind hierarchy::

    tcp.rto.fired          counter: RTO timer expiries
    tcp.rto.backoff_s      histogram: fired timeout durations (stalls)
    tcp.fast_retransmit    counter: fast-retransmit entries
    mptcp.reinject.spans   counter: reinjected DSS spans
    mptcp.reinject.bytes   counter: bytes queued for reinjection
    path.<name>.bytes      counter: bytes delivered per path
    path.<name>.srtt_s     histogram: smoothed RTT samples per path
    path.<name>.cwnd_bytes histogram: cwnd samples per path
    link.queue_bytes       histogram: queue depth sampled at admission
    link.drops.<reason>    counter: drops by cause (overflow, loss, ...)
    world.realloc          counter: fluid max-min reallocations
    world.realloc.classes  histogram: live class count per reallocation

This module is intentionally stdlib-only: the engine imports it, so it
must not import any other ``repro`` module.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Tuple


def decade_edges(low_exp: int, high_exp: int) -> Tuple[float, ...]:
    """A 1-2-5 log series: 1e<low_exp> .. 1e<high_exp>, inclusive.

    Edges are parsed from decimal literals (``float("2e-3")``) instead
    of computed with ``**`` so every platform produces bit-identical
    edges — bucket keys appear in snapshot digests.
    """
    edges: List[float] = []
    for exponent in range(low_exp, high_exp):
        for mantissa in (1, 2, 5):
            edges.append(float(f"{mantissa}e{exponent}"))
    edges.append(float(f"1e{high_exp}"))
    return tuple(edges)


#: Durations in seconds: 100 µs .. 1000 s (RTO backoffs, SRTT, stalls).
TIME_EDGES_S = decade_edges(-4, 3)
#: Byte quantities: 100 B .. 1 GB (cwnd, queue depth, per-path volume).
BYTES_EDGES = decade_edges(2, 9)
#: Small cardinalities: 1 .. 10000 (live flow classes, span counts).
COUNT_EDGES = decade_edges(0, 4)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value; the snapshot keeps the last one set."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Counts observations into fixed log-scaled buckets.

    Bucket ``i`` holds observations ``<= edges[i]`` (the first matching
    edge; one overflow bucket catches values above the last edge).  The
    running count/sum/min/max ride along so percentile ladders can be
    interpolated from the buckets while exact means stay exact.
    """

    __slots__ = ("name", "edges", "counts", "count", "total",
                 "minimum", "maximum")
    kind = "histogram"

    def __init__(self, name: str,
                 edges: Tuple[float, ...] = TIME_EDGES_S) -> None:
        self.name = name
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def to_dict(self) -> dict:
        buckets = {}
        for index, count in enumerate(self.counts):
            if not count:
                continue
            if index < len(self.edges):
                buckets[f"le:{self.edges[index]:g}"] = count
            else:
                buckets["le:inf"] = count
        return {
            "count": self.count,
            "sum": round(self.total, 9),
            "min": (None if self.minimum is None
                    else round(self.minimum, 9)),
            "max": (None if self.maximum is None
                    else round(self.maximum, 9)),
            "buckets": buckets,
        }


class _NullInstrument:
    """Shared no-op counter/gauge/histogram returned when disabled.

    Lets construction-time code resolve instruments unconditionally;
    only the per-observation hot path needs the ``enabled`` guard.
    """

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """Metrics disabled: every operation is a no-op.

    Slotted and stateless, mirroring :class:`~repro.obs.bus.NullTraceBus`.
    """

    __slots__ = ()
    enabled = False

    def counter(self, name: str):
        return _NULL_INSTRUMENT

    def gauge(self, name: str):
        return _NULL_INSTRUMENT

    def histogram(self, name: str, edges: Tuple[float, ...] = TIME_EDGES_S):
        return _NULL_INSTRUMENT

    def snapshot(self) -> Optional[dict]:
        return None


#: Shared do-nothing registry; the default value of ``Simulator.metrics``.
NULL_METRICS = NullMetricsRegistry()


class MetricsRegistry:
    """An enabled registry: get-or-create typed instruments by name.

    Asking for an existing name returns the same instrument object
    (asking with a conflicting type raises), so independent components
    can share totals — e.g. every Link increments the same
    ``link.drops.overflow`` counter.
    """

    __slots__ = ("enabled", "_instruments")

    def __init__(self) -> None:
        self.enabled = True
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, factory, kind: str):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif instrument.kind != kind:
            raise TypeError(
                f"metric {name!r} is a {instrument.kind}, not a {kind}")
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, lambda: Counter(name), "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get(name, lambda: Gauge(name), "gauge")

    def histogram(self, name: str,
                  edges: Tuple[float, ...] = TIME_EDGES_S) -> Histogram:
        return self._get(name, lambda: Histogram(name, edges), "histogram")

    def snapshot(self) -> dict:
        """All instruments as a plain deterministic dict.

        Keys are sorted, floats rounded to 9 decimals, empty instruments
        (zero counters, never-observed histograms) dropped — so the JSON
        form digests identically across runs and platforms.
        """
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, dict] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            kind = instrument.kind
            if kind == "counter":
                if instrument.value:
                    counters[name] = round(instrument.value, 9)
            elif kind == "gauge":
                gauges[name] = round(instrument.value, 9)
            else:
                if instrument.count:
                    histograms[name] = instrument.to_dict()
        snapshot: dict = {}
        if counters:
            snapshot["counters"] = counters
        if gauges:
            snapshot["gauges"] = gauges
        if histograms:
            snapshot["histograms"] = histograms
        return snapshot


def make_metrics(mode: str):
    """Build a registry for a CLI/runner metrics mode.

    ``"off"`` returns :data:`NULL_METRICS`; ``"on"`` a fresh
    :class:`MetricsRegistry`.  Unknown modes raise ``ValueError``.
    """
    if mode == "off":
        return NULL_METRICS
    if mode == "on":
        return MetricsRegistry()
    raise ValueError(f"unknown metrics mode {mode!r}")

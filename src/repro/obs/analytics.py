"""The analytics warehouse: a queryable SQLite store over run telemetry.

Campaigns already emit four kinds of telemetry — saved results
(``*.jsonl`` via :mod:`repro.experiments.storage`), the campaign
``run_log.jsonl``, per-run TraceBus jsonl dumps, and rendered campaign
CSVs — but until now they could only be grepped.  :class:`AnalyticsStore`
ingests all four into one versioned SQLite schema and answers the
measurement questions the paper asks of its own dataset: percentile
ladders (p50/p90/p99/p999), stall/duration/volume distributions,
per-path contribution shares, and Kaplan-Meier-style survival curves
for flows crossing an injected failure.

Design points:

* **Idempotent ingest.**  Every table is keyed by a natural key (the
  campaign cell's ``descriptor_key``, plus path / metric name / line
  number where needed) and written with ``INSERT OR REPLACE``;
  re-ingesting the same directory changes nothing.
* **Torn-line tolerance.**  Every jsonl ingester stops at a malformed
  *final* line — the signature of a writer killed mid-append — exactly
  like ``ResultJournal`` and :func:`repro.obs.bus.read_jsonl`.
* **Deterministic queries.**  Every query orders its output on the
  full natural key and rounds floats, so rendered SLA tables digest
  identically across runs and platforms (the determinism guard pins
  one).

Schema (version 1)::

    runs      one row per campaign cell: spec identity, label, size,
              seed, period, outcome, wall-clock, background-world load
    flows     transport-level outcome per run: duration, volume,
              goodput, stall seconds, RTO/fast-retransmit/reinjection
              totals, fallback
    subflows  per-path rows: bytes carried, contribution share,
              SRTT/cwnd sample statistics
    events    ingested trace-bus events (t, kind, subflow, payload)
    failures  the injected failure schedule per run and whether the
              flow crossed it / survived it
    metrics   flattened metrics-registry snapshots, one row per
              instrument
    csv_rows  raw campaign CSV rows, one JSON record per line
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    key               TEXT PRIMARY KEY,
    spec              TEXT NOT NULL,
    label             TEXT NOT NULL,
    mode              TEXT NOT NULL,
    size              INTEGER NOT NULL,
    seed              TEXT NOT NULL,
    period            TEXT NOT NULL,
    failure           TEXT NOT NULL DEFAULT 'none',
    status            TEXT NOT NULL DEFAULT 'ok',
    completed         INTEGER,
    download_time     REAL,
    established_at    REAL,
    subflow_count     INTEGER,
    world             TEXT,
    bg_flows          INTEGER,
    bg_peak_concurrent INTEGER,
    bg_goodput_bps    REAL,
    wall_duration_s   REAL,
    events            INTEGER,
    worker            TEXT
);
CREATE TABLE IF NOT EXISTS flows (
    run_key           TEXT PRIMARY KEY,
    completed         INTEGER,
    duration_s        REAL,
    volume_bytes      INTEGER,
    goodput_bps       REAL,
    stall_s           REAL,
    rto_count         INTEGER,
    fast_retransmits  INTEGER,
    reinject_bytes    INTEGER,
    cellular_fraction REAL,
    fallback          TEXT
);
CREATE TABLE IF NOT EXISTS subflows (
    run_key     TEXT NOT NULL,
    path        TEXT NOT NULL,
    bytes       INTEGER,
    share       REAL,
    srtt_mean_s REAL,
    srtt_max_s  REAL,
    cwnd_mean_bytes REAL,
    PRIMARY KEY (run_key, path)
);
CREATE TABLE IF NOT EXISTS events (
    run_key TEXT NOT NULL,
    seq     INTEGER NOT NULL,
    t       REAL NOT NULL,
    kind    TEXT NOT NULL,
    subflow INTEGER,
    data    TEXT,
    PRIMARY KEY (run_key, seq)
);
CREATE TABLE IF NOT EXISTS failures (
    run_key  TEXT PRIMARY KEY,
    kind     TEXT NOT NULL,
    path     TEXT NOT NULL,
    down_at  REAL NOT NULL,
    up_at    REAL,
    crossed  INTEGER,
    survived INTEGER
);
CREATE TABLE IF NOT EXISTS metrics (
    run_key TEXT NOT NULL,
    name    TEXT NOT NULL,
    kind    TEXT NOT NULL,
    value   REAL,
    count   INTEGER,
    sum     REAL,
    min     REAL,
    max     REAL,
    buckets TEXT,
    PRIMARY KEY (run_key, name)
);
CREATE TABLE IF NOT EXISTS csv_rows (
    source TEXT NOT NULL,
    line   INTEGER NOT NULL,
    data   TEXT NOT NULL,
    PRIMARY KEY (source, line)
);
CREATE INDEX IF NOT EXISTS idx_events_kind ON events (run_key, kind);
CREATE INDEX IF NOT EXISTS idx_runs_label ON runs (label, size);
"""


def _read_jsonl_tolerant(path: str) -> List[dict]:
    """Parse a jsonl file, skipping one malformed trailing line."""
    records: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            records.append(json.loads(stripped))
        except json.JSONDecodeError:
            trailing = all(not later.strip() for later in lines[index + 1:])
            if trailing:
                break  # torn tail: a writer died mid-append
            raise
    return records


def _round(value: Optional[float], digits: int = 6) -> Optional[float]:
    return None if value is None else round(value, digits)


class AnalyticsStore:
    """A SQLite warehouse over campaign telemetry (see module docs)."""

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self._db = sqlite3.connect(path)
        self._db.executescript(_SCHEMA)
        self._db.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            ("schema_version", str(SCHEMA_VERSION)))
        self._db.commit()

    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "AnalyticsStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def schema_version(self) -> int:
        row = self._db.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        return int(row[0])

    def count(self, table: str) -> int:
        if table not in ("runs", "flows", "subflows", "events",
                         "failures", "metrics", "csv_rows"):
            raise ValueError(f"unknown table {table!r}")
        return self._db.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]

    # ------------------------------------------------------------------
    # Ingesters
    # ------------------------------------------------------------------

    def ingest_results(self, path: str) -> int:
        """Ingest a saved-results jsonl file (``save_results`` output).

        Populates ``runs``, ``flows``, ``subflows``, ``failures`` and
        ``metrics``; returns the number of runs ingested.
        """
        from repro.experiments.config import parse_failure
        from repro.experiments.runner import descriptor_key
        from repro.experiments.storage import load_results

        count = 0
        for result in load_results(path):
            spec = result.spec
            key = descriptor_key(spec, result.size, result.seed,
                                 result.period)
            world = result.world or {}
            self._db.execute(
                "INSERT INTO runs (key, spec, label, mode, size,"
                " seed, period, failure, status, completed, download_time,"
                " established_at, subflow_count, world, bg_flows,"
                " bg_peak_concurrent, bg_goodput_bps)"
                " VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?)"
                " ON CONFLICT(key) DO UPDATE SET"
                " spec=excluded.spec, label=excluded.label,"
                " mode=excluded.mode, size=excluded.size,"
                " seed=excluded.seed, period=excluded.period,"
                " failure=excluded.failure,"
                " status=excluded.status, completed=excluded.completed,"
                " download_time=excluded.download_time,"
                " established_at=excluded.established_at,"
                " subflow_count=excluded.subflow_count,"
                " world=excluded.world,"
                " bg_flows=COALESCE(excluded.bg_flows, runs.bg_flows),"
                " bg_peak_concurrent=COALESCE(excluded.bg_peak_concurrent,"
                "  runs.bg_peak_concurrent),"
                " bg_goodput_bps=COALESCE(excluded.bg_goodput_bps,"
                "  runs.bg_goodput_bps)",
                (key, spec.identity, spec.label, spec.mode, result.size,
                 str(result.seed), result.period.value, spec.failure, "ok",
                 int(result.completed), result.download_time,
                 result.established_at, result.subflow_count,
                 spec.world, world.get("flows_started"),
                 world.get("peak_concurrent"), world.get("bg_goodput_bps")))
            self._ingest_flow(key, result)
            self._ingest_subflows(key, result)
            if spec.failure != "none":
                self._ingest_failure(key, parse_failure(spec.failure),
                                     result)
            if result.obs_metrics:
                self._ingest_metrics(key, result.obs_metrics)
            count += 1
        self._db.commit()
        return count

    def _ingest_flow(self, key: str, result) -> None:
        snapshot = result.obs_metrics or {}
        counters = snapshot.get("counters", {})
        histograms = snapshot.get("histograms", {})
        stall = histograms.get("tcp.rto.stall_s", {})
        duration = result.download_time
        goodput = (result.size * 8.0 / duration
                   if result.completed and duration else None)
        self._db.execute(
            "INSERT OR REPLACE INTO flows (run_key, completed, duration_s,"
            " volume_bytes, goodput_bps, stall_s, rto_count,"
            " fast_retransmits, reinject_bytes, cellular_fraction,"
            " fallback) VALUES (?,?,?,?,?,?,?,?,?,?,?)",
            (key, int(result.completed), duration, result.size,
             _round(goodput, 3),
             stall.get("sum", 0.0) if snapshot else None,
             counters.get("tcp.rto.fired", 0) if snapshot else None,
             counters.get("tcp.fast_retransmit", 0) if snapshot else None,
             counters.get("mptcp.reinject.bytes", 0) if snapshot else None,
             result.metrics.cellular_fraction,
             result.metrics.fallback or "none"))

    def _ingest_subflows(self, key: str, result) -> None:
        # Byte counts come from the capture-side per-path analysis (the
        # ground truth, present for every run); SRTT/cwnd statistics
        # come from the metrics snapshot when one was taken.
        snapshot = result.obs_metrics or {}
        histograms = snapshot.get("histograms", {})
        per_path = result.metrics.per_path
        total = sum(analysis.payload_bytes
                    for analysis in per_path.values()) or None
        for path in sorted(per_path):
            analysis = per_path[path]
            srtt = histograms.get(f"path.{path}.srtt_s", {})
            cwnd = histograms.get(f"path.{path}.cwnd_bytes", {})
            srtt_mean = (srtt["sum"] / srtt["count"]
                         if srtt.get("count") else None)
            cwnd_mean = (cwnd["sum"] / cwnd["count"]
                         if cwnd.get("count") else None)
            self._db.execute(
                "INSERT OR REPLACE INTO subflows (run_key, path, bytes,"
                " share, srtt_mean_s, srtt_max_s, cwnd_mean_bytes)"
                " VALUES (?,?,?,?,?,?,?)",
                (key, path, analysis.payload_bytes,
                 _round(analysis.payload_bytes / total if total else None),
                 _round(srtt_mean), srtt.get("max"), _round(cwnd_mean, 1)))

    def _ingest_failure(self, key: str, schedule: dict, result) -> None:
        # A flow *crossed* the failure if it was in flight when the
        # interface went down; it *survived* if it still completed.
        down_at = schedule["down_at"]
        started_at = result.established_at or 0.0
        if result.completed and result.download_time is not None:
            ended_at = started_at + result.download_time
            crossed = started_at <= down_at < ended_at
        else:
            crossed = True  # never finished: it was live at the failure
        self._db.execute(
            "INSERT OR REPLACE INTO failures (run_key, kind, path, down_at,"
            " up_at, crossed, survived) VALUES (?,?,?,?,?,?,?)",
            (key, schedule["kind"], schedule["path"], down_at,
             schedule["up_at"], int(crossed), int(result.completed)))

    def _ingest_metrics(self, key: str, snapshot: dict) -> None:
        for name, value in snapshot.get("counters", {}).items():
            self._db.execute(
                "INSERT OR REPLACE INTO metrics (run_key, name, kind,"
                " value) VALUES (?,?,?,?)", (key, name, "counter", value))
        for name, value in snapshot.get("gauges", {}).items():
            self._db.execute(
                "INSERT OR REPLACE INTO metrics (run_key, name, kind,"
                " value) VALUES (?,?,?,?)", (key, name, "gauge", value))
        for name, data in snapshot.get("histograms", {}).items():
            self._db.execute(
                "INSERT OR REPLACE INTO metrics (run_key, name, kind,"
                " count, sum, min, max, buckets) VALUES (?,?,?,?,?,?,?,?)",
                (key, name, "histogram", data["count"], data["sum"],
                 data["min"], data["max"],
                 json.dumps(data["buckets"], sort_keys=True)))

    def ingest_run_log(self, path: str) -> int:
        """Ingest a campaign ``run_log.jsonl``.

        Finish records fill wall-clock/worker/background-load columns
        on ``runs`` (creating skeleton rows for cells whose results
        were never saved); fail records mark ``status='fail'``.
        Returns the number of records applied.
        """
        applied = 0
        for record in _read_jsonl_tolerant(path):
            event = record.get("event")
            key = record.get("key")
            if event not in ("finish", "fail") or not key:
                continue
            self._db.execute(
                "INSERT OR IGNORE INTO runs (key, spec, label, mode, size,"
                " seed, period, status) VALUES (?,?,?,?,?,?,?,?)",
                (key, record.get("spec", ""), _label_of_key(key),
                 _mode_of_key(key), record.get("size", 0),
                 str(record.get("seed", 0)), key.rsplit("|", 1)[-1], "ok"))
            if event == "finish":
                world = record.get("world") or {}
                self._db.execute(
                    "UPDATE runs SET wall_duration_s = ?, events = ?,"
                    " worker = ?, completed = COALESCE(completed, ?),"
                    " download_time = COALESCE(download_time, ?),"
                    " bg_flows = COALESCE(?, bg_flows),"
                    " bg_peak_concurrent = COALESCE(?, bg_peak_concurrent),"
                    " bg_goodput_bps = COALESCE(?, bg_goodput_bps)"
                    " WHERE key = ?",
                    (record.get("duration_s"), record.get("events"),
                     record.get("worker"),
                     None if record.get("completed") is None
                     else int(record["completed"]),
                     record.get("download_time"),
                     world.get("flows_started"),
                     world.get("peak_concurrent"),
                     world.get("bg_goodput_bps"), key))
            else:
                self._db.execute(
                    "UPDATE runs SET status = 'fail', completed = 0,"
                    " wall_duration_s = ?, worker = ? WHERE key = ?",
                    (record.get("duration_s"), record.get("worker"), key))
            applied += 1
        self._db.commit()
        return applied

    def ingest_trace(self, path: str, run_key: str) -> int:
        """Ingest one run's trace jsonl (stream or flight-recorder dump)
        into ``events``, attributed to ``run_key``.  Replaces any prior
        ingest of the same run, so re-ingestion is idempotent."""
        from repro.obs.bus import read_jsonl

        events = read_jsonl(path)
        self._db.execute("DELETE FROM events WHERE run_key = ?", (run_key,))
        self._db.executemany(
            "INSERT INTO events (run_key, seq, t, kind, subflow, data)"
            " VALUES (?,?,?,?,?,?)",
            [(run_key, seq, event.t, event.kind, event.subflow,
              json.dumps(event.data, sort_keys=True) if event.data else None)
             for seq, event in enumerate(events)])
        self._db.commit()
        return len(events)

    def ingest_campaign_csv(self, path: str,
                            source: Optional[str] = None) -> int:
        """Ingest a rendered campaign CSV verbatim into ``csv_rows``
        (one JSON object per data line, keyed by header names)."""
        import csv as _csv

        source = source or os.path.basename(path)
        with open(path, "r", newline="", encoding="utf-8") as handle:
            rows = list(_csv.DictReader(handle))
        self._db.execute("DELETE FROM csv_rows WHERE source = ?", (source,))
        self._db.executemany(
            "INSERT INTO csv_rows (source, line, data) VALUES (?,?,?)",
            [(source, line, json.dumps(row, sort_keys=True))
             for line, row in enumerate(rows)])
        self._db.commit()
        return len(rows)

    def ingest_directory(self, directory: str) -> Dict[str, int]:
        """Ingest everything recognizable under ``directory``.

        ``results*.jsonl`` / ``*-results.jsonl`` feed the results
        ingester, ``run_log.jsonl`` the run-log ingester, per-run trace
        files (``run-NNNN-SEED.jsonl`` / ``flight-run-NNNN-SEED.jsonl``,
        as laid out by ``RunDescriptor.trace_path``) the trace ingester
        (attributed via the run log's index-free key match — trace
        files name seed, and seeds are unique per campaign), and
        ``*.csv`` the CSV ingester.  Returns per-ingester counts.
        """
        totals = {"results": 0, "run_log_records": 0, "trace_events": 0,
                  "csv_rows": 0}
        names = sorted(os.listdir(directory))
        # Seeds are stored as TEXT (derive_seed outputs exceed SQLite's
        # signed 64-bit INTEGER), so the map keys are digit strings.
        seeds_to_keys: Dict[str, str] = {}
        for name in names:
            path = os.path.join(directory, name)
            if not os.path.isfile(path):
                continue
            if name.endswith(".jsonl") and ("results" in name):
                totals["results"] += self.ingest_results(path)
            elif name == "run_log.jsonl":
                totals["run_log_records"] += self.ingest_run_log(path)
            elif name.endswith(".csv"):
                totals["csv_rows"] += self.ingest_campaign_csv(path)
        # Traces last: runs rows (hence seed -> key) now exist.
        for key, seed in self._db.execute("SELECT key, seed FROM runs"):
            seeds_to_keys[seed] = key
        for name in names:
            path = os.path.join(directory, name)
            if not os.path.isfile(path):
                continue
            if name.startswith(("run-", "flight-run-")) \
                    and name.endswith(".jsonl"):
                seed = name[:-len(".jsonl")].rsplit("-", 1)[-1]
                if not seed.isdigit():
                    continue
                key = seeds_to_keys.get(seed)
                if key is not None:
                    totals["trace_events"] += self.ingest_trace(path, key)
        return totals

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def percentile_ladder(self, value: str = "download_time",
                          completed_only: bool = True) -> List[dict]:
        """p50/p90/p99/p999 of a ``runs`` column per (label, size).

        Returns dict rows ordered by (label, size); percentiles are
        interpolated like :meth:`repro.trace.timeseries.Series.percentile`.
        """
        if value not in ("download_time", "established_at",
                         "wall_duration_s"):
            raise ValueError(f"unsupported ladder value {value!r}")
        where = "WHERE completed = 1" if completed_only else ""
        groups: Dict[Tuple[str, str, int], List[float]] = {}
        for label, failure, size, sample in self._db.execute(
                f"SELECT label, failure, size, {value} FROM runs {where}"
                f" ORDER BY label, failure, size, seed"):
            if sample is not None:
                groups.setdefault((label, failure, size), []).append(sample)
        rows = []
        for (label, failure, size), samples in sorted(groups.items()):
            rows.append({
                "label": label, "failure": failure, "size": size,
                "n": len(samples),
                "p50": _round(_quantile(samples, 0.50)),
                "p90": _round(_quantile(samples, 0.90)),
                "p99": _round(_quantile(samples, 0.99)),
                "p999": _round(_quantile(samples, 0.999)),
            })
        return rows

    def stall_distribution(self) -> List[dict]:
        """Per-(label, size) stall statistics from the flow table.

        ``stall_s`` is the summed duration of fired RTO timeouts — the
        time the sender sat waiting on a dead path (the handover-stall
        measure).  Rows ordered by (label, size)."""
        groups: Dict[Tuple[str, str, int], List[Tuple[float, int]]] = {}
        for label, failure, size, stall, rtos in self._db.execute(
                "SELECT r.label, r.failure, r.size, f.stall_s, f.rto_count"
                " FROM flows f JOIN runs r ON r.key = f.run_key"
                " WHERE f.stall_s IS NOT NULL"
                " ORDER BY r.label, r.failure, r.size, r.seed"):
            groups.setdefault((label, failure, size),
                              []).append((stall, rtos or 0))
        rows = []
        for (label, failure, size), samples in sorted(groups.items()):
            stalls = [stall for stall, _ in samples]
            rows.append({
                "label": label, "failure": failure, "size": size,
                "n": len(samples),
                "stalled": sum(1 for stall in stalls if stall > 0.0),
                "rtos": sum(rtos for _, rtos in samples),
                "p50_stall_s": _round(_quantile(stalls, 0.50)),
                "p99_stall_s": _round(_quantile(stalls, 0.99)),
                "max_stall_s": _round(max(stalls)),
            })
        return rows

    def path_shares(self) -> List[dict]:
        """Mean per-path contribution share per (label, size, path),
        ordered on that key — the paper's per-path breakdown."""
        groups: Dict[Tuple[str, str, int, str], List[float]] = {}
        for label, failure, size, path, share in self._db.execute(
                "SELECT r.label, r.failure, r.size, s.path, s.share"
                " FROM subflows s JOIN runs r ON r.key = s.run_key"
                " WHERE s.share IS NOT NULL"
                " ORDER BY r.label, r.failure, r.size, s.path, r.seed"):
            groups.setdefault((label, failure, size, path), []).append(share)
        rows = []
        for (label, failure, size, path), shares in sorted(groups.items()):
            rows.append({
                "label": label, "failure": failure, "size": size,
                "path": path,
                "n": len(shares),
                "mean_share": _round(sum(shares) / len(shares)),
            })
        return rows

    def survival_curve(self, label: Optional[str] = None):
        """Kaplan-Meier survival of flows across the injected failure.

        The population is every flow that *crossed* a failure (was in
        flight when the interface went down).  The "event" is transfer
        completion at ``t`` seconds after the failure instant; flows
        that never completed are right-censored at the largest observed
        completion time.  Returns a
        :class:`repro.trace.timeseries.Series` stepping from 1.0
        downward: ``S(t)`` = fraction still transferring ``t`` seconds
        after the failure.
        """
        from repro.trace.timeseries import Series

        where = "AND r.label = ?" if label is not None else ""
        params: tuple = (label,) if label is not None else ()
        observations: List[Tuple[float, bool]] = []
        for down_at, established, duration, completed in self._db.execute(
                "SELECT fa.down_at, r.established_at, r.download_time,"
                " r.completed FROM failures fa"
                " JOIN runs r ON r.key = fa.run_key"
                f" WHERE fa.crossed = 1 {where}"
                " ORDER BY r.label, r.size, r.seed", params):
            if completed and duration is not None:
                ended_at = (established or 0.0) + duration
                observations.append((max(ended_at - down_at, 0.0), True))
            else:
                observations.append((float("inf"), False))
        horizon = max((t for t, observed in observations if observed),
                      default=0.0)
        observations = [(t if observed else horizon, observed)
                        for t, observed in observations]
        series = Series(name=f"survival:{label or 'all'}")
        at_risk = len(observations)
        survival = 1.0
        series.append(0.0, 1.0)
        for t, observed in sorted(observations):
            if not at_risk:
                break
            if observed:
                survival *= (at_risk - 1) / at_risk
                series.append(_round(t), _round(survival))
            at_risk -= 1
        return series

    def sla_table(self) -> List[dict]:
        """The combined SLA summary: ladder + stall + survival columns
        per (label, size).  The ``repro report`` artifact renders this.
        """
        ladder = {(row["label"], row["failure"], row["size"]): row
                  for row in self.percentile_ladder()}
        stalls = {(row["label"], row["failure"], row["size"]): row
                  for row in self.stall_distribution()}
        survived: Dict[Tuple[str, str, int], Tuple[int, int]] = {}
        for label, failure, size, crossed, alive in self._db.execute(
                "SELECT r.label, r.failure, r.size, COUNT(*),"
                " SUM(fa.survived) FROM failures fa"
                " JOIN runs r ON r.key = fa.run_key WHERE fa.crossed = 1"
                " GROUP BY r.label, r.failure, r.size"
                " ORDER BY r.label, r.failure, r.size"):
            survived[(label, failure, size)] = (crossed, alive or 0)
        rows = []
        for key in sorted(set(ladder) | set(stalls) | set(survived)):
            label, failure, size = key
            row = {"label": label, "failure": failure, "size": size}
            lad = ladder.get(key, {})
            row["n"] = lad.get("n", 0)
            for name in ("p50", "p90", "p99", "p999"):
                row[name] = lad.get(name)
            stall = stalls.get(key, {})
            row["stalled"] = stall.get("stalled")
            row["p99_stall_s"] = stall.get("p99_stall_s")
            crossed, alive = survived.get(key, (0, 0))
            row["crossed_failure"] = crossed
            row["survived_failure"] = alive
            rows.append(row)
        return rows


def _label_of_key(key: str) -> str:
    """Best-effort label recovered from a descriptor key (skeleton rows
    created by run-log-only ingests, refined once results arrive)."""
    identity = key.split("|", 1)[0]
    fields = dict(item.split("=", 1) for item in identity.split(";")
                  if "=" in item)
    if fields.get("mode") == "sp":
        return ("SP-WiFi" if fields.get("interface") == "wifi"
                else f"SP-{fields.get('carrier', '?')}")
    return f"MP-{fields.get('paths', '?')}"


def _mode_of_key(key: str) -> str:
    identity = key.split("|", 1)[0]
    fields = dict(item.split("=", 1) for item in identity.split(";")
                  if "=" in item)
    return fields.get("mode", "?")


def _quantile(samples: Sequence[float], q: float) -> Optional[float]:
    """Interpolated quantile (q in [0, 1]); None on empty input."""
    if not samples:
        return None
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = q * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction

"""Live campaign telemetry: heartbeats, the run log, and a renderer.

Three cooperating pieces, all file-based so they work unchanged across
process boundaries (campaign workers are separate processes):

* :class:`RunLog` -- an append-only JSONL log of run lifecycle records
  (``start`` / ``finish`` / ``fail``), one line per record.  Appends
  are a single ``O_APPEND`` write, which POSIX keeps atomic for short
  lines, so every worker can share one log without interleaving.
* :class:`Heartbeat` writing/reading -- each worker periodically
  replaces ``<dir>/<worker>.json`` (temp file + ``os.replace``, so a
  reader never sees a torn write) with its runs-done count, events/sec
  and the FlowSpec it is currently executing.
* :class:`ProgressRenderer` -- a parent-side background thread that
  polls the heartbeat directory and renders one status block per
  interval: global progress + ETA, then a line per worker.

Wall-clock time is fine here: telemetry never feeds back into the
simulation, so determinism is untouched.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple


class RunLog:
    """Append-only JSONL record of campaign run lifecycles."""

    def __init__(self, path) -> None:
        self.path = str(path)
        self._fd: Optional[int] = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)

    def log(self, event: str, **fields: Any) -> None:
        """Append one record; ``event`` is start/finish/fail/etc."""
        if self._fd is None:
            raise ValueError("run log is closed")
        record = {"event": event, "wall": round(time.time(), 3), **fields}
        line = json.dumps(record, separators=(",", ":"), default=str) + "\n"
        os.write(self._fd, line.encode("utf-8"))

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "RunLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @staticmethod
    def read(path) -> List[dict]:
        """Load a run log; tolerates a truncated trailing line (a
        worker killed mid-write), mirroring the results-file scanner."""
        records: List[dict] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    break
        return records


def run_log_wall_times(path) -> Dict[Tuple[str, int], List[float]]:
    """Observed wall seconds per ``(FlowSpec.identity, size)``.

    Reads a run log's ``finish`` records — the per-run ``wall_s``
    surfaced to the parent for dispatch-cost calibration
    (:meth:`repro.cache.CostModel.from_run_log`).  Records from before
    the ``size`` field existed fall back to parsing it out of the run
    key; unparseable records are skipped, never fatal.
    """
    times: Dict[Tuple[str, int], List[float]] = {}
    for record in RunLog.read(path):
        if record.get("event") != "finish":
            continue
        duration = record.get("duration_s")
        identity = record.get("spec")
        size = record.get("size")
        if size is None:
            # Old logs: the key is "identity|size|seed|period".
            try:
                size = int(str(record.get("key")).rsplit("|", 3)[1])
            except (IndexError, ValueError):
                continue
        if duration is None or identity is None:
            continue
        times.setdefault((identity, int(size)), []).append(float(duration))
    return times


def run_log_failovers(path) -> List[dict]:
    """Distributed-execution failover records from a run log.

    The coordinator (:class:`repro.experiments.distributed.Coordinator`)
    logs ``worker_joined`` / ``worker_left`` / ``lease_expired`` records
    next to the usual run lifecycle; this returns the ``lease_expired``
    ones — each names the worker that stopped renewing and the cell
    keys that were refronted for reassignment — so tests and post-hoc
    analysis can assert that a died worker's cells were re-run
    elsewhere.
    """
    return [record for record in RunLog.read(path)
            if record.get("event") == "lease_expired"]


# ----------------------------------------------------------------------
# Heartbeats
# ----------------------------------------------------------------------

def write_heartbeat(directory: str, worker: str, **fields: Any) -> None:
    """Atomically replace ``<directory>/<worker>.json`` with fields."""
    payload = {"worker": worker, "wall": round(time.time(), 3), **fields}
    path = os.path.join(directory, f"{worker}.json")
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, separators=(",", ":"), default=str)
    os.replace(tmp, path)


def read_heartbeats(directory: str) -> Dict[str, dict]:
    """All current worker heartbeats, keyed by worker label."""
    beats: Dict[str, dict] = {}
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return beats
    for name in names:
        if not name.endswith(".json"):
            continue
        try:
            with open(os.path.join(directory, name),
                      encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue  # mid-replace or removed; next poll catches up
        beats[payload.get("worker", name[:-5])] = payload
    return beats


class Heartbeat:
    """Typed view over one worker's heartbeat payload (reader side)."""

    __slots__ = ("worker", "done", "total", "events_per_sec", "current",
                 "wall")

    def __init__(self, payload: dict) -> None:
        self.worker = payload.get("worker", "?")
        self.done = payload.get("done", 0)
        self.total = payload.get("total", 0)
        self.events_per_sec = payload.get("events_per_sec")
        self.current = payload.get("current")
        self.wall = payload.get("wall", 0.0)


class WorkerTelemetry:
    """Worker-side aggregation: run-log records plus heartbeat state.

    One instance lives in each campaign worker process (or in the
    parent, for serial execution).  Pass ``None`` paths to disable the
    corresponding output -- every method is then (almost) free.
    """

    def __init__(self, run_log_path: Optional[str] = None,
                 heartbeat_dir: Optional[str] = None,
                 total: int = 0, label: Optional[str] = None) -> None:
        self.run_log = RunLog(run_log_path) if run_log_path else None
        self.heartbeat_dir = heartbeat_dir
        self.total = total
        self.label = label or f"w{os.getpid()}"
        self.done = 0
        self.events = 0
        self.busy_s = 0.0
        self.current: Optional[str] = None
        if heartbeat_dir:
            os.makedirs(heartbeat_dir, exist_ok=True)

    @property
    def enabled(self) -> bool:
        return self.run_log is not None or self.heartbeat_dir is not None

    def run_started(self, descriptor) -> None:
        self.current = f"{descriptor.spec.identity}:{descriptor.size}"
        if self.run_log is not None:
            self.run_log.log("start", key=descriptor.key,
                             seed=descriptor.seed,
                             spec=descriptor.spec.identity,
                             size=descriptor.size,
                             period=descriptor.period.value,
                             worker=self.label)
        self._beat()

    def run_finished(self, descriptor, result, duration: float,
                     events: int) -> None:
        self.done += 1
        self.events += events
        self.busy_s += duration
        self.current = None
        if self.run_log is not None:
            # ``size`` + ``duration_s`` make finish records directly
            # consumable as cost-model calibration samples
            # (:func:`run_log_wall_times`) without parsing the key.
            extra = {}
            world = getattr(result, "world", None)
            if world is not None:
                # Shared-world cells carry the background summary so
                # analytics can join foreground SLA against background
                # load straight from the run log.
                extra["world"] = {
                    "flows_started": world.get("flows_started"),
                    "flows_completed": world.get("flows_completed"),
                    "peak_concurrent": world.get("peak_concurrent"),
                    "bg_goodput_bps": world.get("bg_goodput_bps"),
                }
            self.run_log.log("finish", key=descriptor.key,
                             seed=descriptor.seed,
                             spec=descriptor.spec.identity,
                             size=descriptor.size,
                             duration_s=round(duration, 6), events=events,
                             completed=result.completed,
                             download_time=result.download_time,
                             worker=self.label, **extra)
        self._beat()

    def run_failed(self, descriptor, duration: float,
                   error: BaseException) -> None:
        """A run raised: leave a fail record naming seed and identity."""
        self.current = None
        if self.run_log is not None:
            self.run_log.log("fail", key=descriptor.key,
                             seed=descriptor.seed,
                             spec=descriptor.spec.identity,
                             size=descriptor.size,
                             period=descriptor.period.value,
                             duration_s=round(duration, 6),
                             error=repr(error), worker=self.label)
        self._beat()

    def _beat(self) -> None:
        if not self.heartbeat_dir:
            return
        events_per_sec = (round(self.events / self.busy_s)
                          if self.busy_s > 0 else None)
        write_heartbeat(self.heartbeat_dir, self.label,
                        done=self.done, total=self.total,
                        events=self.events,
                        events_per_sec=events_per_sec,
                        busy_s=round(self.busy_s, 3),
                        current=self.current)

    def close(self) -> None:
        if self.run_log is not None:
            self.run_log.close()


class ProgressRenderer:
    """Parent-side heartbeat renderer (the ``--progress`` view).

    A daemon thread polls the heartbeat directory every ``interval``
    seconds and prints a compact status block: one global line (runs
    done/total across every worker plus journal restores, aggregate
    events/sec, ETA from the observed completion rate), then one line
    per worker.  :meth:`note_done` feeds the authoritative global
    completion count in from the campaign progress callback (heartbeats
    alone miss journal-restored cells).
    """

    def __init__(self, heartbeat_dir: str, total: int,
                 interval: float = 2.0, stream=None) -> None:
        self.heartbeat_dir = heartbeat_dir
        self.total = total
        self.interval = interval
        self.stream = stream if stream is not None else sys.stderr
        self._done = 0
        self._started_at = time.monotonic()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        os.makedirs(heartbeat_dir, exist_ok=True)

    def note_done(self, done: int) -> None:
        """Record the campaign-level completion count (thread-safe:
        a plain int store)."""
        self._done = done

    def start(self) -> "ProgressRenderer":
        self._started_at = time.monotonic()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="progress-renderer")
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval + 1.0)
            self._thread = None
        self._render()  # final snapshot

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._render()

    def _render(self) -> None:
        beats = [Heartbeat(payload)
                 for payload in read_heartbeats(self.heartbeat_dir).values()]
        done = max(self._done, sum(beat.done for beat in beats))
        remaining = self.total - done
        if remaining <= 0:
            # Everything accounted for -- including the degenerate
            # warm-cache/journal case where every cell was restored
            # before a single live run (or the campaign was empty).
            # The observed-rate extrapolation below would divide the
            # near-zero elapsed time into a nonsense ETA.
            eta_text = "done"
        else:
            elapsed = time.monotonic() - self._started_at
            rate = done / elapsed if elapsed > 0.0 and done > 0 else 0.0
            eta_text = (f"ETA {remaining / rate:.0f}s" if rate > 0.0
                        else "ETA ?")
        total_eps = sum(beat.events_per_sec or 0 for beat in beats)
        lines = [f"[progress] {done}/{self.total} runs"
                 f" | {len(beats)} worker(s)"
                 f" | {total_eps:,} ev/s | {eta_text}"]
        for beat in sorted(beats, key=lambda item: item.worker):
            current = beat.current or "idle"
            eps = (f"{beat.events_per_sec:,} ev/s"
                   if beat.events_per_sec else "- ev/s")
            lines.append(f"  {beat.worker}: {beat.done} runs"
                         f" | {eps} | {current}")
        print("\n".join(lines), file=self.stream, flush=True)

"""Pcap export: serialize captured runs for Wireshark/tcpdump tooling.

The simulator never serializes packets -- segments are value objects --
so this module synthesizes the wire form after the fact: Ethernet and
IPv4 headers around a real TCP header whose options carry the RFC 6824
MPTCP encodings (TCP option kind 30) plus SACK (kind 5).  The output is
a classic little-endian pcap file (magic ``0xa1b2c3d4``, microsecond
timestamps, LINKTYPE_ETHERNET) that Wireshark's ``mptcp`` dissector
understands.

Three layers:

* :class:`WireTap` -- a capture hook retaining every packet a host
  sends or receives, the way the paper runs tcpdump on both machines;
* :func:`write_pcap` -- tap (or record list) to a ``.pcap`` file, with
  deterministic first-seen IP assignment for the simulator's string
  addresses (``client.wifi`` -> ``10.0.0.1`` etc.);
* :func:`read_pcap` / :func:`parse_frame` -- a round-trip parser used
  by the tests to prove the emitted bytes decode back to the same
  sequence numbers, flags and MPTCP subtypes.

Subtype values follow RFC 6824 Section 8: MP_CAPABLE=0x0, MP_JOIN=0x1,
DSS=0x2, ADD_ADDR=0x3, REMOVE_ADDR=0x4, MP_FAIL=0x6.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Optional, Tuple

from repro.tcp.segment import Flags, Segment

#: Classic pcap, microsecond resolution, written little-endian.
PCAP_MAGIC = 0xA1B2C3D4
LINKTYPE_ETHERNET = 1

#: TCP option kinds.
OPT_EOL = 0
OPT_NOP = 1
OPT_SACK = 5
OPT_MPTCP = 30

#: RFC 6824 option subtypes.
MP_CAPABLE = 0x0
MP_JOIN = 0x1
DSS = 0x2
ADD_ADDR = 0x3
REMOVE_ADDR = 0x4
MP_FAIL = 0x6

#: DSS flag bits (RFC 6824 Figure 9).
DSS_FLAG_DATA_ACK = 0x01
DSS_FLAG_MAP = 0x04
DSS_FLAG_DATA_FIN = 0x10

_U32 = 0xFFFFFFFF


class WireTap:
    """Retains every packet crossing a host, for later pcap export.

    Equivalent to running tcpdump on that machine: both directions are
    seen, each exactly once (``send`` as it leaves, ``recv`` as it
    arrives).  Records are ``(time, direction, src, dst, segment)``
    tuples; the simulator's packet objects are NOT retained, so taps
    are safe to keep across a whole campaign run.
    """

    def __init__(self, host) -> None:
        self.host = host
        self.records: List[Tuple[float, str, str, str, Segment]] = []
        host.add_capture_hook(self._hook)

    def _hook(self, direction: str, time: float, packet) -> None:
        self.records.append(
            (time, direction, packet.src, packet.dst, packet.segment))

    def detach(self) -> None:
        self.host.remove_capture_hook(self._hook)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)


# ----------------------------------------------------------------------
# Address synthesis
# ----------------------------------------------------------------------

class AddressMap:
    """Deterministic simulator-address -> (IPv4, MAC) assignment.

    Addresses get ``10.0.0.N`` in order of first appearance, so the
    same capture always serializes to byte-identical frames.
    """

    def __init__(self) -> None:
        self._ips: Dict[str, bytes] = {}

    def ip(self, address: str) -> bytes:
        assigned = self._ips.get(address)
        if assigned is None:
            index = len(self._ips) + 1
            if index > 254:
                raise ValueError("address space exhausted (>254 hosts)")
            assigned = bytes((10, 0, 0, index))
            self._ips[address] = assigned
        return assigned

    def mac(self, address: str) -> bytes:
        # Locally-administered unicast MAC derived from the IP.
        return b"\x02\x00" + self.ip(address)

    @property
    def assignments(self) -> Dict[str, str]:
        return {name: ".".join(str(b) for b in ip)
                for name, ip in self._ips.items()}


# ----------------------------------------------------------------------
# Option encoding (RFC 6824 wire format)
# ----------------------------------------------------------------------

def _key64(token: Optional[int]) -> int:
    """Expand the simulator's small token into a 64-bit key field."""
    token = (token or 0) & _U32
    return (token << 32) | token


def encode_tcp_options(segment: Segment) -> bytes:
    """Serialize SACK and MPTCP options, padded to a 4-byte boundary."""
    out = bytearray()
    options = segment.options
    if segment.sack_blocks:
        out += bytes((OPT_NOP, OPT_NOP,
                      OPT_SACK, 2 + 8 * len(segment.sack_blocks)))
        for left, right in segment.sack_blocks:
            out += struct.pack(">II", left & _U32, right & _U32)
    if options is not None:
        if options.mp_capable:
            # Version 0; flags 0x81 = checksum required + HMAC-SHA1.
            out += struct.pack(">BBBBQ", OPT_MPTCP, 12,
                               (MP_CAPABLE << 4) | 0, 0x81,
                               _key64(options.token))
        if options.mp_join:
            out += struct.pack(">BBBBII", OPT_MPTCP, 12,
                               (MP_JOIN << 4) | (1 if options.backup else 0),
                               0,  # address id
                               (options.token or 0) & _U32,
                               0)  # sender's random number
        if options.dss is not None:
            mapping = options.dss
            flags = DSS_FLAG_MAP
            if options.data_ack is not None:
                flags |= DSS_FLAG_DATA_ACK
            if options.data_fin_dsn is not None:
                flags |= DSS_FLAG_DATA_FIN
            out += struct.pack(">BBBBIIIHH", OPT_MPTCP, 20,
                               DSS << 4, flags,
                               (options.data_ack or 0) & _U32,
                               mapping.dsn & _U32,
                               mapping.ssn & _U32,
                               mapping.length & 0xFFFF,
                               0)  # DSS checksum (not modeled)
        elif options.data_ack is not None or options.data_fin_dsn is not None:
            flags = DSS_FLAG_DATA_ACK
            if options.data_fin_dsn is not None:
                flags |= DSS_FLAG_DATA_FIN
            ack = (options.data_fin_dsn if options.data_ack is None
                   else options.data_ack)
            out += struct.pack(">BBBBI", OPT_MPTCP, 8, DSS << 4, flags,
                               (ack or 0) & _U32)
        for index, _addr in enumerate(options.add_addr):
            address_id = index + 1
            out += struct.pack(">BBBB4s", OPT_MPTCP, 8,
                               (ADD_ADDR << 4) | 4,  # IPVer = 4
                               address_id,
                               _addr_ip(_addr))
        for index, _addr in enumerate(options.dead_addrs):
            out += struct.pack(">BBBB", OPT_MPTCP, 4, REMOVE_ADDR << 4,
                               index + 1)
        if options.mp_fail:
            out += struct.pack(">BBBBQ", OPT_MPTCP, 12, MP_FAIL << 4, 0,
                               0)  # DSN of the failure (not modeled)
    while len(out) % 4:
        out.append(OPT_NOP if len(out) % 4 != 3 else OPT_EOL)
    return bytes(out)


_ADDR_IPS: AddressMap = AddressMap()


def _addr_ip(address: str) -> bytes:
    """ADD_ADDR payload IPs share one process-wide deterministic map --
    the exporter rebuilds its own per-file map for IP headers, but the
    option payload only needs stable, valid bytes."""
    return _ADDR_IPS.ip(address)


def _flags_byte(flags: Flags) -> int:
    value = 0
    if flags.fin:
        value |= 0x01
    if flags.syn:
        value |= 0x02
    if flags.rst:
        value |= 0x04
    if flags.ack:
        value |= 0x10
    return value


def _checksum16(data: bytes) -> int:
    if len(data) % 2:
        data += b"\x00"
    total = sum(struct.unpack(f">{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def build_frame(src_ip: bytes, dst_ip: bytes, src_mac: bytes,
                dst_mac: bytes, segment: Segment, ident: int) -> bytes:
    """One Ethernet/IPv4/TCP frame with valid checksums."""
    option_bytes = encode_tcp_options(segment)
    data_offset = (20 + len(option_bytes)) // 4
    tcp_header = struct.pack(
        ">HHIIBBHHH", segment.src_port, segment.dst_port,
        segment.seq & _U32, segment.ack & _U32,
        data_offset << 4, _flags_byte(segment.flags),
        segment.window & 0xFFFF, 0, 0) + option_bytes
    payload = b"\x00" * segment.payload_len
    pseudo = src_ip + dst_ip + struct.pack(
        ">BBH", 0, 6, len(tcp_header) + len(payload))
    tcp_sum = _checksum16(pseudo + tcp_header + payload)
    tcp_header = tcp_header[:16] + struct.pack(">H", tcp_sum) \
        + tcp_header[18:]

    total_length = 20 + len(tcp_header) + len(payload)
    ip_header = struct.pack(">BBHHHBBH4s4s", 0x45, 0, total_length,
                            ident & 0xFFFF, 0x4000,  # DF
                            64, 6, 0, src_ip, dst_ip)
    ip_sum = _checksum16(ip_header)
    ip_header = ip_header[:10] + struct.pack(">H", ip_sum) + ip_header[12:]

    ethernet = dst_mac + src_mac + struct.pack(">H", 0x0800)
    return ethernet + ip_header + tcp_header + payload


# ----------------------------------------------------------------------
# File writing
# ----------------------------------------------------------------------

def write_pcap(records: Iterable[Tuple[float, str, str, str, Segment]],
               path, snaplen: int = 65535) -> Dict[str, str]:
    """Serialize capture records (a :class:`WireTap` iterates as such)
    to ``path``; returns the simulator-address -> IP assignment used.

    Frames longer than ``snaplen`` are truncated in the file (the
    record keeps the original length), exactly like ``tcpdump -s``.
    """
    addresses = AddressMap()
    with open(path, "wb") as handle:
        handle.write(struct.pack("<IHHiIII", PCAP_MAGIC, 2, 4, 0, 0,
                                 snaplen, LINKTYPE_ETHERNET))
        for ident, (time, _direction, src, dst, segment) in \
                enumerate(records):
            frame = build_frame(addresses.ip(src), addresses.ip(dst),
                                addresses.mac(src), addresses.mac(dst),
                                segment, ident)
            ts_sec = int(time)
            ts_usec = int(round((time - ts_sec) * 1_000_000))
            if ts_usec >= 1_000_000:  # rounding spill-over
                ts_sec, ts_usec = ts_sec + 1, ts_usec - 1_000_000
            captured = frame[:snaplen]
            handle.write(struct.pack("<IIII", ts_sec, ts_usec,
                                     len(captured), len(frame)))
            handle.write(captured)
    return addresses.assignments


# ----------------------------------------------------------------------
# Parsing (round-trip verification)
# ----------------------------------------------------------------------

def parse_tcp_options(data: bytes) -> List[dict]:
    """Decode a TCP options block into a list of dicts, one per option
    (NOP/EOL padding is skipped)."""
    decoded: List[dict] = []
    index = 0
    while index < len(data):
        kind = data[index]
        if kind == OPT_EOL:
            break
        if kind == OPT_NOP:
            index += 1
            continue
        length = data[index + 1]
        if length < 2 or index + length > len(data):
            raise ValueError(f"malformed option kind={kind} at {index}")
        body = data[index + 2:index + length]
        if kind == OPT_SACK:
            blocks = [struct.unpack(">II", body[offset:offset + 8])
                      for offset in range(0, len(body), 8)]
            decoded.append({"kind": OPT_SACK, "blocks": blocks})
        elif kind == OPT_MPTCP:
            subtype = body[0] >> 4
            option = {"kind": OPT_MPTCP, "subtype": subtype}
            if subtype == MP_CAPABLE:
                option["key"] = struct.unpack(">Q", body[2:10])[0]
                option["token"] = option["key"] & _U32
            elif subtype == MP_JOIN:
                option["backup"] = bool(body[0] & 0x1)
                option["token"] = struct.unpack(">I", body[2:6])[0]
            elif subtype == DSS:
                flags = body[1]
                option["flags"] = flags
                offset = 2
                if flags & DSS_FLAG_DATA_ACK or length == 8:
                    option["data_ack"] = struct.unpack(
                        ">I", body[offset:offset + 4])[0]
                    offset += 4
                if flags & DSS_FLAG_MAP:
                    dsn, ssn, map_len = struct.unpack(
                        ">IIH", body[offset:offset + 10])
                    option.update(dsn=dsn, ssn=ssn, length=map_len)
                option["data_fin"] = bool(flags & DSS_FLAG_DATA_FIN)
            elif subtype == ADD_ADDR:
                option["ipver"] = body[0] & 0xF
                option["address_id"] = body[1]
                option["ip"] = ".".join(str(b) for b in body[2:6])
            elif subtype == REMOVE_ADDR:
                option["address_id"] = body[1]
            decoded.append(option)
        else:
            decoded.append({"kind": kind, "body": body})
        index += length
    return decoded


def parse_frame(frame: bytes) -> dict:
    """Decode one Ethernet/IPv4/TCP frame back to header fields."""
    if len(frame) < 14 + 20 + 20:
        raise ValueError("frame too short for Ethernet/IPv4/TCP")
    ethertype = struct.unpack(">H", frame[12:14])[0]
    if ethertype != 0x0800:
        raise ValueError(f"not IPv4 (ethertype {ethertype:#06x})")
    ip = frame[14:]
    ihl = (ip[0] & 0xF) * 4
    total_length = struct.unpack(">H", ip[2:4])[0]
    protocol = ip[9]
    if protocol != 6:
        raise ValueError(f"not TCP (protocol {protocol})")
    src_ip = ".".join(str(b) for b in ip[12:16])
    dst_ip = ".".join(str(b) for b in ip[16:20])
    tcp = ip[ihl:total_length]
    (src_port, dst_port, seq, ack, offset_byte, flag_byte,
     window, checksum, _urgent) = struct.unpack(">HHIIBBHHH", tcp[:20])
    header_len = (offset_byte >> 4) * 4
    return {
        "src_ip": src_ip,
        "dst_ip": dst_ip,
        "src_port": src_port,
        "dst_port": dst_port,
        "seq": seq,
        "ack": ack,
        "flags": Flags(syn=bool(flag_byte & 0x02),
                       ack=bool(flag_byte & 0x10),
                       fin=bool(flag_byte & 0x01),
                       rst=bool(flag_byte & 0x04)),
        "window": window,
        "checksum": checksum,
        "header_length": header_len,
        "options": parse_tcp_options(tcp[20:header_len]),
        "payload_len": len(tcp) - header_len,
    }


def read_pcap(path) -> List[dict]:
    """Parse a pcap file written by :func:`write_pcap`; returns one
    dict per record: parsed frame fields plus ``time`` and lengths."""
    with open(path, "rb") as handle:
        data = handle.read()
    magic, major, minor, _tz, _sig, _snaplen, linktype = struct.unpack(
        "<IHHiIII", data[:24])
    if magic != PCAP_MAGIC:
        raise ValueError(f"bad pcap magic {magic:#010x}")
    if linktype != LINKTYPE_ETHERNET:
        raise ValueError(f"unexpected linktype {linktype}")
    records: List[dict] = []
    index = 24
    while index + 16 <= len(data):
        ts_sec, ts_usec, incl_len, orig_len = struct.unpack(
            "<IIII", data[index:index + 16])
        index += 16
        frame = data[index:index + incl_len]
        if len(frame) < incl_len:
            break  # truncated tail
        index += incl_len
        parsed = parse_frame(frame)
        parsed["time"] = ts_sec + ts_usec / 1_000_000
        parsed["captured_length"] = incl_len
        parsed["original_length"] = orig_len
        records.append(parsed)
    return records

"""Live per-path QoE metrics aggregated from the trace bus.

The QoE-adaptive scheduler needs a running picture of each path's
health -- smoothed RTT, loss rate, throughput -- without adding any
instrumentation of its own.  The probe points already exist: every
scheduler decision is traced as ``sched.select`` (carrying the path,
the bytes served and, for fresh allocations, every candidate's SRTT),
and every loss signal as ``tcp.fast_retransmit`` / ``rto.fire``.  This
module turns those events into per-path EWMAs by installing one extra
*sink* on the simulator's trace bus.

The tap is an ordinary sink (``retains = False``): it never emits,
never schedules, never draws random numbers -- observation stays
strictly passive, so enabling it cannot move a byte of campaign
output (the determinism guard pins this).  Like the engine's bus
module, this file is deliberately dependency-light.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.bus import NullTraceBus, TraceBus, TraceEvent

#: One MSS worth of payload; converts served bytes to a segment count
#: comparable with loss-event counts.
_SEGMENT = 1448


class PathHealth:
    """Running QoE estimate for one path."""

    __slots__ = ("path", "srtt", "bytes_served", "loss_events",
                 "throughput", "_window_start", "_window_bytes")

    def __init__(self, path: str) -> None:
        self.path = path
        #: EWMA of the path's SRTT as sampled at scheduling decisions
        #: (seconds); ``None`` until first sampled.
        self.srtt: Optional[float] = None
        self.bytes_served = 0
        self.loss_events = 0
        #: EWMA of delivered goodput (bytes/second); ``None`` until
        #: one measurement window has elapsed.
        self.throughput: Optional[float] = None
        self._window_start: Optional[float] = None
        self._window_bytes = 0

    def note_srtt(self, srtt: float, gain: float) -> None:
        if self.srtt is None:
            self.srtt = srtt
        else:
            self.srtt += gain * (srtt - self.srtt)

    def note_served(self, t: float, nbytes: int, window: float,
                    gain: float) -> None:
        self.bytes_served += nbytes
        if self._window_start is None:
            self._window_start = t
        self._window_bytes += nbytes
        elapsed = t - self._window_start
        if elapsed >= window:
            rate = self._window_bytes / elapsed
            if self.throughput is None:
                self.throughput = rate
            else:
                self.throughput += gain * (rate - self.throughput)
            self._window_start = t
            self._window_bytes = 0

    def note_loss(self) -> None:
        self.loss_events += 1

    def loss_rate(self) -> float:
        """Loss events per segment served (0 when nothing served)."""
        segments = self.bytes_served // _SEGMENT
        if segments <= 0:
            return 0.0
        return self.loss_events / segments

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        srtt = "-" if self.srtt is None else f"{self.srtt * 1000:.1f}ms"
        return (f"<PathHealth {self.path} srtt={srtt} "
                f"loss={self.loss_rate():.4f} "
                f"served={self.bytes_served}>")


class PathMetricsTap:
    """Trace-bus sink aggregating per-path health from probe events.

    Consumes:

    * ``sched.select`` -- bytes served per path (``path``/``length``),
      plus per-candidate SRTT samples on fresh allocations;
    * ``tcp.fast_retransmit`` and ``rto.fire`` -- loss events; the
      path is the last component of the endpoint name
      (``"mptcp-client.att" -> "att"``).
    """

    retains = False

    def __init__(self, srtt_gain: float = 0.25,
                 throughput_window: float = 0.5,
                 throughput_gain: float = 0.5) -> None:
        self.srtt_gain = srtt_gain
        self.throughput_window = throughput_window
        self.throughput_gain = throughput_gain
        self.paths: Dict[str, PathHealth] = {}

    def _health(self, path: str) -> PathHealth:
        health = self.paths.get(path)
        if health is None:
            health = self.paths[path] = PathHealth(path)
        return health

    def path(self, name: str) -> Optional[PathHealth]:
        """The health record for ``name`` (None before any event)."""
        return self.paths.get(name)

    def __call__(self, event: TraceEvent) -> None:
        kind = event.kind
        if kind == "sched.select":
            data = event.data
            path = data.get("path")
            length = data.get("length")
            if path is not None and length:
                self._health(path).note_served(
                    event.t, length, self.throughput_window,
                    self.throughput_gain)
            for candidate in data.get("candidates", ()):
                srtt = candidate.get("srtt")
                cpath = candidate.get("path")
                if srtt is not None and cpath is not None:
                    self._health(cpath).note_srtt(srtt, self.srtt_gain)
        elif kind in ("tcp.fast_retransmit", "rto.fire"):
            name = event.data.get("name")
            if name:
                self._health(name.rsplit(".", 1)[-1]).note_loss()

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


def metrics_tap(bus) -> Optional[PathMetricsTap]:
    """The bus's path-metrics tap, if one is installed."""
    for sink in getattr(bus, "sinks", ()):
        if isinstance(sink, PathMetricsTap):
            return sink
    return None


def ensure_path_metrics(sim) -> PathMetricsTap:
    """Install a :class:`PathMetricsTap` on ``sim.trace`` (idempotent).

    When tracing is off (``NULL_TRACE_BUS``) the simulator gets a real
    bus whose only sink is the tap, so the QoE scheduler works without
    user-visible tracing; when a bus already exists the tap is added
    alongside its sinks.  Must run *before* the protocol stack is
    built -- endpoints and connections cache ``sim.trace`` at
    construction time.
    """
    bus = sim.trace
    if isinstance(bus, NullTraceBus):
        tap = PathMetricsTap()
        sim.trace = TraceBus(tap)
        return tap
    existing = metrics_tap(bus)
    if existing is not None:
        return existing
    tap = PathMetricsTap()
    bus.add_sink(tap)
    return tap

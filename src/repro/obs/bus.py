"""The trace bus: typed protocol-event tracing for the simulator.

The bus is the observability counterpart of
:mod:`repro.perf.instrumentation`: a single object hung off the
:class:`~repro.sim.engine.Simulator` (``sim.trace``) that probe points
throughout the protocol stack emit structured events into.  Exactly
like ``NULL_INSTRUMENTATION``, the default is a slotted no-op
(:data:`NULL_TRACE_BUS`) whose ``enabled`` flag is ``False`` -- probe
sites guard with ``if trace.enabled:`` so a disabled bus costs one
attribute test on the hot path and builds no payload dicts.

Tracing is strictly *passive*: a probe point never schedules events,
never draws random numbers, and never alters control flow.  Enabling
or disabling tracing therefore leaves simulation results bit-for-bit
identical (the determinism guard pins this).

Event kinds form a dotted hierarchy so queries can match by prefix::

    sched.select        scheduler decision: candidates, chosen, reason
    cc.cwnd             cwnd/ssthresh transition (reason: slow_start,
                        congestion_avoidance, fast_retransmit, rto, ...)
    tcp.fast_retransmit fast retransmit fired
    rto.arm             RTO timer armed (timeout seconds)
    rto.fire            RTO fired (backoff count after doubling)
    mptcp.capable       MP_CAPABLE seen/negotiated
    mptcp.join          MP_JOIN seen/accepted/rejected
    mptcp.add_addr      ADD_ADDR advertised/received
    mptcp.fail          MP_FAIL sent/received
    mptcp.fallback      connection fell back to plain TCP
    mptcp.reinject      DSS reinjection of unacked spans
    rbuf.blocked        receive buffer filled (sender now rwnd-limited)
    rbuf.unblocked      receive buffer drained (blocked_for seconds)
    rrc.state           RRC state transition (old, new)
    path.up / path.down interface/path availability change
    probe.sample        a TimeSeriesProbe sample (name, value)

This module is intentionally stdlib-only: the engine imports it, so it
must not import any other ``repro`` module.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Any, Callable, Iterator, List, Optional


class TraceEvent:
    """One traced protocol event.

    ``t`` is simulated time in seconds, ``kind`` a dotted event kind,
    ``subflow`` the subflow index the event concerns (``None`` for
    connection- or host-level events), and ``data`` a small dict of
    kind-specific payload fields.
    """

    __slots__ = ("t", "kind", "subflow", "data")

    def __init__(self, t: float, kind: str,
                 subflow: Optional[int] = None,
                 data: Optional[dict] = None) -> None:
        self.t = t
        self.kind = kind
        self.subflow = subflow
        self.data = data if data is not None else {}

    def to_dict(self) -> dict:
        record: dict = {"t": self.t, "kind": self.kind}
        if self.subflow is not None:
            record["subflow"] = self.subflow
        if self.data:
            record["data"] = self.data
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "TraceEvent":
        return cls(record["t"], record["kind"],
                   record.get("subflow"), record.get("data"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sub = f" sf={self.subflow}" if self.subflow is not None else ""
        return f"<TraceEvent {self.kind}{sub} t={self.t:.6f} {self.data!r}>"


class NullTraceBus:
    """Tracing disabled: every operation is a no-op.

    Slotted and stateless, mirroring ``NullInstrumentation``.  Probe
    sites check :attr:`enabled` before building payloads, so with this
    bus installed the cost per probe point is one attribute load and
    one branch.
    """

    __slots__ = ()
    enabled = False

    def emit(self, t: float, kind: str,
             subflow: Optional[int] = None, **data: Any) -> None:
        """Discard the event."""

    def events(self, kind: Optional[str] = None,
               subflow: Optional[int] = None,
               t0: Optional[float] = None,
               t1: Optional[float] = None) -> List[TraceEvent]:
        return []

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


#: Shared do-nothing bus; the default value of ``Simulator.trace``.
NULL_TRACE_BUS = NullTraceBus()


def _match(event: TraceEvent, kind: Optional[str], subflow: Optional[int],
           t0: Optional[float], t1: Optional[float]) -> bool:
    """Filter predicate shared by every sink's query path.

    ``kind`` matches exactly or as a dotted prefix (``"rto"`` matches
    ``"rto.arm"`` and ``"rto.fire"``); ``t0``/``t1`` bound event time
    inclusively.
    """
    if kind is not None:
        ek = event.kind
        if ek != kind and not ek.startswith(kind + "."):
            return False
    if subflow is not None and event.subflow != subflow:
        return False
    if t0 is not None and event.t < t0:
        return False
    if t1 is not None and event.t > t1:
        return False
    return True


class MemorySink:
    """Retains every event in an unbounded list (tests, small runs)."""

    retains = True

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self.append = self.events.append

    def __call__(self, event: TraceEvent) -> None:
        self.append(event)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class RingSink:
    """Flight recorder: keeps only the most recent ``maxlen`` events.

    Bounded memory regardless of run length, so it can stay enabled for
    long campaigns; when a run raises, :meth:`dump` writes the window
    leading up to the failure as JSONL.
    """

    retains = True

    def __init__(self, maxlen: int = 4096) -> None:
        self.ring: deque = deque(maxlen=maxlen)
        self.append = self.ring.append

    def __call__(self, event: TraceEvent) -> None:
        self.append(event)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.ring)

    def __len__(self) -> int:
        return len(self.ring)

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def dump(self, path: str) -> int:
        """Write the ring to ``path`` as JSONL; returns events written.

        Written atomically (temp file + ``os.replace``) so a dump that
        itself crashes cannot leave a truncated file behind.
        """
        tmp = f"{path}.tmp"
        count = 0
        with open(tmp, "w", encoding="utf-8") as handle:
            for event in self.ring:
                handle.write(json.dumps(event.to_dict(),
                                        separators=(",", ":")) + "\n")
                count += 1
        os.replace(tmp, path)
        return count


class JsonlSink:
    """Streams events to a JSONL file, buffered on a byte/line threshold.

    Serialized lines accumulate in memory and are written in one
    ``write`` call once either ``flush_bytes`` or ``flush_lines`` is
    reached — one syscall per batch instead of per event.  Owners must
    :meth:`close` the sink (run teardown does; see
    ``Measurement.run``'s ``finally``) so the tail buffer reaches disk;
    a process killed mid-write can still leave at most one torn
    trailing line, which every ingester tolerates, mirroring
    ``ResultJournal``.
    """

    retains = False

    def __init__(self, path: str, flush_bytes: int = 64 * 1024,
                 flush_lines: int = 256) -> None:
        self.path = path
        self.flush_bytes = flush_bytes
        self.flush_lines = flush_lines
        self._handle = open(path, "w", encoding="utf-8")
        self._buffer: List[str] = []
        self._buffered_bytes = 0

    def __call__(self, event: TraceEvent) -> None:
        line = json.dumps(event.to_dict(), separators=(",", ":")) + "\n"
        self._buffer.append(line)
        self._buffered_bytes += len(line)
        if (self._buffered_bytes >= self.flush_bytes
                or len(self._buffer) >= self.flush_lines):
            self.flush()

    def flush(self) -> None:
        if self._handle.closed:
            return
        if self._buffer:
            self._handle.write("".join(self._buffer))
            self._buffer.clear()
            self._buffered_bytes = 0
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self.flush()
            self._handle.close()


class TraceBus:
    """An enabled trace bus dispatching to one or more sinks.

    Sinks are callables taking a :class:`TraceEvent`.  Sinks with a
    truthy ``retains`` attribute (memory, ring) also serve the
    :meth:`events` query API; the first retaining sink wins.
    """

    __slots__ = ("enabled", "_sinks", "_single")

    def __init__(self, *sinks: Callable[[TraceEvent], None]) -> None:
        self.enabled = True
        self._sinks = list(sinks)
        # The overwhelmingly common case is one sink; dispatching to it
        # directly skips a loop per event.
        self._single = sinks[0] if len(sinks) == 1 else None

    def add_sink(self, sink: Callable[[TraceEvent], None]) -> None:
        self._sinks.append(sink)
        self._single = self._sinks[0] if len(self._sinks) == 1 else None

    def emit(self, t: float, kind: str,
             subflow: Optional[int] = None, **data: Any) -> None:
        event = TraceEvent(t, kind, subflow, data)
        single = self._single
        if single is not None:
            single(event)
            return
        for sink in self._sinks:
            sink(event)

    def events(self, kind: Optional[str] = None,
               subflow: Optional[int] = None,
               t0: Optional[float] = None,
               t1: Optional[float] = None) -> List[TraceEvent]:
        """Query retained events, filtered by kind prefix / subflow /
        inclusive time window.  Returns ``[]`` when no sink retains."""
        for sink in self._sinks:
            if getattr(sink, "retains", False):
                return [e for e in sink
                        if _match(e, kind, subflow, t0, t1)]
        return []

    @property
    def sinks(self) -> List[Callable[[TraceEvent], None]]:
        return list(self._sinks)

    def flush(self) -> None:
        for sink in self._sinks:
            flush = getattr(sink, "flush", None)
            if flush is not None:
                flush()

    def close(self) -> None:
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


def read_jsonl(path: str) -> List[TraceEvent]:
    """Load a JSONL trace (stream or flight-recorder dump) back into
    :class:`TraceEvent` objects.  Tolerates a truncated trailing line,
    mirroring the results-file scanner."""
    events: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(TraceEvent.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError):
                break
    return events


def make_trace_bus(mode: str, path: Optional[str] = None,
                   ring_size: int = 4096):
    """Build a bus for a CLI/runner trace mode.

    ``"off"`` returns :data:`NULL_TRACE_BUS`; ``"ring"`` a bus with a
    flight-recorder :class:`RingSink`; ``"jsonl"`` a bus streaming to
    ``path`` (required).  Unknown modes raise ``ValueError``.
    """
    if mode == "off":
        return NULL_TRACE_BUS
    if mode == "ring":
        return TraceBus(RingSink(maxlen=ring_size))
    if mode == "jsonl":
        if not path:
            raise ValueError("trace mode 'jsonl' requires a path")
        return TraceBus(JsonlSink(path))
    raise ValueError(f"unknown trace mode {mode!r}")


def ring_of(bus) -> Optional[RingSink]:
    """The bus's flight-recorder sink, if it has one."""
    for sink in getattr(bus, "sinks", ()):
        if isinstance(sink, RingSink):
            return sink
    return None

"""tcptrace, simulated: per-flow analysis of a packet capture.

Implements the Section 3.3 metric definitions on a *sender-side*
capture (the paper analyzes server traces for RTT and loss):

* **Loss rate**: "the total number of retransmitted data packets
  divided by the total number of data packets sent".  A data packet is
  a retransmission when its sequence range was already transmitted.
* **RTT**: for each data packet that is not a retransmission (and whose
  range is never retransmitted -- Karn's rule, as tcptrace applies it),
  the time from its transmission to the first ACK whose number exceeds
  the packet's last sequence number.

Both are computed per subflow (per TCP 4-tuple), matching the paper's
"per-subflow basis" statement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.trace.capture import FlowKey, PacketCapture, PacketRecord


@dataclass
class FlowAnalysis:
    """tcptrace-style summary of one direction of one flow."""

    local: Tuple[str, int]
    remote: Tuple[str, int]
    data_packets_sent: int = 0
    retransmitted_packets: int = 0
    payload_bytes: int = 0
    rtt_samples: List[float] = field(default_factory=list)
    first_packet_time: Optional[float] = None
    last_packet_time: Optional[float] = None
    syn_time: Optional[float] = None
    handshake_rtt: Optional[float] = None

    @property
    def loss_rate(self) -> float:
        """Retransmitted / sent data packets (the paper's definition)."""
        if self.data_packets_sent == 0:
            return 0.0
        return self.retransmitted_packets / self.data_packets_sent

    @property
    def mean_rtt(self) -> float:
        if not self.rtt_samples:
            return 0.0
        return sum(self.rtt_samples) / len(self.rtt_samples)

    @property
    def duration(self) -> float:
        if self.first_packet_time is None or self.last_packet_time is None:
            return 0.0
        return self.last_packet_time - self.first_packet_time

    @property
    def throughput_bps(self) -> float:
        duration = self.duration
        if duration <= 0.0:
            return 0.0
        return self.payload_bytes * 8.0 / duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FlowAnalysis {self.local}->{self.remote} "
                f"pkts={self.data_packets_sent} "
                f"loss={self.loss_rate:.3%} rtt={self.mean_rtt * 1e3:.1f}ms>")


def flows_in(capture: PacketCapture) -> Dict[FlowKey, List[PacketRecord]]:
    """Group a capture's records by canonical flow key."""
    flows: Dict[FlowKey, List[PacketRecord]] = {}
    for record in capture.records:
        flows.setdefault(record.flow_key, []).append(record)
    return flows


def analyze_flow(records: Iterable[PacketRecord], local_addr: str,
                 local_port: Optional[int] = None) -> FlowAnalysis:
    """Analyze the data direction sent *from* ``local_addr`` (one flow).

    ``records`` is the (time-ordered) capture slice for one flow, taken
    at the sending host: its outgoing data packets have
    ``direction == "send"`` and its incoming ACKs ``"recv"``.
    """
    sent_starts: Set[int] = set()
    rexmitted_seqs: Set[int] = set()
    #: Unmatched first transmissions awaiting a covering ACK:
    #: seq -> (end_seq, send_time).
    pending: Dict[int, Tuple[int, float]] = {}
    analysis: Optional[FlowAnalysis] = None
    samples_by_seq: Dict[int, float] = {}

    for record in records:
        outgoing = record.direction == "send" and record.src == local_addr \
            and (local_port is None or record.src_port == local_port)
        incoming = record.direction == "recv" and record.dst == local_addr \
            and (local_port is None or record.dst_port == local_port)
        if outgoing:
            if analysis is None:
                analysis = FlowAnalysis(
                    local=(record.src, record.src_port),
                    remote=(record.dst, record.dst_port))
            if analysis.first_packet_time is None:
                analysis.first_packet_time = record.time
            analysis.last_packet_time = record.time
            if record.syn and not record.ack_flag:
                analysis.syn_time = record.time
            if record.payload_len > 0:
                analysis.data_packets_sent += 1
                if record.seq in sent_starts:
                    analysis.retransmitted_packets += 1
                    rexmitted_seqs.add(record.seq)
                    pending.pop(record.seq, None)
                    samples_by_seq.pop(record.seq, None)
                else:
                    sent_starts.add(record.seq)
                    analysis.payload_bytes += record.payload_len
                    pending[record.seq] = (record.end_seq, record.time)
        elif incoming:
            if analysis is None:
                continue
            analysis.last_packet_time = record.time
            if (record.syn and record.ack_flag
                    and analysis.syn_time is not None
                    and analysis.handshake_rtt is None):
                analysis.handshake_rtt = record.time - analysis.syn_time
            if record.ack_flag and pending:
                covered = [seq for seq, (end_seq, _) in pending.items()
                           if record.ack >= end_seq]
                for seq in covered:
                    _, send_time = pending.pop(seq)
                    samples_by_seq[seq] = record.time - send_time

    if analysis is None:
        return FlowAnalysis(local=(local_addr, local_port or 0),
                            remote=("", 0))
    # Karn's rule as tcptrace applies it: discard samples for sequence
    # ranges that were (ever) retransmitted.
    analysis.rtt_samples = [sample for seq, sample in
                            sorted(samples_by_seq.items())
                            if seq not in rexmitted_seqs]
    return analysis


def analyze_sender(capture: PacketCapture, local_addr_prefix: str = ""
                   ) -> Dict[FlowKey, FlowAnalysis]:
    """Analyze every flow in a sender-side capture.

    ``local_addr_prefix`` filters which host addresses count as local
    senders (e.g. ``"server."``); empty means all.
    """
    analyses: Dict[FlowKey, FlowAnalysis] = {}
    for key, records in flows_in(capture).items():
        local_candidates = {record.src for record in records
                            if record.direction == "send"}
        for local_addr in sorted(local_candidates):
            if local_addr_prefix and not local_addr.startswith(
                    local_addr_prefix):
                continue
            analyses[key] = analyze_flow(records, local_addr)
            break
    return analyses
